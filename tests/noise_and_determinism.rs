//! Noisy near-Clifford circuits through the cut pipeline, and determinism
//! guarantees of the seeded API.
//!
//! CI runs this suite as a thread-count matrix: `SUPERSIM_TEST_THREADS`
//! pins the worker-pool size the parallel determinism tests use (`0` or
//! unset = one worker per available core), so the bit-identity guarantee
//! is exercised at 1, 2, and 8 workers regardless of the runner's core
//! count.

use metrics::Distribution;
use qcir::{Bits, Circuit, NoiseChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use supersim::{ExecParams, RunResult, SuperSim, SuperSimConfig};

/// Worker-pool size under test, from `SUPERSIM_TEST_THREADS`.
fn test_threads() -> usize {
    std::env::var("SUPERSIM_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Reference distribution for a noisy circuit: average many statevector
/// noise trajectories.
fn trajectory_reference(c: &Circuit, trajectories: usize, seed: u64) -> Distribution {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = c.num_qubits();
    let mut acc = Distribution::new(n);
    for _ in 0..trajectories {
        let sv = svsim::StateVec::run_noisy(c, &mut rng).unwrap();
        for (b, p) in sv.distribution(1e-14) {
            acc.add(b, p / trajectories as f64);
        }
    }
    acc
}

#[test]
fn noisy_clifford_fragments_cut_correctly() {
    // Noise lives in the Clifford part (frame-simulated); the T fragment
    // stays noise-free. The reconstruction must match the trajectory-
    // averaged statevector.
    let mut c = Circuit::new(3);
    c.h(0);
    c.add_noise(NoiseChannel::BitFlip(0.2), &[1]);
    c.cx(0, 1);
    c.add_noise(NoiseChannel::PhaseFlip(0.15), &[0]);
    c.cx(1, 2);
    c.t(2);
    c.h(2);
    let reference = trajectory_reference(&c, 3000, 5);
    let sim = SuperSim::new(SuperSimConfig {
        shots: 30_000,
        seed: 9,
        ..SuperSimConfig::default()
    });
    let result = sim.run(&c).unwrap();
    let dist = result.distribution.as_ref().unwrap();
    let f = reference.hellinger_fidelity(dist);
    assert!(f > 0.995, "noisy cut fidelity {f}");
}

#[test]
fn depolarizing_noise_through_the_pipeline() {
    let mut c = Circuit::new(2);
    c.h(0);
    c.add_noise(NoiseChannel::Depolarize2(0.3), &[0, 1]);
    c.cx(0, 1);
    c.t(1);
    let reference = trajectory_reference(&c, 4000, 11);
    let sim = SuperSim::new(SuperSimConfig {
        shots: 30_000,
        seed: 2,
        ..SuperSimConfig::default()
    });
    let dist = sim.run(&c).unwrap().distribution.unwrap();
    let f = reference.hellinger_fidelity(&dist);
    assert!(f > 0.99, "depolarizing cut fidelity {f}");
}

#[test]
fn identical_seeds_give_identical_results() {
    let w = workloads::hwea(6, 3, 2, 7);
    let cfg = SuperSimConfig {
        shots: 400,
        seed: 1234,
        ..SuperSimConfig::default()
    };
    let a = SuperSim::new(cfg.clone()).run(&w.circuit).unwrap();
    let b = SuperSim::new(cfg).run(&w.circuit).unwrap();
    assert_eq!(a.marginals, b.marginals, "same seed must reproduce exactly");
    let (da, db) = (a.distribution.unwrap(), b.distribution.unwrap());
    for x in 0..64u64 {
        let bits = Bits::from_u64(x, 6);
        assert_eq!(da.prob(&bits), db.prob(&bits));
    }
}

#[test]
fn different_seeds_differ_in_sampled_mode() {
    let w = workloads::hwea(6, 3, 1, 7);
    let mk = |seed| SuperSimConfig {
        shots: 200,
        seed,
        mlft: false,
        clifford_snap: false,
        ..SuperSimConfig::default()
    };
    let a = SuperSim::new(mk(1)).run(&w.circuit).unwrap();
    let b = SuperSim::new(mk(2)).run(&w.circuit).unwrap();
    assert_ne!(
        a.marginals, b.marginals,
        "different seeds should perturb low-shot estimates"
    );
}

#[test]
fn parallel_flag_is_deterministic_too() {
    let w = workloads::hwea(6, 3, 2, 3);
    let base = SuperSimConfig {
        shots: 500,
        seed: 77,
        ..SuperSimConfig::default()
    };
    let seq = SuperSim::new(base.clone()).run(&w.circuit).unwrap();
    let par = SuperSim::new(SuperSimConfig {
        parallel: true,
        threads: test_threads(),
        ..base
    })
    .run(&w.circuit)
    .unwrap();
    assert_eq!(
        seq.marginals, par.marginals,
        "thread count must not change results"
    );
}

/// The full sampled pipeline — interned evaluation pool, MLFT, and
/// recombination — is bit-identical between the sequential path and the
/// worker pool at the matrix thread count (`SUPERSIM_TEST_THREADS`):
/// same marginal bits, same joint support and emission order, same
/// per-outcome probability bits, same `mlft_moved` diagnostic.
#[test]
fn full_pipeline_bit_identical_at_matrix_thread_count() {
    let w = workloads::hwea(6, 3, 2, 11);
    let base = SuperSimConfig {
        shots: 600,
        seed: 4242,
        mlft: true,
        ..SuperSimConfig::default()
    };
    let seq = SuperSim::new(base.clone()).run(&w.circuit).unwrap();
    let par = SuperSim::new(SuperSimConfig {
        parallel: true,
        threads: test_threads(),
        ..base
    })
    .run(&w.circuit)
    .unwrap();
    assert!(
        seq.report.mlft_moved.to_bits() == par.report.mlft_moved.to_bits(),
        "mlft_moved drifted under the worker pool"
    );
    for (q, (s, p)) in seq.marginals.iter().zip(&par.marginals).enumerate() {
        assert!(
            s[0].to_bits() == p[0].to_bits() && s[1].to_bits() == p[1].to_bits(),
            "marginal bits differ at qubit {q}"
        );
    }
    let (sd, pd) = (seq.distribution.unwrap(), par.distribution.unwrap());
    assert_eq!(sd.support_len(), pd.support_len());
    for ((sb, sp), (pb, pp)) in sd.iter().zip(pd.iter()) {
        assert_eq!(sb, pb, "joint emission order drifted");
        assert!(sp.to_bits() == pp.to_bits(), "probability bits at {sb}");
    }
}

/// Asserts two runs satisfy the determinism contract's bit-identity
/// (marginal bits, joint support/order/probability bits, `mlft_moved` —
/// see [`RunResult::bit_identical_to`]).
fn assert_runs_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert!(a.bit_identical_to(b), "{label}: runs are not bit-identical");
}

/// `run_batch` over distinct circuits is bit-identical to independent
/// sequential `SuperSim::run` calls at the matrix thread count
/// (`SUPERSIM_TEST_THREADS`): the shared cross-circuit pool must not
/// perturb any circuit's RNG streams, fold orders, or diagnostics.
#[test]
fn batch_bit_identical_to_independent_runs_at_matrix_thread_count() {
    let circuits: Vec<Circuit> = vec![
        workloads::hwea(5, 2, 2, 21).circuit,
        workloads::hwea(6, 3, 1, 22).circuit,
        workloads::qaoa_sk(4, 1, 1, 23).circuit,
        workloads::phase_repetition(workloads::RepetitionConfig {
            data_qubits: 3,
            phase_noise: None,
            t_gates: 1,
            seed: 4,
        })
        .circuit,
    ];
    let base = SuperSimConfig {
        shots: 300,
        seed: 1717,
        mlft: true,
        ..SuperSimConfig::default()
    };
    // Reference: independent sequential runs.
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(base.clone()).run(c).unwrap())
        .collect();
    let batch = SuperSim::new(SuperSimConfig {
        parallel: true,
        threads: test_threads(),
        ..base
    })
    .run_batch(&circuits);
    assert_eq!(batch.len(), circuits.len());
    for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
        assert_runs_bit_identical(s, b.as_ref().unwrap(), &format!("circuit {i}"));
    }
}

/// `run_sweep` over (seed, shots) points — one plan, cut once — is
/// bit-identical to independent `SuperSim::run` calls with reconfigured
/// seed/shots at the matrix thread count, and distinct seeds produce
/// distinct (isolated) RNG streams.
#[test]
fn sweep_bit_identical_to_independent_runs_at_matrix_thread_count() {
    let w = workloads::hwea(6, 3, 2, 31);
    let base = SuperSimConfig {
        shots: 250,
        seed: 0,
        mlft: true,
        ..SuperSimConfig::default()
    };
    let points: Vec<ExecParams> = vec![
        ExecParams::seeded(11).with_shots(250),
        ExecParams::seeded(12).with_shots(250),
        ExecParams::seeded(11).with_shots(400),
    ];
    let solo: Vec<RunResult> = points
        .iter()
        .map(|p| {
            SuperSim::new(SuperSimConfig {
                seed: p.seed,
                shots: p.shots,
                ..base.clone()
            })
            .run(&w.circuit)
            .unwrap()
        })
        .collect();
    let sim = SuperSim::new(SuperSimConfig {
        parallel: true,
        threads: test_threads(),
        ..base
    });
    let plan = sim.plan(&w.circuit).unwrap();
    let swept = sim.executor().run_sweep(&plan, &points);
    assert_eq!(swept.len(), points.len());
    for (i, (s, r)) in solo.iter().zip(&swept).enumerate() {
        assert_runs_bit_identical(s, r.as_ref().unwrap(), &format!("point {i}"));
    }
    // Seed isolation: points 0 and 1 differ only in seed and must not
    // share outcomes.
    assert_ne!(
        solo[0].marginals, solo[1].marginals,
        "distinct seeds must perturb sampled estimates"
    );
}

/// The packed word-parallel tableau engine feeds the same fragment
/// tensors as the frozen bit-at-a-time reference at the matrix thread
/// count: same supports, same emission order, same coefficient bits.
/// (Engine parity at explicit thread counts is in
/// `tableau_engine_parity`; this is the matrix-pinned variant.)
#[test]
fn packed_tableau_engine_matches_reference_bit_exact() {
    use cutkit::{cut_circuit, CutStrategy, EvalMode, EvalOptions, TableauEngine, TensorOptions};
    let w = workloads::hwea(6, 3, 2, 19);
    let cut = cut_circuit(&w.circuit, CutStrategy::default()).unwrap();
    let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 640 + i).collect();
    let opts = TensorOptions::default();
    let mk = |engine| EvalOptions {
        mode: EvalMode::Sampled { shots: 700 },
        tableau_engine: engine,
        ..Default::default()
    };
    let reference = cutkit::evaluate_fragment_tensors(
        &cut.fragments,
        &mk(TableauEngine::Reference),
        &opts,
        &seeds,
        1,
    )
    .unwrap();
    let packed = cutkit::evaluate_fragment_tensors(
        &cut.fragments,
        &mk(TableauEngine::Packed),
        &opts,
        &seeds,
        test_threads(),
    )
    .unwrap();
    assert_eq!(packed.len(), reference.len());
    for (fi, (p, r)) in packed.iter().zip(&reference).enumerate() {
        assert_eq!(p.support_len(), r.support_len(), "fragment {fi} support");
        for ((pb, pv), (rb, rv)) in p.iter().zip(r.iter()) {
            assert_eq!(pb, rb, "fragment {fi} emission order");
            for (x, y) in pv.iter().zip(rv) {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "fragment {fi} coefficient bits at {pb}"
                );
            }
        }
    }
}

#[test]
fn frame_and_trajectory_noise_models_agree() {
    // The frame simulator (batched) and statevector trajectories implement
    // the same noise channel semantics.
    let mut c = Circuit::new(2);
    c.h(0);
    c.add_noise(NoiseChannel::Depolarize1(0.4), &[0]);
    c.cx(0, 1);
    c.add_noise(NoiseChannel::YFlip(0.2), &[1]);
    let reference = trajectory_reference(&c, 5000, 3);
    let mut rng = StdRng::seed_from_u64(8);
    let samples = stabsim::FrameSim::sample(&c, 60_000, &mut rng).unwrap();
    let frame_dist = Distribution::from_samples(2, &samples);
    let f = reference.hellinger_fidelity(&frame_dist);
    assert!(f > 0.998, "noise model mismatch: fidelity {f}");
}
