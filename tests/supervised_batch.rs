//! Chaos suite for the supervised batch scheduler: deterministic fault
//! injection against `run_batch` at explicit pool sizes (1, 2, 8).
//!
//! The contract under test: a batch where individual jobs panic, exceed
//! deadlines, are cancelled, or are rejected by admission control still
//! completes every *surviving* job **bit-identically** to an independent
//! sequential `SuperSim::run`, at every thread count — and every failed
//! job reports a typed, schedule-independent error naming its batch
//! index, circuit fingerprint, stage, and (for deterministic fault
//! sources) the earliest faulting task.

use qcir::Circuit;
use std::sync::{Arc, Once};
use std::time::Duration;
use supersim::{
    AdmissionPolicy, CancelToken, FaultKind, FaultPlan, RunResult, Stage, SuperSim, SuperSimConfig,
    SuperSimError,
};

/// Suppresses the default panic-hook backtrace noise for *injected*
/// panics (they are the point of this suite), leaving real panics loud.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                default(info);
            }
        }));
    });
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert!(a.bit_identical_to(b), "{label}: runs are not bit-identical");
}

fn mixed_circuits() -> Vec<Circuit> {
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        deep,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6), // pure Clifford: no cuts, single fragment
        workloads::hwea(4, 1, 2, 44).circuit,
    ]
}

fn base_config() -> SuperSimConfig {
    SuperSimConfig {
        shots: 180,
        seed: 2026,
        mlft: true,
        ..SuperSimConfig::default()
    }
}

fn solo_runs(circuits: &[Circuit]) -> Vec<RunResult> {
    circuits
        .iter()
        .map(|c| SuperSim::new(base_config()).run(c).unwrap())
        .collect()
}

fn batch_at(
    threads: usize,
    cfg: &SuperSimConfig,
    circuits: &[Circuit],
) -> Vec<Result<RunResult, SuperSimError>> {
    SuperSim::new(SuperSimConfig {
        parallel: threads > 1,
        threads,
        ..cfg.clone()
    })
    .run_batch(circuits)
}

/// Unwraps the `Job` context layer, asserting it matches the batch index.
fn job_error(result: &Result<RunResult, SuperSimError>, job: usize) -> &SuperSimError {
    match result {
        Err(e @ SuperSimError::Job { job: j, .. }) => {
            assert_eq!(*j, job, "error reports wrong batch index: {e}");
            e.root()
        }
        Err(other) => panic!("job {job}: error missing Job context: {other}"),
        Ok(_) => panic!("job {job}: expected a failure"),
    }
}

/// An injected panic in one job's evaluation is caught at the task
/// boundary: the job reports `Panicked` (stage + chunk), every other job
/// completes bit-identically, at every pool size.
#[test]
fn injected_eval_panic_isolates_the_job() {
    quiet_injected_panics();
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::Panic,
        ))),
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        match job_error(&batch[1], 1) {
            SuperSimError::Panicked {
                stage: Stage::Eval,
                task: Some(0),
                payload,
            } => assert!(payload.contains("injected fault"), "payload: {payload}"),
            other => panic!("expected eval panic at chunk 0, got {other}"),
        }
        for (i, s) in solo.iter().enumerate() {
            if i != 1 {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("survivor {i} at {threads} threads"),
                );
            }
        }
    }
}

/// Injected *errors* at several chunks of one job: the reported fault is
/// the earliest chunk in chunk order, on every schedule.
#[test]
fn injected_error_reports_earliest_chunk_on_every_schedule() {
    let circuits = mixed_circuits();
    let faults = FaultPlan::new()
        .inject(0, Stage::Eval, 2, FaultKind::Error)
        .inject(0, Stage::Eval, 1, FaultKind::Error)
        .inject(0, Stage::Eval, 0, FaultKind::Error);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(faults)),
        ..base_config()
    };
    let mut rendered: Vec<String> = Vec::new();
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        match job_error(&batch[0], 0) {
            SuperSimError::Injected {
                stage: Stage::Eval,
                message,
            } => {
                assert!(message.contains("task 0"), "earliest chunk wins: {message}");
            }
            other => panic!("expected injected eval error, got {other}"),
        }
        rendered.push(batch[0].as_ref().unwrap_err().to_string());
    }
    // The full rendered error (index, fingerprint, stage, task) is
    // schedule-independent.
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[0], rendered[2]);
}

/// Panics injected into the MLFT and recombination stages of different
/// jobs are isolated simultaneously; the failures are typed per stage.
#[test]
fn mlft_and_recombine_panics_are_isolated() {
    quiet_injected_panics();
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let faults = FaultPlan::new()
        .inject(0, Stage::Mlft, 0, FaultKind::Panic)
        .inject(2, Stage::Recombine, 0, FaultKind::Panic);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(faults)),
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        match job_error(&batch[0], 0) {
            SuperSimError::Panicked {
                stage: Stage::Mlft,
                task: Some(0),
                ..
            } => {}
            other => panic!("expected MLFT panic at fragment 0, got {other}"),
        }
        match job_error(&batch[2], 2) {
            SuperSimError::Panicked {
                stage: Stage::Recombine,
                ..
            } => {}
            other => panic!("expected recombination panic, got {other}"),
        }
        for (i, s) in solo.iter().enumerate() {
            if i != 0 && i != 2 {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("survivor {i} at {threads} threads"),
                );
            }
        }
    }
}

/// A zero batch-wide job deadline interrupts every job at its first
/// checkpoint with a typed `DeadlineExceeded`.
#[test]
fn zero_job_deadline_interrupts_every_job() {
    let circuits = mixed_circuits();
    let cfg = SuperSimConfig {
        job_deadline: Some(Duration::ZERO),
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        for (i, r) in batch_at(threads, &cfg, &circuits).iter().enumerate() {
            match job_error(r, i) {
                SuperSimError::DeadlineExceeded { .. } => {}
                other => panic!("job {i} at {threads} threads: expected deadline, got {other}"),
            }
        }
    }
}

/// A fault-plan deadline override hits exactly its target job; neighbours
/// stay bit-identical.
#[test]
fn fault_plan_deadline_targets_one_job() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(
            FaultPlan::new().with_job_deadline(2, Duration::ZERO),
        )),
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        match job_error(&batch[2], 2) {
            SuperSimError::DeadlineExceeded {
                stage: Stage::Eval, ..
            } => {}
            other => panic!("expected eval-stage deadline, got {other}"),
        }
        for (i, s) in solo.iter().enumerate() {
            if i != 2 {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("survivor {i} at {threads} threads"),
                );
            }
        }
    }
}

/// A pre-cancelled shared token stops every job at its first checkpoint.
#[test]
fn pre_cancelled_token_stops_the_batch() {
    let circuits = mixed_circuits();
    let token = CancelToken::new();
    token.cancel();
    let cfg = SuperSimConfig {
        cancel: Some(token),
        ..base_config()
    };
    for (i, r) in batch_at(4, &cfg, &circuits).iter().enumerate() {
        match job_error(r, i) {
            SuperSimError::Cancelled { .. } => {}
            other => panic!("job {i}: expected cancellation, got {other}"),
        }
    }
}

/// Admission control: the most expensive plan is rejected before running
/// (typed error naming the quantity and budget), and solo-sequentialized
/// batches stay bit-identical.
#[test]
fn admission_rejects_and_sequentializes() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let sim = SuperSim::new(base_config());
    let costs: Vec<_> = circuits
        .iter()
        .map(|c| sim.plan(c).unwrap().cost())
        .collect();
    let max_sweep = costs.iter().map(|c| c.sweep_assignments).max().unwrap();
    assert!(max_sweep > 1, "need a cut circuit to exercise rejection");
    let rejected: Vec<usize> = (0..circuits.len())
        .filter(|&i| costs[i].sweep_assignments >= max_sweep)
        .collect();
    let cfg = SuperSimConfig {
        admission: AdmissionPolicy {
            max_sweep_assignments: Some(max_sweep - 1),
            ..AdmissionPolicy::default()
        },
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        for (i, s) in solo.iter().enumerate() {
            if rejected.contains(&i) {
                match job_error(&batch[i], i) {
                    SuperSimError::Rejected(e) => {
                        assert_eq!(e.quantity, "sweep assignments");
                        assert_eq!(e.actual, max_sweep);
                        assert_eq!(e.limit, max_sweep - 1);
                    }
                    other => panic!("job {i}: expected admission rejection, got {other}"),
                }
            } else {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("admitted job {i} at {threads} threads"),
                );
            }
        }
    }
    // Sequentialize *everything*: results must not change at all.
    let solo_cfg = SuperSimConfig {
        admission: AdmissionPolicy {
            solo_sweep_assignments: Some(0),
            ..AdmissionPolicy::default()
        },
        ..base_config()
    };
    let batch = batch_at(8, &solo_cfg, &circuits);
    for (i, s) in solo.iter().enumerate() {
        assert_bit_identical(
            s,
            batch[i].as_ref().unwrap(),
            &format!("sequentialized job {i}"),
        );
    }
}

/// The acceptance scenario: one job panics, one exceeds its deadline, one
/// is admission-rejected — and every remaining job completes
/// bit-identically to sequential runs at 1, 2, and 8 threads, with typed
/// per-job errors throughout.
#[test]
fn acceptance_panic_deadline_rejection_batch() {
    quiet_injected_panics();
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let sim = SuperSim::new(base_config());
    let costs: Vec<_> = circuits
        .iter()
        .map(|c| sim.plan(c).unwrap().cost())
        .collect();
    // Reject the most expensive plan among jobs 2.. so the rejection
    // never collides with the panic (job 0) or deadline (job 1) targets.
    let reject = (2..circuits.len())
        .max_by_key(|&i| costs[i].sweep_assignments)
        .unwrap();
    let budget = costs[reject].sweep_assignments - 1;
    assert!(
        (0..circuits.len())
            .filter(|&i| costs[i].sweep_assignments > budget)
            .count()
            == 1,
        "rejection budget must single out job {reject}"
    );
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(
            FaultPlan::new()
                .inject(0, Stage::Eval, 0, FaultKind::Panic)
                .with_job_deadline(1, Duration::ZERO),
        )),
        admission: AdmissionPolicy {
            max_sweep_assignments: Some(budget),
            ..AdmissionPolicy::default()
        },
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let batch = batch_at(threads, &cfg, &circuits);
        assert!(matches!(
            job_error(&batch[0], 0),
            SuperSimError::Panicked {
                stage: Stage::Eval,
                ..
            }
        ));
        assert!(matches!(
            job_error(&batch[1], 1),
            SuperSimError::DeadlineExceeded { .. }
        ));
        assert!(matches!(
            job_error(&batch[reject], reject),
            SuperSimError::Rejected(_)
        ));
        for (i, s) in solo.iter().enumerate() {
            if i != 0 && i != 1 && i != reject {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("survivor {i} at {threads} threads"),
                );
            }
        }
    }
}

/// Seed-scattered fault plans (the CI fault matrix drives the seed via
/// `SUPERSIM_FAULT_SEED` and the pool sizes via `SUPERSIM_TEST_THREADS`):
/// whatever the schedule, each job's outcome — success or rendered error
/// — is identical at every thread count, and survivors stay bit-identical
/// to sequential runs.
#[test]
fn scattered_faults_deterministic_across_thread_counts() {
    quiet_injected_panics();
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let seed = std::env::var("SUPERSIM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let threads: Vec<usize> = std::env::var("SUPERSIM_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|t: usize| vec![t])
        .unwrap_or_else(|| vec![1, 2, 8]);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::scattered(seed, circuits.len(), 3))),
        ..base_config()
    };
    let reference = batch_at(1, &cfg, &circuits);
    for &t in &threads {
        let batch = batch_at(t, &cfg, &circuits);
        for (i, (r, base)) in batch.iter().zip(&reference).enumerate() {
            match (r, base) {
                (Ok(a), Ok(b)) => {
                    assert_bit_identical(a, b, &format!("job {i} at {t} threads vs 1 thread"));
                    assert_bit_identical(a, &solo[i], &format!("job {i} at {t} threads vs solo"));
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a.to_string(), b.to_string(), "job {i} error at {t} threads");
                }
                _ => panic!("job {i}: outcome differs between 1 and {t} threads (seed {seed})"),
            }
        }
    }
}
