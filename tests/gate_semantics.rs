//! Loop-closure tests tying the three independent encodings of every
//! Clifford gate together: the dense unitary ([`qcir::Gate::unitary`]),
//! the Pauli conjugation table ([`qcir::PauliString::conjugate_by`]), and
//! the tableau column update ([`stabsim::TableauSim::apply`]).
//!
//! A bug in any one encoding breaks the triangle; agreement on all pairs
//! pins each of them down.

use qcir::{Circuit, CliffordGate, Gate, Pauli, PauliString, Qubit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use svsim::StateVec;

const ALL_1Q: [CliffordGate; 11] = CliffordGate::ONE_QUBIT;
const ALL_2Q: [CliffordGate; 4] = [
    CliffordGate::Cx,
    CliffordGate::Cy,
    CliffordGate::Cz,
    CliffordGate::Swap,
];

/// All single- and two-qubit Pauli strings on `n` qubits (no phase).
fn all_pauli_strings(n: usize) -> Vec<PauliString> {
    let mut out = Vec::new();
    for mask in 0..(4usize.pow(n as u32)) {
        let mut s = PauliString::identity(n);
        let mut m = mask;
        for q in 0..n {
            s.set_pauli(q, Pauli::from_index(m % 4));
            m /= 4;
        }
        out.push(s);
    }
    out
}

/// Checks `⟨ψ|G†PG|ψ⟩ == ⟨ψ|(G P G†)|ψ⟩` on a generic entangled state for
/// every Pauli string — statevector semantics vs the conjugation table.
#[test]
fn conjugation_table_matches_unitaries_for_every_clifford() {
    // Generic (non-stabilizer) probe state to avoid accidental zeros.
    let mut probe = Circuit::new(2);
    probe
        .h(0)
        .t(0)
        .cx(0, 1)
        .ry(1, 0.9)
        .rz(0, 0.4)
        .cz(0, 1)
        .rx(1, 1.3);
    let psi = StateVec::run(&probe).unwrap();

    let mut checked = 0;
    for (gate, qubits) in ALL_1Q
        .iter()
        .flat_map(|&g| [(g, vec![Qubit(0)]), (g, vec![Qubit(1)])])
        .chain(
            ALL_2Q
                .iter()
                .flat_map(|&g| [(g, vec![Qubit(0), Qubit(1)]), (g, vec![Qubit(1), Qubit(0)])]),
        )
    {
        for p in all_pauli_strings(2) {
            // Left side: apply G to the state, then measure P.
            let mut evolved = psi.clone();
            evolved.apply_gate(Gate::from(gate), &qubits);
            let lhs = evolved.expectation_pauli(&p);

            // Right side: ⟨Gψ|P|Gψ⟩ = ⟨ψ|G†PG|ψ⟩, i.e. conjugate P by G†
            // via the table and measure on the original state.
            let mut pc = p.clone();
            pc.conjugate_by(gate.adjoint(), &qubits);
            let sign = match pc.phase() {
                0 => 1.0,
                2 => -1.0,
                other => panic!("non-Hermitian phase {other} from {gate:?}"),
            };
            let mut bare = PauliString::identity(2);
            for q in 0..2 {
                bare.set_pauli(q, pc.pauli(q));
            }
            let rhs = sign * psi.expectation_pauli(&bare);
            assert!(
                (lhs - rhs).abs() < 1e-9,
                "{gate:?} on {qubits:?}: <{p}> {lhs} vs {rhs}"
            );
            checked += 1;
        }
    }
    assert!(checked > 400, "should have checked many combinations");
}

/// Tableau expectations match statevector expectations after every gate —
/// the tableau column rules vs the unitaries.
#[test]
fn tableau_updates_match_unitaries_for_every_clifford() {
    let mut rng = StdRng::seed_from_u64(4);
    for &gate in ALL_1Q.iter().chain(ALL_2Q.iter()) {
        // Prepare a random stabilizer state first so the gate acts on
        // something non-trivial.
        let prep = workloads::random_clifford(3, 3, u64::from(gate as u8) + 10);
        let qubits: Vec<Qubit> = match gate.arity() {
            1 => vec![Qubit(1)],
            _ => vec![Qubit(2), Qubit(0)],
        };
        let mut tab = stabsim::TableauSim::run(&prep, &mut rng).unwrap();
        tab.apply(gate, &qubits);
        let mut sv = StateVec::run(&prep).unwrap();
        sv.apply_gate(Gate::from(gate), &qubits);
        for p in all_pauli_strings(3) {
            let t = tab.expectation(&p) as f64;
            let s = sv.expectation_pauli(&p);
            assert!(
                (t - s).abs() < 1e-9,
                "{gate:?}: <{p}> tableau {t} vs sv {s}"
            );
        }
    }
}

/// `Gate::adjoint` really is the inverse at the statevector level for the
/// whole gate set.
#[test]
fn adjoint_is_inverse_for_the_whole_gate_set() {
    let gates: Vec<(Gate, Vec<Qubit>)> = vec![
        (Gate::H, vec![Qubit(0)]),
        (Gate::S, vec![Qubit(1)]),
        (Gate::Sdg, vec![Qubit(2)]),
        (Gate::T, vec![Qubit(0)]),
        (Gate::Tdg, vec![Qubit(1)]),
        (Gate::SqrtX, vec![Qubit(2)]),
        (Gate::SqrtXdg, vec![Qubit(0)]),
        (Gate::SqrtY, vec![Qubit(1)]),
        (Gate::SqrtYdg, vec![Qubit(2)]),
        (Gate::Rz(0.37), vec![Qubit(0)]),
        (Gate::Rx(1.1), vec![Qubit(1)]),
        (Gate::Ry(-0.6), vec![Qubit(2)]),
        (Gate::ZPow(0.81), vec![Qubit(0)]),
        (Gate::Cx, vec![Qubit(0), Qubit(2)]),
        (Gate::Cy, vec![Qubit(1), Qubit(0)]),
        (Gate::Cz, vec![Qubit(2), Qubit(1)]),
        (Gate::Swap, vec![Qubit(0), Qubit(1)]),
    ];
    let mut probe = Circuit::new(3);
    probe.h(0).t(0).cx(0, 1).ry(2, 0.8).cz(1, 2);
    let psi = StateVec::run(&probe).unwrap();
    for (g, qs) in gates {
        let mut evolved = psi.clone();
        evolved.apply_gate(g, &qs);
        evolved.apply_gate(g.adjoint(), &qs);
        assert!(
            (evolved.fidelity(&psi) - 1.0).abs() < 1e-10,
            "{} adjoint not inverse",
            g.name()
        );
    }
}

/// Circuit::adjoint inverts whole circuits.
#[test]
fn circuit_adjoint_inverts() {
    let mut c = Circuit::new(3);
    c.h(0).t(1).cx(0, 2).ry(1, 0.5).cz(1, 2).s(0).swap(0, 1);
    let mut roundtrip = c.clone();
    roundtrip.append(&c.adjoint());
    let psi = StateVec::run(&roundtrip).unwrap();
    assert!((psi.probability_of_index(0) - 1.0).abs() < 1e-10);
}
