//! Cross-backend agreement on the paper's workloads: every simulator must
//! produce the same distribution (up to sampling noise) on circuits they
//! all support.

use metrics::{mean_marginal_fidelity, Distribution};
use supersim::{
    ExtStabBackend, MpsBackend, Simulator, StabilizerBackend, StatevectorBackend, SuperSim,
    SuperSimConfig,
};

fn reference(c: &qcir::Circuit) -> Distribution {
    let sv = svsim::StateVec::run(c).expect("reference fits");
    Distribution::from_pairs(c.num_qubits(), sv.distribution(1e-13))
}

#[test]
fn hwea_workload_all_backends() {
    let w = workloads::hwea(8, 3, 1, 5);
    let reference = reference(&w.circuit);
    let shots = 20_000;
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(StatevectorBackend),
        Box::new(MpsBackend::default()),
        Box::new(ExtStabBackend::default()),
        Box::new(SuperSim::new(SuperSimConfig {
            shots,
            ..SuperSimConfig::default()
        })),
    ];
    for b in backends {
        let marg = b.run_marginals(&w.circuit, shots, 7).unwrap();
        let f = mean_marginal_fidelity(&reference.marginals(), &marg);
        assert!(f > 0.995, "{}: marginal fidelity {f}", b.name());
    }
}

#[test]
fn qaoa_workload_all_backends() {
    let w = workloads::qaoa_sk(6, 1, 1, 3);
    let reference = reference(&w.circuit);
    let shots = 20_000;
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(StatevectorBackend),
        Box::new(MpsBackend::default()),
        Box::new(SuperSim::new(SuperSimConfig {
            shots,
            ..SuperSimConfig::default()
        })),
    ];
    for b in backends {
        let d = b.run_distribution(&w.circuit, shots, 11).unwrap();
        let f = reference.hellinger_fidelity(&d);
        assert!(f > 0.98, "{}: fidelity {f}", b.name());
    }
}

#[test]
fn repetition_code_workload() {
    let w = workloads::phase_repetition(workloads::RepetitionConfig {
        data_qubits: 4,
        phase_noise: None,
        t_gates: 1,
        seed: 2,
    });
    let reference = reference(&w.circuit);
    let shots = 20_000;
    let supersim = SuperSim::new(SuperSimConfig {
        shots,
        ..SuperSimConfig::default()
    });
    let d = supersim.run_distribution(&w.circuit, shots, 1).unwrap();
    assert!(
        reference.hellinger_fidelity(&d) > 0.98,
        "supersim fidelity on repetition code"
    );
    // MPS should ace this low-entanglement workload (the Fig. 7 story).
    let mps = MpsBackend::default()
        .run_distribution(&w.circuit, shots, 1)
        .unwrap();
    assert!(reference.hellinger_fidelity(&mps) > 0.99);
}

#[test]
fn clifford_only_circuit_stabilizer_vs_statevector() {
    let c = workloads::random_clifford(8, 8, 17);
    let shots = 30_000;
    let stab = StabilizerBackend.run_distribution(&c, shots, 5).unwrap();
    let reference = reference(&c);
    let f = reference.hellinger_fidelity(&stab);
    assert!(f > 0.98, "stabilizer sampling fidelity {f}");
}

#[test]
fn ghz_support_agreement_across_backends() {
    // GHZ has a two-point support: every backend must keep it sharp.
    let c = workloads::ghz(6);
    let shots = 5000;
    let reference = reference(&c);
    for b in [
        Box::new(StatevectorBackend) as Box<dyn Simulator>,
        Box::new(StabilizerBackend),
        Box::new(MpsBackend::default()),
    ] {
        let d = b.run_distribution(&c, shots, 23).unwrap();
        for (bits, p) in d.iter() {
            assert!(
                reference.prob(bits) > 0.0 || p < 0.01,
                "{}: spurious outcome {bits} with p={p}",
                b.name()
            );
        }
    }
}
