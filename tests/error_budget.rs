//! Error-budgeted recombination at the pipeline surface.
//!
//! The contract under test: `error_budget = 0.0` (the default) is the
//! exact sweep, bit for bit, on every path; a fixed nonzero budget is
//! deterministic across thread counts and across the batch / sweep /
//! plan-cache-hit paths; the reported `recombine_error_bound` is a hard
//! cap on the true L1 distance to the exact unnormalized joint; and the
//! budget composes with the config builder's validation, `ExecParams`
//! overrides, and fault injection.

use proptest::prelude::*;
use qcir::Circuit;
use std::collections::HashMap;
use std::sync::Arc;
use supersim::{
    ConfigError, ExecParams, FaultKind, FaultPlan, RunResult, Stage, SuperSim, SuperSimConfig,
    SuperSimError,
};

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert!(a.bit_identical_to(b), "{label}: runs are not bit-identical");
}

fn mixed_circuits() -> Vec<Circuit> {
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        deep,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6), // pure Clifford: no cuts, nothing to truncate
        workloads::hwea(4, 1, 2, 44).circuit,
    ]
}

fn budgeted_config(budget: f64) -> SuperSimConfig {
    SuperSimConfig::builder()
        .shots(180)
        .seed(2026)
        .mlft(true)
        .error_budget(budget)
        .build()
        .expect("valid config")
}

/// An explicit `error_budget(0.0)` is the exact default, bit for bit, on
/// the single-run, batch (1/2/8 workers), plan-cache-hit, and sweep
/// paths — and every report shows an exact sweep.
#[test]
fn zero_budget_is_the_exact_default_on_every_path() {
    let circuits = mixed_circuits();
    let default_cfg = SuperSimConfig::builder()
        .shots(180)
        .seed(2026)
        .mlft(true)
        .build()
        .expect("valid config");
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(default_cfg.clone()).run(c).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let sim = SuperSim::new(
            budgeted_config(0.0)
                .into_builder()
                .parallel(true)
                .threads(threads)
                .build()
                .unwrap(),
        );
        for (pass, batch) in [sim.run_batch(&circuits), sim.run_batch(&circuits)]
            .iter()
            .enumerate()
        {
            for (i, (s, b)) in solo.iter().zip(batch).enumerate() {
                let b = b.as_ref().unwrap();
                assert_bit_identical(
                    s,
                    b,
                    &format!("circuit {i}, pass {pass} at {threads} threads"),
                );
                assert_eq!(b.report.assignments_skipped, 0, "circuit {i}");
                assert_eq!(b.report.recombine_error_bound, 0.0, "circuit {i}");
                if pass == 1 {
                    assert!(b.report.plan_cache_hit, "circuit {i} missed the plan cache");
                }
            }
        }
    }
    // Sweep path: a point carrying the solo seed/shots must reproduce the
    // solo run exactly.
    let sim = SuperSim::new(budgeted_config(0.0));
    let plan = sim.plan(&circuits[0]).unwrap();
    let point = ExecParams::seeded(2026).with_shots(180);
    for (i, swept) in sim
        .executor()
        .run_sweep(&plan, &[point, point, point])
        .iter()
        .enumerate()
    {
        assert_bit_identical(
            &solo[0],
            swept.as_ref().unwrap(),
            &format!("sweep point {i}"),
        );
    }
}

/// A fixed nonzero budget truncates deterministically: batch output at
/// 1/2/8 workers, the plan-cache-hit second batch, and a sweep-point
/// override all reproduce the sequential budgeted run bit for bit, with
/// identical skip counts and bound bits.
#[test]
fn fixed_budget_is_bit_identical_across_paths_and_threads() {
    let circuits = mixed_circuits();
    let budget = 0.2;
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(budgeted_config(budget)).run(c).unwrap())
        .collect();
    // The budget must bite somewhere or this test is vacuous.
    assert!(
        solo.iter().any(|r| r.report.assignments_skipped > 0),
        "budget {budget} skipped nothing on any circuit"
    );
    for r in &solo {
        assert!(r.report.recombine_error_bound <= budget + 1e-12);
    }
    for threads in [1usize, 2, 8] {
        let sim = SuperSim::new(
            budgeted_config(budget)
                .into_builder()
                .parallel(true)
                .threads(threads)
                .build()
                .unwrap(),
        );
        for (pass, batch) in [sim.run_batch(&circuits), sim.run_batch(&circuits)]
            .iter()
            .enumerate()
        {
            for (i, (s, b)) in solo.iter().zip(batch).enumerate() {
                let b = b.as_ref().unwrap();
                assert_bit_identical(
                    s,
                    b,
                    &format!("circuit {i}, pass {pass} at {threads} threads"),
                );
                assert_eq!(
                    b.report.assignments_skipped, s.report.assignments_skipped,
                    "circuit {i} at {threads} threads: skip count"
                );
                assert_eq!(
                    b.report.recombine_error_bound.to_bits(),
                    s.report.recombine_error_bound.to_bits(),
                    "circuit {i} at {threads} threads: bound bits"
                );
            }
        }
    }
    // Sweep path: a per-point `with_error_budget` override under an
    // unbudgeted config reproduces the config-level budget bit for bit.
    let exact_sim = SuperSim::new(
        SuperSimConfig::builder()
            .shots(180)
            .seed(2026)
            .mlft(true)
            .build()
            .unwrap(),
    );
    let plan = exact_sim.plan(&circuits[0]).unwrap();
    let point = ExecParams::seeded(2026)
        .with_shots(180)
        .with_error_budget(budget);
    for (i, swept) in exact_sim
        .executor()
        .run_sweep(&plan, &[point, point])
        .iter()
        .enumerate()
    {
        assert_bit_identical(
            &solo[0],
            swept.as_ref().unwrap(),
            &format!("budgeted sweep point {i}"),
        );
    }
}

/// `ExecParams::with_error_budget` overrides the config in both
/// directions: it opts a run of an exact config into truncation, and
/// `0.0` forces the exact sweep back under a budgeted config.
#[test]
fn exec_params_budget_overrides_config_both_ways() {
    let c = workloads::hwea(5, 2, 1, 41).circuit;
    let budget = 0.2;
    let sim = SuperSim::new(
        SuperSimConfig::builder()
            .shots(180)
            .seed(2026)
            .mlft(true)
            .build()
            .unwrap(),
    );
    let plan = sim.plan(&c).unwrap();
    let base = ExecParams::from_config(sim.config());
    let exact = sim.executor().run_with(&plan, base).unwrap();
    assert_eq!(exact.report.assignments_skipped, 0);
    assert_eq!(exact.report.recombine_error_bound, 0.0);
    let budgeted = sim
        .executor()
        .run_with(&plan, base.with_error_budget(budget))
        .unwrap();
    assert!(budgeted.report.assignments_skipped > 0, "budget must bite");
    assert!(budgeted.report.recombine_error_bound <= budget + 1e-12);
    assert!(budgeted.report.visited_assignments < exact.report.visited_assignments);

    let bsim = SuperSim::new(budgeted_config(budget));
    let bplan = bsim.plan(&c).unwrap();
    let bbase = ExecParams::from_config(bsim.config());
    // Config-level budget alone == params-level override, bit for bit.
    let config_budgeted = bsim.executor().run_with(&bplan, bbase).unwrap();
    assert_bit_identical(&budgeted, &config_budgeted, "config vs params budget");
    // `0.0` forces the exact sweep back.
    let forced_exact = bsim
        .executor()
        .run_with(&bplan, bbase.with_error_budget(0.0))
        .unwrap();
    assert_eq!(forced_exact.report.assignments_skipped, 0);
    assert_bit_identical(&exact, &forced_exact, "params budget 0.0 vs exact config");
}

/// The builder rejects non-finite / negative budgets and a thread count
/// without `parallel`, and `into_builder` derivations are revalidated.
#[test]
fn builder_validates_budget_and_thread_combinations() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1] {
        match SuperSimConfig::builder().error_budget(bad).build() {
            Err(ConfigError::InvalidErrorBudget(_)) => {}
            other => panic!("budget {bad}: expected InvalidErrorBudget, got {other:?}"),
        }
    }
    match SuperSimConfig::builder().threads(4).build() {
        Err(ConfigError::ThreadsWithoutParallel(4)) => {}
        other => panic!("expected ThreadsWithoutParallel, got {other:?}"),
    }
    let base = SuperSimConfig::builder()
        .parallel(true)
        .threads(4)
        .error_budget(0.5)
        .build()
        .expect("valid config");
    // Deriving a sequential variant must clear the thread count too.
    assert!(matches!(
        base.clone().into_builder().parallel(false).build(),
        Err(ConfigError::ThreadsWithoutParallel(4))
    ));
    let seq = base
        .into_builder()
        .parallel(false)
        .threads(0)
        .build()
        .expect("sequential derivation");
    assert_eq!(seq.error_budget, 0.5, "derivation keeps unrelated fields");
}

/// A budgeted run with a fault injected into recombination still reports
/// the typed error naming the earliest faulting task, at every pool
/// size, while the surviving jobs stay bit-identical to budgeted solo
/// runs.
#[test]
fn budgeted_batch_reports_injected_recombine_fault() {
    let circuits = mixed_circuits();
    let budget = 0.2;
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(budgeted_config(budget)).run(c).unwrap())
        .collect();
    let cfg = budgeted_config(budget)
        .into_builder()
        .faults(Arc::new(FaultPlan::new().inject(
            2,
            Stage::Recombine,
            0,
            FaultKind::Error,
        )))
        .build()
        .unwrap();
    for threads in [1usize, 2, 8] {
        let batch = SuperSim::new(
            cfg.clone()
                .into_builder()
                .parallel(threads > 1)
                .threads(if threads > 1 { threads } else { 0 })
                .build()
                .unwrap(),
        )
        .run_batch(&circuits);
        match &batch[2] {
            Err(SuperSimError::Job { job: 2, .. }) => match batch[2].as_ref().unwrap_err().root() {
                SuperSimError::Injected {
                    stage: Stage::Recombine,
                    message,
                } => {
                    assert!(message.contains("task 0"), "earliest task wins: {message}");
                }
                other => panic!("expected injected recombine error, got {other}"),
            },
            other => panic!("job 2 at {threads} threads: expected failure, got {other:?}"),
        }
        for (i, s) in solo.iter().enumerate() {
            if i != 2 {
                assert_bit_identical(
                    s,
                    batch[i].as_ref().unwrap(),
                    &format!("survivor {i} at {threads} threads"),
                );
            }
        }
    }
}

/// Unnormalized joint of `tensors` contracted under `budget` (0 = exact),
/// as (bitstring, weight) pairs.
fn joint_under_budget(
    tensors: &[cutkit::FragmentTensor],
    k: usize,
    n: usize,
    budget: f64,
) -> (Vec<(qcir::Bits, f64)>, cutkit::SweepStats) {
    let r = cutkit::Reconstructor::new(tensors, k, n).with_error_budget(budget);
    let (dist, stats) = r.try_joint_with_stats(10_000_000).expect("no faults");
    (dist.iter().map(|(b, p)| (b.clone(), p)).collect(), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random small cut circuits (k ≤ 4), the realized
    /// `recombine_error_bound` stays within the requested budget and
    /// upper-bounds the true L1 distance between the truncated and the
    /// exact **unnormalized** joint.
    #[test]
    fn truncation_bound_dominates_true_l1(
        ops in proptest::collection::vec((0u8..8, 0..3usize, 0..2usize), 4..14),
        frac in 0.05f64..0.95,
    ) {
        let n = 3;
        let mut c = Circuit::new(n);
        let mut t_count = 0;
        for &(kind, a, boff) in &ops {
            let b = (a + 1 + boff) % n;
            match kind {
                0 => c.h(a),
                1 => c.s(a),
                2 => c.x(a),
                3 => c.cx(a, b),
                4 => c.cz(a, b),
                // Cap the non-Clifford count so k stays ≤ 4.
                _ if t_count < 2 => {
                    t_count += 1;
                    c.t(a)
                }
                _ => c.h(a),
            };
        }
        let sim = SuperSim::new(
            SuperSimConfig::builder().exact(true).build().unwrap(),
        );
        let run = sim.run(&c).unwrap();
        let k = run.report.num_cuts;
        if k == 0 {
            return; // all-Clifford draw: nothing to truncate
        }
        prop_assert!(k <= 4, "strategy produced k = {k}");

        // Scale the budget off the all-skip bound so truncation is
        // partial for (almost) any circuit the strategy produces.
        let total_bound = cutkit::Reconstructor::new(run.tensors(), k, n)
            .with_error_budget(1e18)
            .sweep_stats()
            .skipped_bound;
        if total_bound <= 0.0 {
            return; // fully sparse: nothing the budget could skip
        }
        let budget = total_bound * frac;

        let (exact, exact_stats) = joint_under_budget(run.tensors(), k, n, 0.0);
        prop_assert_eq!(exact_stats.skipped, 0);
        let (truncated, stats) = joint_under_budget(run.tensors(), k, n, budget);
        prop_assert!(
            stats.skipped_bound <= budget * (1.0 + 1e-12),
            "bound {} exceeds budget {}", stats.skipped_bound, budget
        );
        let mut diff: HashMap<qcir::Bits, f64> = exact.into_iter().collect();
        for (b, p) in truncated {
            *diff.entry(b).or_insert(0.0) -= p;
        }
        let l1: f64 = diff.values().map(|d| d.abs()).sum();
        prop_assert!(
            l1 <= stats.skipped_bound * (1.0 + 1e-12) + 1e-12,
            "l1 {} exceeds reported bound {}", l1, stats.skipped_bound
        );

        // The pipeline surfaces the identical bound for the same budget.
        let budgeted = sim
            .executor()
            .run_with(
                &sim.plan(&c).unwrap(),
                ExecParams::from_config(sim.config()).with_error_budget(budget),
            )
            .unwrap();
        prop_assert_eq!(
            budgeted.report.recombine_error_bound.to_bits(),
            stats.skipped_bound.to_bits()
        );
        prop_assert_eq!(budgeted.report.assignments_skipped, stats.skipped);
    }
}
