//! Chaos suite for the resilient batch driver: deterministic transient
//! faults (`FailNTimes`), retry/backoff, partial-batch salvage via
//! `resume`, load-shedding degradation, and the per-plan circuit breaker.
//!
//! The contract under test: a batch whose jobs suffer transient faults
//! with `n < max_attempts` completes every job `Ok` **bit-identically**
//! to the uninjected run at 1, 2, and 8 threads; `resume` re-runs *only*
//! failed jobs (asserted via attempt counters); breaker evolution and
//! attempt accounting are identical on every schedule.

use qcir::Circuit;
use std::sync::Arc;
use supersim::{
    AdmissionPolicy, BatchOutcome, BreakerPolicy, BreakerState, DegradationPolicy, ExecParams,
    FaultKind, FaultPlan, JobStatus, ResiliencePolicy, RetryPolicy, RunResult, Stage, SuperSim,
    SuperSimConfig, SuperSimError, TRANSIENT_MARKER,
};

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert!(a.bit_identical_to(b), "{label}: runs are not bit-identical");
}

fn mixed_circuits() -> Vec<Circuit> {
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        deep,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6), // pure Clifford: no cuts, single fragment
        workloads::hwea(4, 1, 2, 44).circuit,
    ]
}

fn base_config() -> SuperSimConfig {
    SuperSimConfig {
        shots: 180,
        seed: 2026,
        mlft: true,
        ..SuperSimConfig::default()
    }
}

fn solo_runs(circuits: &[Circuit]) -> Vec<RunResult> {
    circuits
        .iter()
        .map(|c| SuperSim::new(base_config()).run(c).unwrap())
        .collect()
}

/// A retry policy for tests: explicit attempt budget, no sleeping (the
/// attempt schedule is unchanged; backoff determinism has its own tests).
fn fast_policy(max_attempts: usize) -> ResiliencePolicy {
    ResiliencePolicy::new().with_retry(
        RetryPolicy::default()
            .with_max_attempts(max_attempts)
            .without_backoff(),
    )
}

fn resilient_at(
    threads: usize,
    cfg: &SuperSimConfig,
    circuits: &[Circuit],
    policy: ResiliencePolicy,
) -> BatchOutcome {
    SuperSim::new(SuperSimConfig {
        parallel: threads > 1,
        threads,
        ..cfg.clone()
    })
    .run_batch_resilient(circuits, policy)
}

/// Unwraps the `Job` context layer, asserting it matches the batch index.
fn job_error(result: &Result<RunResult, SuperSimError>, job: usize) -> &SuperSimError {
    match result {
        Err(e @ SuperSimError::Job { job: j, .. }) => {
            assert_eq!(*j, job, "error reports wrong batch index: {e}");
            e.root()
        }
        Err(other) => panic!("job {job}: error missing Job context: {other}"),
        Ok(_) => panic!("job {job}: expected a failure"),
    }
}

/// The acceptance scenario: a `FailNTimes(2)` job under a 3-attempt
/// budget succeeds on attempt n+1 = 3, bit-identical to the uninjected
/// run, at 1, 2, and 8 threads — and untouched jobs consume exactly one
/// attempt. (Default backoff here, so the sleep path is exercised too.)
#[test]
fn fail_n_times_jobs_recover_bit_identically() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::FailNTimes(2),
        ))),
        ..base_config()
    };
    let policy = ResiliencePolicy::new(); // 3 attempts, jittered backoff
    for threads in [1usize, 2, 8] {
        let outcome = resilient_at(threads, &cfg, &circuits, policy.clone());
        assert!(
            outcome.all_ok(),
            "all jobs must recover at {threads} threads: {:?}",
            outcome.statuses()
        );
        for (i, s) in solo.iter().enumerate() {
            let r = outcome.result(i).as_ref().unwrap();
            assert_bit_identical(s, r, &format!("job {i} at {threads} threads"));
            let expected = if i == 1 { 3 } else { 1 };
            assert_eq!(
                outcome.attempts(i),
                expected,
                "job {i} attempt counter at {threads} threads"
            );
            assert_eq!(r.report.attempts, expected, "job {i} report attempts");
            assert!(r.report.degraded_budget.is_none(), "job {i} never degraded");
        }
        // The operator summary tells the retry story.
        let summary = outcome.result(1).as_ref().unwrap().report.render_summary();
        assert!(
            summary.contains("attempts: 3 (2 retried)"),
            "summary must surface the retries: {summary}"
        );
    }
}

/// Partial-batch salvage: with the attempt budget too small for the
/// injected fault, the flaky job fails while its siblings succeed;
/// `resume` grants a fresh budget and recovers **only** the failed job —
/// survivors' attempt counters stay frozen at 1 (they are never
/// re-executed) and the merged outcome is bit-identical to clean runs.
#[test]
fn resume_salvages_only_failed_jobs() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            2,
            Stage::Eval,
            0,
            FaultKind::FailNTimes(2),
        ))),
        ..base_config()
    };
    let mut outcome = resilient_at(8, &cfg, &circuits, fast_policy(2));
    assert_eq!(outcome.failed(), vec![2], "only the flaky job fails");
    assert_eq!(outcome.status(2), JobStatus::Failed { attempts: 2 });
    match job_error(outcome.result(2), 2) {
        SuperSimError::Injected { message, .. } => assert!(
            message.starts_with(TRANSIENT_MARKER),
            "transient marker missing: {message}"
        ),
        other => panic!("expected injected transient, got {other}"),
    }
    let salvaged = outcome.resume();
    assert_eq!(salvaged, 1, "resume salvages exactly the failed job");
    assert!(outcome.all_ok(), "{:?}", outcome.statuses());
    // The flaky job recovered on its third execution (fresh budget)...
    assert_eq!(outcome.status(2), JobStatus::Ok { attempts: 3 });
    // ...while every survivor's counter is frozen at its first pass.
    for i in 0..circuits.len() {
        if i != 2 {
            assert_eq!(
                outcome.attempts(i),
                1,
                "job {i} must never be re-executed by resume"
            );
        }
    }
    for (i, s) in solo.iter().enumerate() {
        assert_bit_identical(
            s,
            outcome.result(i).as_ref().unwrap(),
            &format!("merged job {i}"),
        );
    }
    // A second resume is a no-op: nothing failed, nothing re-runs.
    assert_eq!(outcome.resume(), 0);
    for i in 0..circuits.len() {
        let expected = if i == 2 { 3 } else { 1 };
        assert_eq!(outcome.attempts(i), expected, "job {i} after no-op resume");
    }
}

/// The circuit breaker walks closed → open → (cool-down denial) →
/// half-open → re-open → half-open → closed on the exact same attempt
/// schedule at every thread count, and the job still recovers
/// bit-identically once its transient fault clears.
#[test]
fn breaker_walks_its_lifecycle_deterministically() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::FailNTimes(3),
        ))),
        ..base_config()
    };
    // Timeline for job 1 (executions are injured while execution < 3):
    //   a1 execute+fail (streak 1), a2 execute+fail (streak 2 -> open),
    //   a3 denied (cool-down), a4 half-open trial fails -> re-open,
    //   a5 denied (cool-down), a6 half-open trial succeeds -> closed.
    let policy = fast_policy(6).with_breaker(BreakerPolicy {
        failure_threshold: 2,
        cooldown_attempts: 1,
    });
    for threads in [1usize, 2, 8] {
        let outcome = resilient_at(threads, &cfg, &circuits, policy.clone());
        assert!(outcome.all_ok(), "{:?}", outcome.statuses());
        assert_eq!(
            outcome.status(1),
            JobStatus::Ok { attempts: 6 },
            "breaker schedule must be identical at {threads} threads"
        );
        let r = outcome.result(1).as_ref().unwrap();
        assert_bit_identical(&solo[1], r, &format!("job 1 at {threads} threads"));
        assert_eq!(r.report.breaker_state, Some(BreakerState::Closed));
        let summary = r.report.render_summary();
        assert!(
            summary.contains("breaker: closed"),
            "summary must surface the breaker: {summary}"
        );
        // Untargeted jobs close cleanly in one attempt.
        for i in [0usize, 2, 3, 4] {
            assert_eq!(outcome.status(i), JobStatus::Ok { attempts: 1 });
            let state = outcome.result(i).as_ref().unwrap().report.breaker_state;
            assert_eq!(state, Some(BreakerState::Closed), "job {i}");
        }
    }
}

/// With the attempt budget exhausted while the breaker is open, the job's
/// terminal error is the typed `BreakerOpen` denial — deterministic at
/// every thread count.
#[test]
fn exhausted_budget_surfaces_breaker_denial() {
    let circuits = mixed_circuits();
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::FailNTimes(9),
        ))),
        ..base_config()
    };
    // a1 fail (streak 1), a2 fail (streak 2 -> open), a3 denied = budget.
    let policy = fast_policy(3).with_breaker(BreakerPolicy {
        failure_threshold: 2,
        cooldown_attempts: 4,
    });
    let mut rendered = Vec::new();
    for threads in [1usize, 2, 8] {
        let outcome = resilient_at(threads, &cfg, &circuits, policy.clone());
        assert_eq!(outcome.status(1), JobStatus::Failed { attempts: 3 });
        match job_error(outcome.result(1), 1) {
            SuperSimError::BreakerOpen { failures, .. } => assert_eq!(*failures, 2),
            other => panic!("expected breaker denial, got {other}"),
        }
        rendered.push(outcome.result(1).as_ref().unwrap_err().to_string());
    }
    assert_eq!(rendered[0], rendered[1]);
    assert_eq!(rendered[0], rendered[2]);
}

/// Load shedding: a job rejected by admission control escalates its error
/// budget along the degradation ladder, passes the (budget-discounted)
/// admission judgment, and completes — bit-identical to a run executed
/// directly at the escalated budget, with the shed surfaced on its
/// report.
#[test]
fn degradation_rescues_rejected_jobs() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let sim = SuperSim::new(base_config());
    let costs: Vec<_> = circuits
        .iter()
        .map(|c| sim.plan(c).unwrap().cost())
        .collect();
    let max_sweep = costs.iter().map(|c| c.sweep_assignments).max().unwrap();
    assert!(max_sweep > 1, "need a cut circuit to exercise rejection");
    let rejected: Vec<usize> = (0..circuits.len())
        .filter(|&i| costs[i].sweep_assignments >= max_sweep)
        .collect();
    let cfg = SuperSimConfig {
        admission: AdmissionPolicy {
            max_sweep_assignments: Some(max_sweep - 1),
            ..AdmissionPolicy::default()
        },
        ..base_config()
    };
    let rung = 0.5;
    let policy = fast_policy(3).with_degradation(DegradationPolicy::new(vec![rung, 0.9]).unwrap());
    for threads in [1usize, 2, 8] {
        let outcome = resilient_at(threads, &cfg, &circuits, policy.clone());
        assert!(
            outcome.all_ok(),
            "degradation must rescue every rejection at {threads} threads: {:?}",
            outcome.statuses()
        );
        for (i, s) in solo.iter().enumerate() {
            let r = outcome.result(i).as_ref().unwrap();
            if rejected.contains(&i) {
                // Rejection + one escalated (successful) attempt.
                assert_eq!(outcome.attempts(i), 2, "job {i} at {threads} threads");
                assert_eq!(r.report.degraded_budget, Some(rung), "job {i}");
                let budgeted = sim
                    .executor()
                    .run_with(
                        &sim.plan(&circuits[i]).unwrap(),
                        ExecParams::from_config(&base_config()).with_error_budget(rung),
                    )
                    .unwrap();
                assert_bit_identical(
                    &budgeted,
                    r,
                    &format!("degraded job {i} vs budgeted run at {threads} threads"),
                );
                let summary = r.report.render_summary();
                assert!(summary.contains("degraded"), "summary: {summary}");
            } else {
                assert_eq!(outcome.attempts(i), 1, "job {i} at {threads} threads");
                assert!(r.report.degraded_budget.is_none(), "job {i}");
                assert_bit_identical(s, r, &format!("job {i} at {threads} threads"));
            }
        }
    }
}

/// Permanent failures are never retried: a non-transient injected error
/// consumes exactly one attempt and reports the same typed error the
/// one-shot path does; siblings are untouched.
#[test]
fn permanent_failures_fail_fast() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(
            1,
            Stage::Eval,
            0,
            FaultKind::Error,
        ))),
        ..base_config()
    };
    let outcome = resilient_at(2, &cfg, &circuits, fast_policy(5));
    assert_eq!(outcome.status(1), JobStatus::Failed { attempts: 1 });
    match job_error(outcome.result(1), 1) {
        SuperSimError::Injected { message, .. } => assert!(
            !message.starts_with(TRANSIENT_MARKER),
            "permanent injection must not carry the marker: {message}"
        ),
        other => panic!("expected injected error, got {other}"),
    }
    for (i, s) in solo.iter().enumerate() {
        if i != 1 {
            assert_eq!(outcome.status(i), JobStatus::Ok { attempts: 1 });
            assert_bit_identical(s, outcome.result(i).as_ref().unwrap(), &format!("job {i}"));
        }
    }
    // A circuit that cannot even plan is finalized with 0 attempts and
    // cannot be salvaged — resume leaves it (and everyone else) alone.
    let mut unplannable = Circuit::new(svsim::MAX_QUBITS + 1);
    unplannable.t(0);
    let mut mixed = vec![circuits[1].clone(), unplannable];
    let mut outcome = resilient_at(
        1,
        &SuperSimConfig {
            cut_strategy: supersim::CutStrategy::None,
            ..base_config()
        },
        &mixed,
        fast_policy(3),
    );
    // With CutStrategy::None the wide circuit plans but cannot evaluate
    // (permanent Eval error, 1 attempt); either way it must not loop.
    assert!(matches!(outcome.status(0), JobStatus::Ok { .. }));
    let before = outcome.statuses();
    assert_eq!(outcome.resume(), 0, "permanent failure cannot be salvaged");
    assert_eq!(outcome.statuses()[0], before[0]);
    mixed.clear();
}

/// The resilient sweep: one plan, many points, a transient fault on one
/// point — every point recovers bit-identically to the clean sweep.
#[test]
fn sweep_resilient_matches_clean_sweep() {
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    let base = base_config();
    let sim = SuperSim::new(base.clone());
    let plan = sim.plan(&deep).unwrap();
    let points: Vec<ExecParams> = (0..4)
        .map(|s| ExecParams::from_config(&base).with_seed(100 + s))
        .collect();
    let clean = sim.executor().run_sweep(&plan, &points);
    for threads in [1usize, 2, 8] {
        let faulty = SuperSimConfig {
            parallel: threads > 1,
            threads,
            faults: Some(Arc::new(FaultPlan::new().inject(
                2,
                Stage::Eval,
                0,
                FaultKind::FailNTimes(1),
            ))),
            ..base.clone()
        };
        let faulty_sim = SuperSim::new(faulty);
        let outcome = faulty_sim
            .executor()
            .run_sweep_resilient(&plan, &points, fast_policy(3));
        assert!(outcome.all_ok(), "{:?}", outcome.statuses());
        for (i, c) in clean.iter().enumerate() {
            let expected = if i == 2 { 2 } else { 1 };
            assert_eq!(outcome.attempts(i), expected, "point {i} at {threads}t");
            assert_bit_identical(
                c.as_ref().unwrap(),
                outcome.result(i).as_ref().unwrap(),
                &format!("point {i} at {threads} threads"),
            );
        }
    }
}

/// Seed-scattered transient faults (the CI fault matrix drives the seed
/// via `SUPERSIM_FAULT_SEED` and the pool size via
/// `SUPERSIM_TEST_THREADS`): every job recovers within the attempt
/// budget, bit-identical to clean solo runs, with attempt counters
/// identical at every thread count.
#[test]
fn scattered_transient_faults_recover_across_thread_counts() {
    let circuits = mixed_circuits();
    let solo = solo_runs(&circuits);
    let seed = std::env::var("SUPERSIM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let threads: Vec<usize> = std::env::var("SUPERSIM_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|t: usize| vec![t])
        .unwrap_or_else(|| vec![1, 2, 8]);
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::scattered_transient(
            seed,
            circuits.len(),
            3,
            2,
        ))),
        ..base_config()
    };
    let policy = fast_policy(3);
    let reference = resilient_at(1, &cfg, &circuits, policy.clone());
    assert!(
        reference.all_ok(),
        "FailNTimes(2) under a 3-attempt budget must always recover (seed {seed}): {:?}",
        reference.statuses()
    );
    for &t in &threads {
        let outcome = resilient_at(t, &cfg, &circuits, policy.clone());
        assert!(outcome.all_ok(), "seed {seed} at {t} threads");
        for (i, s) in solo.iter().enumerate() {
            assert_bit_identical(
                s,
                outcome.result(i).as_ref().unwrap(),
                &format!("job {i} at {t} threads (seed {seed})"),
            );
            assert_eq!(
                outcome.attempts(i),
                reference.attempts(i),
                "job {i}: attempt accounting must be schedule-independent"
            );
        }
    }
}

/// Two identical resilient calls produce identical outcomes — statuses,
/// attempt counters, and result bits (retry is as deterministic as the
/// pipeline it wraps).
#[test]
fn resilient_runs_are_reproducible() {
    let circuits = mixed_circuits();
    let cfg = SuperSimConfig {
        faults: Some(Arc::new(FaultPlan::scattered_transient(
            7, // arbitrary fixed seed
            5, 2, 1,
        ))),
        ..base_config()
    };
    let a = resilient_at(8, &cfg, &circuits, fast_policy(3));
    let b = resilient_at(8, &cfg, &circuits, fast_policy(3));
    assert_eq!(a.statuses(), b.statuses());
    for i in 0..circuits.len() {
        assert_bit_identical(
            a.result(i).as_ref().unwrap(),
            b.result(i).as_ref().unwrap(),
            &format!("job {i}"),
        );
    }
}
