//! The end-to-end correctness theorem of the paper: cutting, fragment
//! evaluation, and recombination reproduce the uncut circuit's output
//! distribution — exactly in exact mode, statistically in sampled mode.

use qcir::{Bits, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use supersim::{SuperSim, SuperSimConfig};
use svsim::StateVec;

/// Random near-Clifford circuit: Clifford body + up to `max_t` T gates.
fn random_near_clifford(n: usize, ops: usize, max_t: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    let mut t_left = max_t;
    for _ in 0..ops {
        match rng.random_range(0..8) {
            0 => c.h(rng.random_range(0..n)),
            1 => c.s(rng.random_range(0..n)),
            2 => c.x(rng.random_range(0..n)),
            3 => c.rz(
                rng.random_range(0..n),
                std::f64::consts::FRAC_PI_2 * rng.random_range(0..4) as f64,
            ),
            4 if t_left > 0 => {
                t_left -= 1;
                c.t(rng.random_range(0..n))
            }
            5 => {
                let a = rng.random_range(0..n);
                let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                c.cz(a, b)
            }
            _ => {
                let a = rng.random_range(0..n);
                let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                c.cx(a, b)
            }
        };
    }
    c
}

fn exact_supersim() -> SuperSim {
    SuperSim::new(SuperSimConfig {
        exact: true,
        ..SuperSimConfig::default()
    })
}

#[test]
fn exact_reconstruction_matches_statevector_on_random_circuits() {
    for seed in 0..12u64 {
        let n = 3 + (seed % 3) as usize;
        let c = random_near_clifford(n, 20, 2, seed);
        if c.non_clifford_count() == 0 {
            continue;
        }
        let result = exact_supersim().run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let dist = result.distribution.as_ref().expect("joint available");
        for x in 0..1usize << n {
            let b = Bits::from_u64(x as u64, n);
            let got = dist.prob(&b);
            let expect = sv.probability_of_index(x);
            assert!(
                (got - expect).abs() < 1e-8,
                "seed {seed}: p({b}) = {got} vs {expect}\ncircuit: {c}"
            );
        }
    }
}

#[test]
fn strong_simulation_matches_statevector() {
    for seed in 20..26u64 {
        let c = random_near_clifford(4, 18, 2, seed);
        let result = exact_supersim().run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        for x in [0usize, 3, 7, 11, 15] {
            let b = Bits::from_u64(x as u64, 4);
            assert!(
                (result.probability_of(&b) - sv.probability_of_index(x)).abs() < 1e-8,
                "seed {seed} at {b}"
            );
        }
    }
}

#[test]
fn marginal_and_joint_paths_agree() {
    for seed in 30..36u64 {
        let c = random_near_clifford(5, 24, 2, seed);
        let result = exact_supersim().run(&c).unwrap();
        let dist = result.distribution.as_ref().expect("joint available");
        for q in 0..5 {
            let jm = dist.marginal(q);
            assert!(
                (jm[0] - result.marginals[q][0]).abs() < 1e-8,
                "seed {seed} qubit {q}: joint {jm:?} vs marginal path {:?}",
                result.marginals[q]
            );
        }
    }
}

#[test]
fn sampled_reconstruction_converges_with_shots() {
    let c = random_near_clifford(4, 16, 1, 99);
    let sv = StateVec::run(&c).unwrap();
    let reference = metrics::Distribution::from_pairs(4, sv.distribution(1e-13));
    let mut last = 0.0;
    for (shots, expect_at_least) in [(200usize, 0.80), (2000, 0.95), (20000, 0.99)] {
        let cfg = SuperSimConfig {
            shots,
            seed: 42,
            ..SuperSimConfig::default()
        };
        let result = SuperSim::new(cfg).run(&c).unwrap();
        let dist = result.distribution.as_ref().unwrap();
        let f = reference.hellinger_fidelity(dist);
        assert!(f > expect_at_least, "{shots} shots gave fidelity {f}");
        assert!(f >= last - 0.02, "fidelity should not degrade with shots");
        last = f;
    }
}

#[test]
fn reconstruction_total_mass_is_one_in_exact_mode() {
    for seed in 50..56u64 {
        let c = random_near_clifford(4, 20, 3, seed);
        let result = exact_supersim().run(&c).unwrap();
        if let Some(d) = &result.distribution {
            assert!(
                (d.total_mass() - 1.0).abs() < 1e-8,
                "seed {seed}: mass {}",
                d.total_mass()
            );
        }
    }
}

#[test]
fn every_clifford_optimization_combination_is_consistent() {
    let c = random_near_clifford(4, 18, 2, 123);
    let sv = StateVec::run(&c).unwrap();
    for sparse in [false, true] {
        for snap in [false, true] {
            for exact_clifford in [false, true] {
                let cfg = SuperSimConfig {
                    exact: true,
                    sparse_contraction: sparse,
                    clifford_snap: snap,
                    exact_clifford,
                    ..SuperSimConfig::default()
                };
                let result = SuperSim::new(cfg).run(&c).unwrap();
                let dist = result.distribution.as_ref().unwrap();
                for x in 0..16usize {
                    let b = Bits::from_u64(x as u64, 4);
                    assert!(
                        (dist.prob(&b) - sv.probability_of_index(x)).abs() < 1e-8,
                        "sparse={sparse} snap={snap} exact_clifford={exact_clifford} at {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn manual_cuts_reconstruct_exactly_even_without_non_cliffords() {
    // Peng-style generic cutting: chop a GHZ ladder in the middle and
    // reconstruct — no non-Clifford gate involved at all.
    let mut c = Circuit::new(5);
    c.h(0);
    for q in 1..5 {
        c.cx(q - 1, q);
    }
    c.s(4).z(0);
    let cfg = SuperSimConfig {
        exact: true,
        cut_strategy: supersim::CutStrategy::Manual(vec![supersim::CutPoint {
            qubit: 2,
            after_op: 2,
        }]),
        ..SuperSimConfig::default()
    };
    let result = SuperSim::new(cfg).run(&c).unwrap();
    assert_eq!(result.report.num_cuts, 1);
    assert_eq!(result.report.num_fragments, 2);
    let sv = StateVec::run(&c).unwrap();
    let dist = result.distribution.as_ref().unwrap();
    for x in 0..32usize {
        let b = Bits::from_u64(x as u64, 5);
        assert!(
            (dist.prob(&b) - sv.probability_of_index(x)).abs() < 1e-9,
            "manual cut mismatch at {b}"
        );
    }
}

#[test]
fn manual_cut_through_a_t_gate_wire() {
    // Manual cuts compose with non-Clifford content: cut right after the
    // T gate's wire segment and reconstruct.
    let mut c = Circuit::new(2);
    c.h(0).t(0).cx(0, 1).h(1);
    let cfg = SuperSimConfig {
        exact: true,
        cut_strategy: supersim::CutStrategy::Manual(vec![supersim::CutPoint {
            qubit: 0,
            after_op: 1,
        }]),
        ..SuperSimConfig::default()
    };
    let result = SuperSim::new(cfg).run(&c).unwrap();
    let sv = StateVec::run(&c).unwrap();
    let dist = result.distribution.as_ref().unwrap();
    for x in 0..4usize {
        let b = Bits::from_u64(x as u64, 2);
        assert!((dist.prob(&b) - sv.probability_of_index(x)).abs() < 1e-9);
    }
}

#[test]
fn z_string_expectations_match_statevector() {
    for seed in 70..76u64 {
        let c = random_near_clifford(4, 18, 2, seed);
        let result = exact_supersim().run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let sv_dist = metrics::Distribution::from_pairs(4, sv.distribution(1e-13));
        for subset in [vec![0], vec![1, 2], vec![0, 3], vec![0, 1, 2, 3]] {
            let got = result.expectation_z(&subset);
            let expect = sv_dist.expectation_z(&subset);
            assert!(
                (got - expect).abs() < 1e-8,
                "seed {seed} <Z{subset:?}>: {got} vs {expect}"
            );
        }
    }
}

#[test]
fn z_string_expectation_scales_to_wide_circuits() {
    // 60-qubit near-Clifford circuit: joint distribution is unavailable at
    // tiny support limits, but Z observables still reconstruct.
    let w = workloads::hwea(60, 3, 1, 5);
    let cfg = SuperSimConfig {
        shots: 4000,
        seed: 2,
        joint_support_limit: 0,
        ..SuperSimConfig::default()
    };
    let result = SuperSim::new(cfg).run(&w.circuit).unwrap();
    assert!(result.distribution.is_none());
    let z01 = result.expectation_z(&[0, 1]);
    assert!((-1.0..=1.0).contains(&z01));
    // Consistency with the marginal-based single-qubit value.
    let z0 = result.expectation_z(&[0]);
    let from_marginal = result.marginals[0][0] - result.marginals[0][1];
    assert!(
        (z0 - from_marginal).abs() < 1e-6,
        "<Z0> paths disagree: {z0} vs {from_marginal}"
    );
}

#[test]
fn reconstruction_sampling_roundtrip() {
    use rand::SeedableRng;
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).t(1).cx(1, 2);
    let result = exact_supersim().run(&c).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let samples = result.sample(30_000, &mut rng).expect("joint available");
    let empirical = metrics::Distribution::from_samples(3, &samples);
    let f = result
        .distribution
        .as_ref()
        .unwrap()
        .hellinger_fidelity(&empirical);
    assert!(f > 0.995, "sampling roundtrip fidelity {f}");
}

#[test]
fn deep_t_chains_respect_cut_budget_by_merging() {
    // Many T gates on one wire force merges; result must stay correct.
    let mut c = Circuit::new(2);
    c.h(0);
    for _ in 0..4 {
        c.t(0).h(0);
    }
    c.cx(0, 1);
    let cfg = SuperSimConfig {
        exact: true,
        cut_strategy: supersim::CutStrategy::IsolateNonClifford { max_cuts: 4 },
        ..SuperSimConfig::default()
    };
    let result = SuperSim::new(cfg).run(&c).unwrap();
    assert!(result.report.num_cuts <= 4);
    let sv = StateVec::run(&c).unwrap();
    let dist = result.distribution.as_ref().unwrap();
    for x in 0..4usize {
        let b = Bits::from_u64(x as u64, 2);
        assert!((dist.prob(&b) - sv.probability_of_index(x)).abs() < 1e-8);
    }
}
