//! Statistical agreement between the stabilizer engines and exact
//! simulation, beyond what the per-crate unit tests cover.

use metrics::Distribution;
use qcir::{Bits, Circuit, PauliString};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabsim::{FrameSim, TableauSim};
use svsim::StateVec;

fn sv_reference(c: &Circuit) -> Distribution {
    let sv = StateVec::run(c).unwrap();
    Distribution::from_pairs(c.num_qubits(), sv.distribution(1e-14))
}

#[test]
fn bulk_sampler_matches_exact_distribution_statistically() {
    for seed in 0..4u64 {
        let c = workloads::random_clifford(7, 7, seed);
        let reference = sv_reference(&c);
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let sim = TableauSim::run(&c, &mut rng).unwrap();
        let samples = sim.sample_all(40_000, &mut rng);
        let empirical = Distribution::from_samples(7, &samples);
        let f = reference.hellinger_fidelity(&empirical);
        assert!(f > 0.995, "seed {seed}: bulk sampler fidelity {f}");
    }
}

#[test]
fn frame_sampler_matches_bulk_sampler_noiselessly() {
    for seed in 0..3u64 {
        let c = workloads::random_clifford(6, 6, 40 + seed);
        let mut rng = StdRng::seed_from_u64(7 + seed);
        let frame = FrameSim::sample(&c, 40_000, &mut rng).unwrap();
        let frame_dist = Distribution::from_samples(6, &frame);
        let reference = sv_reference(&c);
        let f = reference.hellinger_fidelity(&frame_dist);
        assert!(f > 0.995, "seed {seed}: frame sampler fidelity {f}");
    }
}

#[test]
fn collapse_measurement_is_consistent_with_support() {
    // Measuring all qubits sequentially must land inside the pre-measured
    // support, and repeating on the collapsed state must reproduce it.
    for seed in 0..5u64 {
        let c = workloads::random_clifford(6, 5, 60 + seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = TableauSim::run(&c, &mut rng).unwrap();
        let support = sim.support();
        let outcome: Vec<bool> = (0..6).map(|q| sim.measure(q, &mut rng)).collect();
        let outcome = Bits::from_bools(&outcome);
        assert!(support.contains(&outcome), "collapse left the support");
        // Post-collapse the state is the measured basis state.
        let post = sim.support();
        assert_eq!(post.dim(), 0, "post-measurement state must be definite");
        assert_eq!(post.base(), &outcome);
    }
}

#[test]
fn expectation_is_multiplicative_on_stabilizer_elements() {
    // If P and Q are both ±1-valued on the state and commute, then
    // <PQ> = <P>·<Q>.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2).s(2);
    let mut rng = StdRng::seed_from_u64(1);
    let sim = TableauSim::run(&c, &mut rng).unwrap();
    let candidates = ["XXY", "ZZI", "IZZ", "YXX", "ZIZ"];
    for a in candidates {
        for b in candidates {
            let pa = PauliString::parse(a).unwrap();
            let pb = PauliString::parse(b).unwrap();
            let (ea, eb) = (sim.expectation(&pa), sim.expectation(&pb));
            if ea == 0 || eb == 0 || !pa.commutes_with(&pb) {
                continue;
            }
            let prod = pa.mul(&pb);
            let sign = match prod.phase() {
                0 => 1,
                2 => -1,
                _ => continue, // non-Hermitian representative
            };
            let mut bare = PauliString::identity(3);
            for q in 0..3 {
                bare.set_pauli(q, prod.pauli(q));
            }
            assert_eq!(
                sign * sim.expectation(&bare),
                ea * eb,
                "<{a}·{b}> != <{a}><{b}>"
            );
        }
    }
}

#[test]
fn extstab_exact_distribution_matches_tableau_on_clifford_circuits() {
    for seed in 0..3u64 {
        let c = workloads::random_clifford(5, 4, 90 + seed);
        let ext = extstab::StabDecomp::run(&c, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let tab = TableauSim::run(&c, &mut rng).unwrap();
        let support = tab.support();
        let expected_p = 1.0 / (1u64 << support.dim()) as f64;
        for x in 0..32u64 {
            let b = Bits::from_u64(x, 5);
            let p = ext.probability(&b);
            if support.contains(&b) {
                assert!((p - expected_p).abs() < 1e-9, "seed {seed} at {b}: {p}");
            } else {
                assert!(p < 1e-12, "seed {seed}: {b} outside support has p={p}");
            }
        }
    }
}

#[test]
fn mps_handles_clifford_circuits_exactly() {
    for seed in 0..3u64 {
        let c = workloads::random_clifford(6, 5, 120 + seed);
        let mps = mpssim::MpsState::run(&c, &mpssim::MpsConfig::default()).unwrap();
        let sv = StateVec::run(&c).unwrap();
        for x in 0..64usize {
            let b = Bits::from_u64(x as u64, 6);
            assert!(
                (mps.probability(&b) - sv.probability_of_index(x)).abs() < 1e-8,
                "seed {seed} at {b}"
            );
        }
        assert!(mps.truncation_weight() < 1e-12);
    }
}
