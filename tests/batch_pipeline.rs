//! Batch-first pipeline integration: `run_batch` / `run_sweep` against
//! independent sequential runs, at explicit pool sizes (1, 2, 8).
//!
//! The determinism contract under test: batch and sweep output is
//! **bit-identical** to independent `SuperSim::run` calls — same marginal
//! float bits, same joint support and emission order, same probability
//! bits, same `mlft_moved` — for every worker count, with RNG streams
//! isolated per circuit/point. (The CI thread-count matrix variant lives
//! in `noise_and_determinism.rs`; this suite pins the counts explicitly.)

use qcir::{Bits, Circuit};
use supersim::{ExecParams, RunResult, SuperSim, SuperSimConfig};

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.report.num_variants, b.report.num_variants, "{label}");
    assert!(a.bit_identical_to(b), "{label}: runs are not bit-identical");
}

fn mixed_circuits() -> Vec<Circuit> {
    // Small cut counts only (k ≤ ~4): these circuits run through full
    // batches at several pool sizes in debug builds, so recombination
    // must stay far from the 4^k blow-up.
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        deep,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6), // pure Clifford: no cuts, single fragment
        workloads::hwea(4, 1, 2, 44).circuit,
    ]
}

/// Sampled batch with MLFT, 1/2/8 workers, vs independent sequential runs.
#[test]
fn sampled_batch_bit_identical_at_1_2_8_threads() {
    let circuits = mixed_circuits();
    let base = SuperSimConfig {
        shots: 220,
        seed: 2024,
        mlft: true,
        ..SuperSimConfig::default()
    };
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(base.clone()).run(c).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let batch = SuperSim::new(SuperSimConfig {
            parallel: true,
            threads,
            ..base.clone()
        })
        .run_batch(&circuits);
        for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
            assert_bit_identical(
                s,
                b.as_ref().unwrap(),
                &format!("circuit {i} at {threads} threads"),
            );
        }
    }
    // `parallel: false` batches take the same scheduler with one worker.
    let seq_batch = SuperSim::new(base).run_batch(&circuits);
    for (i, (s, b)) in solo.iter().zip(&seq_batch).enumerate() {
        assert_bit_identical(s, b.as_ref().unwrap(), &format!("circuit {i} sequential"));
    }
}

/// Exact-mode batch (no MLFT stage — evaluation feeds recombination
/// directly) stays bit-identical across pool sizes.
#[test]
fn exact_batch_bit_identical_at_1_2_8_threads() {
    let circuits = mixed_circuits();
    let base = SuperSimConfig {
        exact: true,
        ..SuperSimConfig::default()
    };
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| SuperSim::new(base.clone()).run(c).unwrap())
        .collect();
    for threads in [1usize, 2, 8] {
        let batch = SuperSim::new(SuperSimConfig {
            parallel: true,
            threads,
            ..base.clone()
        })
        .run_batch(&circuits);
        for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
            assert_bit_identical(
                s,
                b.as_ref().unwrap(),
                &format!("exact circuit {i} at {threads} threads"),
            );
        }
    }
}

/// RNG stream isolation in batches: duplicating a circuit in a batch
/// gives every copy the identical (config-seeded) result, and batch
/// results never depend on which other circuits share the pool.
#[test]
fn batch_rng_streams_are_isolated_per_circuit() {
    let a = workloads::hwea(5, 2, 1, 51).circuit;
    let b = workloads::hwea(5, 2, 1, 52).circuit;
    let cfg = SuperSimConfig {
        shots: 180,
        seed: 7,
        parallel: true,
        threads: 4,
        ..SuperSimConfig::default()
    };
    let sim = SuperSim::new(cfg);
    let alone = sim.run_batch(std::slice::from_ref(&a));
    let together = sim.run_batch(&[a.clone(), b.clone(), a.clone()]);
    assert_bit_identical(
        alone[0].as_ref().unwrap(),
        together[0].as_ref().unwrap(),
        "batch composition must not perturb circuit a",
    );
    assert_bit_identical(
        together[0].as_ref().unwrap(),
        together[2].as_ref().unwrap(),
        "duplicate circuits share the config seed",
    );
    // ...but a different circuit under the same seed still differs.
    assert_ne!(
        together[0].as_ref().unwrap().marginals,
        together[1].as_ref().unwrap().marginals,
    );
}

/// Sweep over seeds and shot budgets, 1/2/8 workers, vs reconfigured
/// independent runs; the plan builds once and replays unchanged.
#[test]
fn sweep_bit_identical_at_1_2_8_threads() {
    let w = workloads::hwea(5, 2, 2, 61);
    let base = SuperSimConfig {
        shots: 200,
        seed: 0,
        ..SuperSimConfig::default()
    };
    let points: Vec<ExecParams> = (0..5)
        .map(|i| ExecParams::seeded(900 + i as u64).with_shots(150 + 50 * (i % 3)))
        .collect();
    let solo: Vec<RunResult> = points
        .iter()
        .map(|p| {
            SuperSim::new(SuperSimConfig {
                seed: p.seed,
                shots: p.shots,
                ..base.clone()
            })
            .run(&w.circuit)
            .unwrap()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let sim = SuperSim::new(SuperSimConfig {
            parallel: true,
            threads,
            ..base.clone()
        });
        let plan = sim.plan(&w.circuit).unwrap();
        let swept = sim.executor().run_sweep(&plan, &points);
        for (i, (s, r)) in solo.iter().zip(&swept).enumerate() {
            assert_bit_identical(
                s,
                r.as_ref().unwrap(),
                &format!("sweep point {i} at {threads} threads"),
            );
        }
    }
}

/// Follow-up queries on batch results (strong simulation, Z observables)
/// match the standalone runs' answers.
#[test]
fn batch_results_answer_followup_queries() {
    let c = workloads::hwea(4, 2, 1, 71).circuit;
    let cfg = SuperSimConfig {
        shots: 260,
        seed: 5,
        parallel: true,
        threads: 3,
        ..SuperSimConfig::default()
    };
    let sim = SuperSim::new(cfg.clone());
    let solo = SuperSim::new(cfg).run(&c).unwrap();
    let batch = sim.run_batch(std::slice::from_ref(&c));
    let br = batch[0].as_ref().unwrap();
    for x in 0..16u64 {
        let b = Bits::from_u64(x, 4);
        assert!(
            solo.probability_of(&b) == br.probability_of(&b),
            "probability_of at {b}"
        );
    }
    assert!(solo.expectation_z(&[0, 2]) == br.expectation_z(&[0, 2]));
}

/// Degenerate batches: empty input and a single circuit.
#[test]
fn degenerate_batches() {
    let sim = SuperSim::new(SuperSimConfig {
        parallel: true,
        threads: 2,
        exact: true,
        ..SuperSimConfig::default()
    });
    assert!(sim.run_batch(&[]).is_empty());
    let c = workloads::ghz(3);
    let one = sim.run_batch(std::slice::from_ref(&c));
    assert_eq!(one.len(), 1);
    let dist = one[0].as_ref().unwrap().distribution.as_ref().unwrap();
    assert!((dist.prob(&Bits::from_u64(0, 3)) - 0.5).abs() < 1e-9);
}
