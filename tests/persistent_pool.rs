//! Persistent-pool integration: consecutive `run_batch` calls reuse the
//! live workers of the process-wide runtime pool (no re-spawn between
//! batches), and pooled output stays bit-identical to independent
//! sequential runs at 1/2/8 threads.
//!
//! The whole scenario lives in **one** test function: the pool's spawn
//! counter is process-global, so a sibling test running concurrently in
//! the same binary would perturb it.

use qcir::Circuit;
use supersim::{RunResult, SuperSim, SuperSimConfig};

fn circuits() -> Vec<Circuit> {
    let mut deep = Circuit::new(2);
    deep.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
    vec![
        workloads::hwea(5, 2, 1, 81).circuit,
        deep,
        workloads::ghz(6),
        workloads::qaoa_sk(4, 1, 1, 83).circuit,
    ]
}

#[test]
fn consecutive_batches_reuse_live_workers_bit_identically() {
    let circuits = circuits();
    let base = SuperSimConfig {
        shots: 200,
        seed: 314,
        mlft: true,
        ..SuperSimConfig::default()
    };
    // Reference: independent sequential runs (cache off so every run
    // plans from scratch, like the seed pipeline did).
    let solo: Vec<RunResult> = circuits
        .iter()
        .map(|c| {
            SuperSim::new(SuperSimConfig {
                plan_cache_capacity: 0,
                ..base.clone()
            })
            .run(c)
            .unwrap()
        })
        .collect();

    for threads in [1usize, 2, 8] {
        let sim = SuperSim::new(SuperSimConfig {
            parallel: true,
            threads,
            ..base.clone()
        });
        // First batch: may grow the pool (cold at this worker count).
        let first = sim.run_batch(&circuits);
        let spawned_after_first = sim.stats().pool.spawned_total;
        // Second batch: identical demand — the warm pool must serve it
        // without spawning a single new worker.
        let second = sim.run_batch(&circuits);
        let spawned_after_second = sim.stats().pool.spawned_total;
        assert_eq!(
            spawned_after_first, spawned_after_second,
            "warm pool re-spawned workers at {threads} threads"
        );
        for (i, (s, (a, b))) in solo.iter().zip(first.iter().zip(&second)).enumerate() {
            let a = a.as_ref().unwrap();
            let b = b.as_ref().unwrap();
            assert!(
                s.bit_identical_to(a),
                "circuit {i}, cold batch at {threads} threads diverged from sequential"
            );
            assert!(
                s.bit_identical_to(b),
                "circuit {i}, warm batch at {threads} threads diverged from sequential"
            );
        }
        // The second batch was served entirely from the plan cache.
        for (i, r) in second.iter().enumerate() {
            assert!(
                r.as_ref().unwrap().report.plan_cache_hit,
                "circuit {i} missed the plan cache on the second batch"
            );
        }
    }
    // After the ladder the pool holds live workers; the stats surface
    // must agree that they exist and are parked.
    let pool = SuperSim::default().stats().pool;
    assert!(pool.live >= 1, "pool should persist workers: {pool:?}");
}
