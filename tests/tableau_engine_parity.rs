//! Three-way bit-identity of the tableau engines: the word-parallel
//! row-major `TableauSim`, the column-major `SparseGateTableauSim`, and
//! the frozen bit-at-a-time `ReferenceTableauSim` baseline.
//!
//! All engines must be indistinguishable for any seed: identical
//! measurement outcomes, identical stabilizer/destabilizer generators,
//! identical affine-support extraction (same base, same direction order),
//! identical expectation values, and — the property everything downstream
//! leans on — identical seeded-RNG consumption, so every later draw in a
//! shared stream stays aligned. The last test pushes the guarantee
//! end-to-end: fragment tensors evaluated through any engine are
//! bit-identical at 1, 2, and 8 worker threads.

use cutkit::{cut_circuit, CutStrategy, EvalMode, EvalOptions, TableauEngine, TensorOptions};
use proptest::prelude::*;
use qcir::{Circuit, Pauli, PauliString};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use stabsim::{ReferenceTableauSim, SparseGateTableauSim, TableauSim};

/// Every engine the parity matrix covers, reference first (the oracle).
const ENGINES: [TableauEngine; 3] = [
    TableauEngine::Reference,
    TableauEngine::Packed,
    TableauEngine::SparseGate,
];

/// Engine-dispatch wrapper so one assertion body drives all three
/// simulators through their identical surface.
enum AnyTableau {
    Packed(TableauSim),
    SparseGate(SparseGateTableauSim),
    Reference(ReferenceTableauSim),
}

impl AnyTableau {
    fn run(engine: TableauEngine, c: &Circuit, rng: &mut impl rand::Rng) -> Self {
        match engine {
            TableauEngine::Packed => AnyTableau::Packed(TableauSim::run(c, rng).unwrap()),
            TableauEngine::SparseGate => {
                AnyTableau::SparseGate(SparseGateTableauSim::run(c, rng).unwrap())
            }
            TableauEngine::Reference => {
                AnyTableau::Reference(ReferenceTableauSim::run(c, rng).unwrap())
            }
        }
    }

    fn stabilizers(&self) -> Vec<String> {
        let v = match self {
            AnyTableau::Packed(s) => s.stabilizers(),
            AnyTableau::SparseGate(s) => s.stabilizers(),
            AnyTableau::Reference(s) => s.stabilizers(),
        };
        v.iter().map(|s| s.to_string()).collect()
    }

    fn destabilizers(&self) -> Vec<String> {
        let v = match self {
            AnyTableau::Packed(s) => s.destabilizers(),
            AnyTableau::SparseGate(s) => s.destabilizers(),
            AnyTableau::Reference(s) => s.destabilizers(),
        };
        v.iter().map(|s| s.to_string()).collect()
    }

    fn support(&self) -> stabsim::AffineSupport {
        match self {
            AnyTableau::Packed(s) => s.support(),
            AnyTableau::SparseGate(s) => s.support(),
            AnyTableau::Reference(s) => s.support(),
        }
    }

    fn measure(&mut self, q: usize, rng: &mut impl rand::Rng) -> bool {
        match self {
            AnyTableau::Packed(s) => s.measure(q, rng),
            AnyTableau::SparseGate(s) => s.measure(q, rng),
            AnyTableau::Reference(s) => s.measure(q, rng),
        }
    }

    fn expectation(&self, p: &PauliString) -> i32 {
        match self {
            AnyTableau::Packed(s) => s.expectation(p),
            AnyTableau::SparseGate(s) => s.expectation(p),
            AnyTableau::Reference(s) => s.expectation(p),
        }
    }
}

/// RNG wrapper that counts every `next_u64` draw, for asserting the two
/// engines consume a shared stream at exactly the same rate.
struct CountingRng {
    inner: StdRng,
    draws: u64,
}

impl CountingRng {
    fn seed(seed: u64) -> Self {
        CountingRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }
}

impl RngCore for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// A random near-arbitrary Clifford circuit with optional noise channels.
/// Two-qubit picks degrade to `H` on single-qubit circuits.
fn clifford_circuit(n: usize, ops: &[(u8, usize, usize)], noise: bool) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, boff) in ops {
        let a = a % n;
        // A qubit distinct from `a` (only meaningful when n ≥ 2).
        let b = if n >= 2 {
            (a + 1 + boff % (n - 1)) % n
        } else {
            a
        };
        let kind = kind % 10;
        if n < 2 && (6..=8).contains(&kind) {
            c.h(a);
            continue;
        }
        match kind {
            0 => c.h(a),
            1 => c.s(a),
            2 => c.sdg(a),
            3 => c.x(a),
            4 => c.y(a),
            5 => c.z(a),
            6 => c.cx(a, b),
            7 => c.cz(a, b),
            8 => c.swap(a, b),
            _ => {
                if noise {
                    c.add_noise(qcir::NoiseChannel::Depolarize1(0.4), &[a]);
                }
                c.h(a)
            }
        };
    }
    c
}

/// Drives the same circuit + measurement schedule through all three
/// engines on independent counting streams of one seed and asserts
/// everything is bit-identical, including the number of RNG draws.
fn assert_engines_bit_identical(c: &Circuit, measure: &[usize], seed: u64) {
    let n = c.num_qubits();
    let mut rngs: Vec<CountingRng> = ENGINES.iter().map(|_| CountingRng::seed(seed)).collect();
    let mut sims: Vec<AnyTableau> = ENGINES
        .iter()
        .zip(&mut rngs)
        .map(|(&e, rng)| AnyTableau::run(e, c, rng))
        .collect();

    // Pre-collapse state: generators and support extraction must agree.
    let ref_stabs = sims[0].stabilizers();
    let ref_destabs = sims[0].destabilizers();
    let ref_support = sims[0].support();
    for (i, sim) in sims.iter().enumerate().skip(1) {
        let e = ENGINES[i];
        assert_eq!(sim.stabilizers(), ref_stabs, "{e:?} stabilizers diverged");
        assert_eq!(
            sim.destabilizers(),
            ref_destabs,
            "{e:?} destabilizers diverged"
        );
        let s = sim.support();
        assert_eq!(s.base(), ref_support.base(), "{e:?} support base diverged");
        assert_eq!(
            s.directions(),
            ref_support.directions(),
            "{e:?} support directions diverged"
        );
    }

    // Bulk sampling consumes the shared stream identically.
    let ref_samples = ref_support.sample_many(40, &mut rngs[0]);
    for (i, rng) in rngs.iter_mut().enumerate().skip(1) {
        let e = ENGINES[i];
        let samples = sims[i].support().sample_many(40, rng);
        assert_eq!(samples, ref_samples, "{e:?} samples diverged");
    }

    // Collapse-style measurement: same outcomes, same draw counts.
    for &q in measure {
        let q = q % n;
        let a = sims[0].measure(q, &mut rngs[0]);
        for i in 1..ENGINES.len() {
            let e = ENGINES[i];
            let b = sims[i].measure(q, &mut rngs[i]);
            assert_eq!(a, b, "{e:?} measurement outcome diverged at qubit {q}");
            assert_eq!(
                rngs[i].draws, rngs[0].draws,
                "{e:?} RNG draw counts diverged at qubit {q}"
            );
        }
    }

    // Post-collapse generators still agree.
    let ref_stabs = sims[0].stabilizers();
    for (i, sim) in sims.iter().enumerate().skip(1) {
        let e = ENGINES[i];
        assert_eq!(
            sim.stabilizers(),
            ref_stabs,
            "{e:?} post-measurement stabilizers diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random Clifford circuits + measurement schedules: the packed and
    /// sparse-gate engines are bit-identical to the frozen reference, RNG
    /// draws included.
    #[test]
    fn engines_match_reference(
        n in 1usize..9,
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..60),
        measure in proptest::collection::vec(0usize..16, 1..12),
        seed in 0u64..1_000,
    ) {
        let c = clifford_circuit(n, &ops, false);
        assert_engines_bit_identical(&c, &measure, seed);
    }

    /// Same with Pauli noise trajectories in the stream: every engine must
    /// draw the trajectory identically.
    #[test]
    fn engines_match_reference_with_noise(
        n in 2usize..7,
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..40),
        measure in proptest::collection::vec(0usize..16, 1..8),
        seed in 0u64..1_000,
    ) {
        let c = clifford_circuit(n, &ops, true);
        assert_engines_bit_identical(&c, &measure, seed);
    }

    /// Exact Pauli expectations agree across all three engines (the
    /// sparse-gate one computes the commutation screen column-wise).
    #[test]
    fn expectations_match_reference(
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..40),
        paulis in proptest::collection::vec(0u8..4, 5),
        seed in 0u64..1_000,
    ) {
        let n = 5;
        let c = clifford_circuit(n, &ops, false);
        let p = PauliString::from_paulis(
            paulis
                .iter()
                .map(|&k| match k {
                    0 => Pauli::I,
                    1 => Pauli::X,
                    2 => Pauli::Y,
                    _ => Pauli::Z,
                })
                .collect::<Vec<_>>(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = AnyTableau::run(TableauEngine::Reference, &c, &mut rng).expectation(&p);
        for engine in [TableauEngine::Packed, TableauEngine::SparseGate] {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = AnyTableau::run(engine, &c, &mut rng).expectation(&p);
            prop_assert_eq!(e, reference, "{:?} expectation diverged", engine);
        }
    }
}

/// The engine knob is selectable through the top-level pipeline
/// (`SuperSimConfig::tableau_engine`), and the whole run — marginals,
/// joint distribution, MLFT diagnostic — is bit-identical across all
/// three engines for the same seed.
#[test]
fn supersim_pipeline_bit_identical_across_engines() {
    use supersim::{SuperSim, SuperSimConfig};
    let w = workloads::hwea(6, 3, 2, 23);
    let mk = |engine| SuperSimConfig {
        shots: 800,
        seed: 2024,
        mlft: true,
        tableau_engine: engine,
        ..SuperSimConfig::default()
    };
    let reference = SuperSim::new(mk(TableauEngine::Reference))
        .run(&w.circuit)
        .unwrap();
    let rd = reference.distribution.unwrap();
    for engine in [TableauEngine::Packed, TableauEngine::SparseGate] {
        let run = SuperSim::new(mk(engine)).run(&w.circuit).unwrap();
        assert!(
            run.report.mlft_moved.to_bits() == reference.report.mlft_moved.to_bits(),
            "{engine:?} MLFT diagnostic diverged"
        );
        for (q, (p, r)) in run.marginals.iter().zip(&reference.marginals).enumerate() {
            assert!(
                p[0].to_bits() == r[0].to_bits() && p[1].to_bits() == r[1].to_bits(),
                "{engine:?} marginal bits differ at qubit {q}"
            );
        }
        let pd = run.distribution.unwrap();
        assert_eq!(pd.support_len(), rd.support_len());
        for ((pb, pp), (rb, rp)) in pd.iter().zip(rd.iter()) {
            assert_eq!(pb, rb, "{engine:?} joint emission order diverged");
            assert!(
                pp.to_bits() == rp.to_bits(),
                "{engine:?} probability bits at {pb}"
            );
        }
    }
}

/// Multi-word tableaus (n > 64, stride ≥ 2) exercise the general
/// slice-based collapse/scratch paths rather than the single-word
/// register fast paths — they must match the reference identically too.
#[test]
fn engines_match_reference_multiword() {
    for &(n, seed) in &[(65usize, 11u64), (96, 12), (130, 13)] {
        let mut gen = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        for _ in 0..6 * n {
            ops.push((
                (gen.next_u64() % 10) as u8,
                gen.next_u64() as usize % n,
                gen.next_u64() as usize % n,
            ));
        }
        let c = clifford_circuit(n, &ops, false);
        let measure: Vec<usize> = (0..2 * n).map(|i| (i * 7 + 3) % n).collect();
        assert_engines_bit_identical(&c, &measure, seed + 1000);
    }
}

/// End-to-end: fragment tensors built through any tableau engine are
/// bit-identical — same support, same emission order, same coefficient
/// float bits — at 1, 2, and 8 worker threads.
#[test]
fn fragment_tensors_bit_identical_across_engines_and_threads() {
    let mut c = Circuit::new(6);
    c.h(0);
    for q in 1..6 {
        c.cx(q - 1, q);
    }
    for q in [1usize, 3, 5] {
        c.t(q);
    }
    for q in 0..6 {
        c.h(q);
    }
    let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
    let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 501 + i).collect();
    let opts = TensorOptions::default();
    for mode in [EvalMode::Sampled { shots: 800 }, EvalMode::Exact] {
        let reference_eval = EvalOptions {
            mode,
            tableau_engine: TableauEngine::Reference,
            ..Default::default()
        };
        let baseline =
            cutkit::evaluate_fragment_tensors(&cut.fragments, &reference_eval, &opts, &seeds, 1)
                .unwrap();
        for engine in [TableauEngine::Packed, TableauEngine::SparseGate] {
            let eval = EvalOptions {
                mode,
                tableau_engine: engine,
                ..Default::default()
            };
            for threads in [1usize, 2, 8] {
                let tensors = cutkit::evaluate_fragment_tensors(
                    &cut.fragments,
                    &eval,
                    &opts,
                    &seeds,
                    threads,
                )
                .unwrap();
                assert_eq!(tensors.len(), baseline.len());
                for (fi, (p, r)) in tensors.iter().zip(&baseline).enumerate() {
                    assert_eq!(
                        p.support_len(),
                        r.support_len(),
                        "support diverged: {engine:?}, fragment {fi}, {threads} threads, {mode:?}"
                    );
                    for ((pb, pv), (rb, rv)) in p.iter().zip(r.iter()) {
                        assert_eq!(
                            pb, rb,
                            "outcome order diverged at fragment {fi} ({engine:?})"
                        );
                        for (x, y) in pv.iter().zip(rv) {
                            assert!(
                                x.to_bits() == y.to_bits(),
                                "coefficient bits diverged: {engine:?}, fragment {fi}, \
                                 outcome {pb}, {threads} threads, {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
