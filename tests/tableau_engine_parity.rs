//! Bit-identity of the word-parallel tableau engine against the frozen
//! bit-at-a-time baseline.
//!
//! The packed row-major `TableauSim` must be indistinguishable from
//! `ReferenceTableauSim` for any seed: identical measurement outcomes,
//! identical stabilizer/destabilizer generators, identical affine-support
//! extraction (same base, same direction order), identical expectation
//! values, and — the property everything downstream leans on — identical
//! seeded-RNG consumption, so every later draw in a shared stream stays
//! aligned. The last test pushes the guarantee end-to-end: fragment
//! tensors evaluated through either engine are bit-identical at 1, 2, and
//! 8 worker threads.

use cutkit::{cut_circuit, CutStrategy, EvalMode, EvalOptions, TableauEngine, TensorOptions};
use proptest::prelude::*;
use qcir::{Circuit, Pauli, PauliString};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use stabsim::{ReferenceTableauSim, TableauSim};

/// RNG wrapper that counts every `next_u64` draw, for asserting the two
/// engines consume a shared stream at exactly the same rate.
struct CountingRng {
    inner: StdRng,
    draws: u64,
}

impl CountingRng {
    fn seed(seed: u64) -> Self {
        CountingRng {
            inner: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }
}

impl RngCore for CountingRng {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// A random near-arbitrary Clifford circuit with optional noise channels.
/// Two-qubit picks degrade to `H` on single-qubit circuits.
fn clifford_circuit(n: usize, ops: &[(u8, usize, usize)], noise: bool) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, boff) in ops {
        let a = a % n;
        // A qubit distinct from `a` (only meaningful when n ≥ 2).
        let b = if n >= 2 {
            (a + 1 + boff % (n - 1)) % n
        } else {
            a
        };
        let kind = kind % 10;
        if n < 2 && (6..=8).contains(&kind) {
            c.h(a);
            continue;
        }
        match kind {
            0 => c.h(a),
            1 => c.s(a),
            2 => c.sdg(a),
            3 => c.x(a),
            4 => c.y(a),
            5 => c.z(a),
            6 => c.cx(a, b),
            7 => c.cz(a, b),
            8 => c.swap(a, b),
            _ => {
                if noise {
                    c.add_noise(qcir::NoiseChannel::Depolarize1(0.4), &[a]);
                }
                c.h(a)
            }
        };
    }
    c
}

/// Drives the same circuit + measurement schedule through both engines on
/// independent counting streams of one seed and asserts everything is
/// bit-identical, including the number of RNG draws.
fn assert_engines_bit_identical(c: &Circuit, measure: &[usize], seed: u64) {
    let n = c.num_qubits();
    let mut packed_rng = CountingRng::seed(seed);
    let mut reference_rng = CountingRng::seed(seed);

    let mut packed = TableauSim::run(c, &mut packed_rng).unwrap();
    let mut reference = ReferenceTableauSim::run(c, &mut reference_rng).unwrap();

    // Pre-collapse state: generators and support extraction must agree.
    let packed_stabs: Vec<String> = packed.stabilizers().iter().map(|s| s.to_string()).collect();
    let reference_stabs: Vec<String> = reference
        .stabilizers()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(packed_stabs, reference_stabs, "stabilizers diverged");
    let packed_destabs: Vec<String> = packed
        .destabilizers()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let reference_destabs: Vec<String> = reference
        .destabilizers()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(packed_destabs, reference_destabs, "destabilizers diverged");

    let ps = packed.support();
    let rs = reference.support();
    assert_eq!(ps.base(), rs.base(), "support base diverged");
    assert_eq!(
        ps.directions(),
        rs.directions(),
        "support directions diverged"
    );

    // Bulk sampling consumes the shared stream identically.
    let packed_samples = ps.sample_many(40, &mut packed_rng);
    let reference_samples = rs.sample_many(40, &mut reference_rng);
    assert_eq!(packed_samples, reference_samples, "samples diverged");

    // Collapse-style measurement: same outcomes, same draw counts.
    for &q in measure {
        let q = q % n;
        let a = packed.measure(q, &mut packed_rng);
        let b = reference.measure(q, &mut reference_rng);
        assert_eq!(a, b, "measurement outcome diverged at qubit {q}");
        assert_eq!(
            packed_rng.draws, reference_rng.draws,
            "RNG draw counts diverged at qubit {q}"
        );
    }
    assert_eq!(
        packed_rng.draws, reference_rng.draws,
        "total RNG draw counts diverged"
    );

    // Post-collapse generators still agree.
    let packed_stabs: Vec<String> = packed.stabilizers().iter().map(|s| s.to_string()).collect();
    let reference_stabs: Vec<String> = reference
        .stabilizers()
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(
        packed_stabs, reference_stabs,
        "post-measurement stabilizers diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random Clifford circuits + measurement schedules: the packed engine
    /// is bit-identical to the frozen reference, RNG draws included.
    #[test]
    fn packed_engine_matches_reference(
        n in 1usize..9,
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..60),
        measure in proptest::collection::vec(0usize..16, 1..12),
        seed in 0u64..1_000,
    ) {
        let c = clifford_circuit(n, &ops, false);
        assert_engines_bit_identical(&c, &measure, seed);
    }

    /// Same with Pauli noise trajectories in the stream: both engines must
    /// draw the trajectory identically.
    #[test]
    fn packed_engine_matches_reference_with_noise(
        n in 2usize..7,
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..40),
        measure in proptest::collection::vec(0usize..16, 1..8),
        seed in 0u64..1_000,
    ) {
        let c = clifford_circuit(n, &ops, true);
        assert_engines_bit_identical(&c, &measure, seed);
    }

    /// Exact Pauli expectations agree between the engines (the packed one
    /// computes them scratch-reusing and allocation-free per commute check).
    #[test]
    fn expectations_match_reference(
        ops in proptest::collection::vec((0u8..10, 0usize..16, 0usize..16), 1..40),
        paulis in proptest::collection::vec(0u8..4, 5),
        seed in 0u64..1_000,
    ) {
        let n = 5;
        let c = clifford_circuit(n, &ops, false);
        let mut rng = StdRng::seed_from_u64(seed);
        let packed = TableauSim::run(&c, &mut rng).unwrap();
        let p = PauliString::from_paulis(
            paulis
                .iter()
                .map(|&k| match k {
                    0 => Pauli::I,
                    1 => Pauli::X,
                    2 => Pauli::Y,
                    _ => Pauli::Z,
                })
                .collect::<Vec<_>>(),
        );
        let mut rng2 = StdRng::seed_from_u64(seed);
        let reference = ReferenceTableauSim::run(&c, &mut rng2).unwrap();
        prop_assert_eq!(packed.expectation(&p), reference.expectation(&p));
    }
}

/// The engine knob is selectable through the top-level pipeline
/// (`SuperSimConfig::tableau_engine`), and the whole run — marginals,
/// joint distribution, MLFT diagnostic — is bit-identical between the
/// engines for the same seed.
#[test]
fn supersim_pipeline_bit_identical_across_engines() {
    use supersim::{SuperSim, SuperSimConfig};
    let w = workloads::hwea(6, 3, 2, 23);
    let mk = |engine| SuperSimConfig {
        shots: 800,
        seed: 2024,
        mlft: true,
        tableau_engine: engine,
        ..SuperSimConfig::default()
    };
    let packed = SuperSim::new(mk(TableauEngine::Packed))
        .run(&w.circuit)
        .unwrap();
    let reference = SuperSim::new(mk(TableauEngine::Reference))
        .run(&w.circuit)
        .unwrap();
    assert!(packed.report.mlft_moved.to_bits() == reference.report.mlft_moved.to_bits());
    for (q, (p, r)) in packed
        .marginals
        .iter()
        .zip(&reference.marginals)
        .enumerate()
    {
        assert!(
            p[0].to_bits() == r[0].to_bits() && p[1].to_bits() == r[1].to_bits(),
            "marginal bits differ at qubit {q}"
        );
    }
    let (pd, rd) = (
        packed.distribution.unwrap(),
        reference.distribution.unwrap(),
    );
    assert_eq!(pd.support_len(), rd.support_len());
    for ((pb, pp), (rb, rp)) in pd.iter().zip(rd.iter()) {
        assert_eq!(pb, rb, "joint emission order diverged");
        assert!(pp.to_bits() == rp.to_bits(), "probability bits at {pb}");
    }
}

/// Multi-word tableaus (n > 64, stride ≥ 2) exercise the general
/// slice-based collapse/scratch paths rather than the single-word
/// register fast paths — they must match the reference identically too.
#[test]
fn packed_engine_matches_reference_multiword() {
    for &(n, seed) in &[(65usize, 11u64), (96, 12), (130, 13)] {
        let mut gen = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        for _ in 0..6 * n {
            ops.push((
                (gen.next_u64() % 10) as u8,
                gen.next_u64() as usize % n,
                gen.next_u64() as usize % n,
            ));
        }
        let c = clifford_circuit(n, &ops, false);
        let measure: Vec<usize> = (0..2 * n).map(|i| (i * 7 + 3) % n).collect();
        assert_engines_bit_identical(&c, &measure, seed + 1000);
    }
}

/// End-to-end: fragment tensors built through either tableau engine are
/// bit-identical — same support, same emission order, same coefficient
/// float bits — at 1, 2, and 8 worker threads.
#[test]
fn fragment_tensors_bit_identical_across_engines_and_threads() {
    let mut c = Circuit::new(6);
    c.h(0);
    for q in 1..6 {
        c.cx(q - 1, q);
    }
    for q in [1usize, 3, 5] {
        c.t(q);
    }
    for q in 0..6 {
        c.h(q);
    }
    let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
    let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 501 + i).collect();
    let opts = TensorOptions::default();
    for mode in [EvalMode::Sampled { shots: 800 }, EvalMode::Exact] {
        let packed_eval = EvalOptions {
            mode,
            tableau_engine: TableauEngine::Packed,
            ..Default::default()
        };
        let reference_eval = EvalOptions {
            mode,
            tableau_engine: TableauEngine::Reference,
            ..Default::default()
        };
        let baseline =
            cutkit::evaluate_fragment_tensors(&cut.fragments, &reference_eval, &opts, &seeds, 1)
                .unwrap();
        for threads in [1usize, 2, 8] {
            let packed = cutkit::evaluate_fragment_tensors(
                &cut.fragments,
                &packed_eval,
                &opts,
                &seeds,
                threads,
            )
            .unwrap();
            assert_eq!(packed.len(), baseline.len());
            for (fi, (p, r)) in packed.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    p.support_len(),
                    r.support_len(),
                    "support diverged: fragment {fi}, {threads} threads, {mode:?}"
                );
                for ((pb, pv), (rb, rv)) in p.iter().zip(r.iter()) {
                    assert_eq!(pb, rb, "outcome order diverged at fragment {fi}");
                    for (x, y) in pv.iter().zip(rv) {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "coefficient bits diverged: fragment {fi}, outcome {pb}, \
                             {threads} threads, {mode:?}"
                        );
                    }
                }
            }
        }
    }
}
