//! Property-based tests over the core invariants (see DESIGN.md).

use proptest::prelude::*;
use qcir::{Bits, Circuit, CliffordGate, Pauli, PauliString, Qubit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a Pauli operator.
fn pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

/// Strategy: a Pauli string on `n` qubits.
fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(pauli(), n).prop_map(PauliString::from_paulis)
}

/// Strategy: a random Clifford circuit description on `n` qubits.
fn clifford_ops(n: usize, len: usize) -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..7, 0..n, 0..n.saturating_sub(1).max(1)), 1..=len)
}

fn build_clifford(n: usize, ops: &[(u8, usize, usize)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, boff) in ops {
        let b = (a + 1 + boff) % n;
        match kind {
            0 => c.h(a),
            1 => c.s(a),
            2 => c.x(a),
            3 => c.sdg(a),
            4 => c.cz(a, b),
            5 => c.swap(a, b),
            _ => c.cx(a, b),
        };
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pauli multiplication is associative (with phases).
    #[test]
    fn pauli_string_mul_associative(
        a in pauli_string(4),
        b in pauli_string(4),
        c in pauli_string(4),
    ) {
        let left = a.mul(&b).mul(&c);
        let right = a.mul(&b.mul(&c));
        prop_assert_eq!(left, right);
    }

    /// P·P = I for every (phase-free) Pauli string.
    #[test]
    fn pauli_string_self_inverse(a in pauli_string(5)) {
        let sq = a.mul(&a);
        prop_assert!(sq.is_identity());
        prop_assert_eq!(sq.phase(), 0);
    }

    /// Clifford conjugation preserves commutation relations.
    #[test]
    fn conjugation_preserves_commutation(
        a in pauli_string(3),
        b in pauli_string(3),
        gate_pick in 0u8..6,
    ) {
        let before = a.commutes_with(&b);
        let (mut ac, mut bc) = (a, b);
        let apply = |p: &mut PauliString| match gate_pick {
            0 => p.conjugate_by(CliffordGate::H, &[Qubit(0)]),
            1 => p.conjugate_by(CliffordGate::S, &[Qubit(1)]),
            2 => p.conjugate_by(CliffordGate::SqrtX, &[Qubit(2)]),
            3 => p.conjugate_by(CliffordGate::Cx, &[Qubit(0), Qubit(1)]),
            4 => p.conjugate_by(CliffordGate::Cz, &[Qubit(1), Qubit(2)]),
            _ => p.conjugate_by(CliffordGate::Cy, &[Qubit(2), Qubit(0)]),
        };
        apply(&mut ac);
        apply(&mut bc);
        prop_assert_eq!(before, ac.commutes_with(&bc));
    }

    /// Bits: xor is an involution; extract/scatter round-trips.
    #[test]
    fn bits_xor_involution(x in proptest::collection::vec(any::<bool>(), 1..80),
                           y in proptest::collection::vec(any::<bool>(), 1..80)) {
        let n = x.len().min(y.len());
        let a = Bits::from_bools(&x[..n]);
        let b = Bits::from_bools(&y[..n]);
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        prop_assert_eq!(a, c);
    }

    /// The word-level `extract`/`scatter`/`scatter_into` kernels match a
    /// bit-at-a-time reference at cross-word-boundary lengths.
    #[test]
    fn bits_extract_scatter_match_bit_loop_reference(
        len_pick in 0usize..4,
        xs in proptest::collection::vec(any::<bool>(), 130),
        ys in proptest::collection::vec(any::<bool>(), 130),
        stride in 1usize..5,
        offset in 0usize..4,
    ) {
        let len = [63usize, 64, 65, 130][len_pick];
        let src = Bits::from_bools(&xs[..len]);
        let indices: Vec<usize> = (offset.min(len - 1)..len).step_by(stride).collect();

        // extract vs bit loop.
        let got = src.extract(&indices);
        let mut want = Bits::zeros(indices.len());
        for (k, &i) in indices.iter().enumerate() {
            want.set(k, src.get(i));
        }
        prop_assert_eq!(&got, &want);

        // scatter / scatter_into vs bit loop, onto a dirty target.
        let small = got;
        let mut target = Bits::from_bools(&ys[..len]);
        let mut want_target = target.clone();
        small.scatter_into(&indices, &mut target);
        for (k, &i) in indices.iter().enumerate() {
            want_target.set(i, small.get(k));
        }
        prop_assert_eq!(&target, &want_target);

        let scattered = small.scatter(&indices, len);
        let mut want_scatter = Bits::zeros(len);
        for (k, &i) in indices.iter().enumerate() {
            want_scatter.set(i, small.get(k));
        }
        prop_assert_eq!(scattered, want_scatter);
    }

    /// The word-level `concat` kernel matches a bit-at-a-time reference at
    /// cross-word-boundary lengths.
    #[test]
    fn bits_concat_matches_bit_loop_reference(
        la_pick in 0usize..5,
        lb_pick in 0usize..5,
        xs in proptest::collection::vec(any::<bool>(), 130),
        ys in proptest::collection::vec(any::<bool>(), 130),
    ) {
        let la = [1usize, 63, 64, 65, 130][la_pick];
        let lb = [1usize, 63, 64, 65, 130][lb_pick];
        let a = Bits::from_bools(&xs[..la]);
        let b = Bits::from_bools(&ys[..lb]);
        let got = a.concat(&b);
        let mut want = Bits::zeros(la + lb);
        for i in 0..la {
            want.set(i, a.get(i));
        }
        for i in 0..lb {
            want.set(la + i, b.get(i));
        }
        prop_assert_eq!(got, want);
    }

    /// `IndexPlan` agrees with the direct kernels on any index list.
    #[test]
    fn index_plan_matches_direct_kernels(
        xs in proptest::collection::vec(any::<bool>(), 130),
        picks in proptest::collection::vec(0usize..130, 1..40),
    ) {
        use qcir::IndexPlan;
        let src = Bits::from_bools(&xs);
        let plan = IndexPlan::new(&picks, 130);
        prop_assert_eq!(plan.extract(&src), src.extract(&picks));
        let small = src.extract(&picks);
        let mut a = src.clone();
        let mut b = src.clone();
        plan.scatter_into(&small, &mut a);
        small.scatter_into(&picks, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Tableau invariants hold after arbitrary Clifford circuits:
    /// stabilizers commute pairwise, destabilizer i anticommutes exactly
    /// with stabilizer i.
    #[test]
    fn tableau_symplectic_invariants(ops in clifford_ops(4, 24)) {
        let c = build_clifford(4, &ops);
        let mut rng = StdRng::seed_from_u64(7);
        let sim = stabsim::TableauSim::run(&c, &mut rng).unwrap();
        let stabs = sim.stabilizers();
        let destabs = sim.destabilizers();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!(stabs[i].commutes_with(&stabs[j]));
                prop_assert_eq!(destabs[i].commutes_with(&stabs[j]), i != j);
            }
        }
    }

    /// The tableau's sampled support matches statevector probabilities:
    /// every enumerated support point has probability 2^{-dim}, everything
    /// else zero.
    #[test]
    fn tableau_support_matches_statevector(ops in clifford_ops(4, 20)) {
        let c = build_clifford(4, &ops);
        let mut rng = StdRng::seed_from_u64(3);
        let sim = stabsim::TableauSim::run(&c, &mut rng).unwrap();
        let sup = sim.support();
        let sv = svsim::StateVec::run(&c).unwrap();
        let expected = 1.0 / (1u64 << sup.dim()) as f64;
        for x in 0..16usize {
            let b = Bits::from_u64(x as u64, 4);
            let p = sv.probability_of_index(x);
            if sup.contains(&b) {
                prop_assert!((p - expected).abs() < 1e-9, "in-support {}", b);
            } else {
                prop_assert!(p < 1e-9, "out-of-support {} has p={}", b, p);
            }
        }
    }

    /// Tableau Pauli expectations match the statevector.
    #[test]
    fn tableau_expectations_match_statevector(
        ops in clifford_ops(3, 16),
        p in pauli_string(3),
    ) {
        let c = build_clifford(3, &ops);
        let mut rng = StdRng::seed_from_u64(5);
        let sim = stabsim::TableauSim::run(&c, &mut rng).unwrap();
        let sv = svsim::StateVec::run(&c).unwrap();
        let tableau_val = sim.expectation(&p) as f64;
        let sv_val = sv.expectation_pauli(&p);
        prop_assert!((tableau_val - sv_val).abs() < 1e-9,
            "<{}> tableau {} vs sv {}", p, tableau_val, sv_val);
    }

    /// CH-form amplitudes match the statevector on Clifford+T circuits.
    #[test]
    fn chform_amplitudes_match_statevector(
        ops in clifford_ops(3, 14),
        t_qubits in proptest::collection::vec(0usize..3, 0..3),
    ) {
        let mut c = build_clifford(3, &ops);
        for &q in &t_qubits {
            c.t(q);
        }
        let sim = extstab::StabDecomp::run(&c, 64).unwrap();
        let sv = svsim::StateVec::run(&c).unwrap();
        for x in 0..8usize {
            let b = Bits::from_u64(x as u64, 3);
            let a = sim.amplitude(&b);
            prop_assert!(a.approx_eq(sv.amplitude(x), 1e-9),
                "amplitude {:03b}: {} vs {}", x, a, sv.amplitude(x));
        }
    }

    /// MPS amplitudes match the statevector (exact mode).
    #[test]
    fn mps_amplitudes_match_statevector(ops in clifford_ops(4, 16)) {
        let c = build_clifford(4, &ops);
        let mps = mpssim::MpsState::run(&c, &mpssim::MpsConfig::default()).unwrap();
        let sv = svsim::StateVec::run(&c).unwrap();
        for x in 0..16usize {
            let b = Bits::from_u64(x as u64, 4);
            prop_assert!(mps.amplitude(&b).approx_eq(sv.amplitude(x), 1e-8));
        }
    }

    /// Hellinger fidelity is symmetric, bounded, and 1 on identical inputs.
    #[test]
    fn hellinger_fidelity_properties(
        probs in proptest::collection::vec(0.0f64..1.0, 4),
        probs2 in proptest::collection::vec(0.0f64..1.0, 4),
    ) {
        use metrics::Distribution;
        let norm = |v: &[f64]| {
            let total: f64 = v.iter().sum::<f64>().max(1e-12);
            Distribution::from_pairs(
                2,
                v.iter()
                    .enumerate()
                    .map(|(i, &p)| (Bits::from_u64(i as u64, 2), p / total))
                    .collect(),
            )
        };
        let a = norm(&probs);
        let b = norm(&probs2);
        let fab = a.hellinger_fidelity(&b);
        let fba = b.hellinger_fidelity(&a);
        prop_assert!((fab - fba).abs() < 1e-10);
        prop_assert!((0.0..=1.0 + 1e-10).contains(&fab));
        prop_assert!((a.hellinger_fidelity(&a) - 1.0).abs() < 1e-10);
    }

    /// Cut + exact reconstruction equals direct simulation for random
    /// near-Clifford circuits (the paper's core claim, property-tested).
    #[test]
    fn cutting_is_exact_on_random_near_clifford(
        ops in clifford_ops(3, 12),
        t_qubit in 0usize..3,
    ) {
        let mut c = build_clifford(3, &ops);
        c.t(t_qubit);
        c.h(t_qubit);
        let result = supersim::SuperSim::new(supersim::SuperSimConfig {
            exact: true,
            ..supersim::SuperSimConfig::default()
        })
        .run(&c)
        .unwrap();
        let sv = svsim::StateVec::run(&c).unwrap();
        let dist = result.distribution.as_ref().unwrap();
        for x in 0..8usize {
            let b = Bits::from_u64(x as u64, 3);
            prop_assert!((dist.prob(&b) - sv.probability_of_index(x)).abs() < 1e-8);
        }
    }
}
