//! QEC-oriented integration tests: syndrome extraction correctness of the
//! phase repetition code under the stabilizer engines.

use qcir::{Circuit, NoiseChannel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stabsim::{FrameSim, TableauSim};

/// Builds a d-data-qubit phase-code cycle with a deterministic Z error on
/// `error_qubit` (replacing stochastic noise for exact syndrome checks).
fn cycle_with_z_error(d: usize, error_qubit: usize) -> Circuit {
    let n = 2 * d - 1;
    let mut c = Circuit::new(n);
    for q in 0..d {
        c.h(q);
    }
    c.z(error_qubit);
    for i in 0..d - 1 {
        let anc = d + i;
        c.h(anc);
        c.cx(anc, i);
        c.cx(anc, i + 1);
        c.h(anc);
    }
    for q in 0..d {
        c.h(q);
    }
    c
}

#[test]
fn interior_z_error_fires_two_adjacent_syndromes() {
    let d = 5;
    let mut rng = StdRng::seed_from_u64(1);
    let mut sim = TableauSim::run(&cycle_with_z_error(d, 2), &mut rng).unwrap();
    let syndromes: Vec<bool> = (d..2 * d - 1).map(|q| sim.measure(q, &mut rng)).collect();
    // Z on data qubit 2 flips X₁X₂ and X₂X₃ checks: ancillas 1 and 2.
    assert_eq!(syndromes, vec![false, true, true, false]);
}

#[test]
fn boundary_z_error_fires_one_syndrome() {
    let d = 5;
    let mut rng = StdRng::seed_from_u64(2);
    let mut sim = TableauSim::run(&cycle_with_z_error(d, 0), &mut rng).unwrap();
    let syndromes: Vec<bool> = (d..2 * d - 1).map(|q| sim.measure(q, &mut rng)).collect();
    assert_eq!(syndromes, vec![true, false, false, false]);
}

#[test]
fn no_error_fires_nothing_and_data_returns_to_zero() {
    let d = 4;
    let w = workloads::phase_repetition(workloads::RepetitionConfig {
        data_qubits: d,
        phase_noise: None,
        t_gates: 0,
        seed: 0,
    });
    let mut rng = StdRng::seed_from_u64(3);
    let mut sim = TableauSim::run(&w.circuit, &mut rng).unwrap();
    for q in 0..2 * d - 1 {
        assert!(!sim.measure(q, &mut rng), "qubit {q} should read 0");
    }
}

#[test]
fn frame_simulator_syndrome_rate_scales_with_noise() {
    let d = 7;
    let shots = 30_000;
    let mut rates = Vec::new();
    for &p in &[0.02, 0.1, 0.3] {
        let w = workloads::phase_repetition(workloads::RepetitionConfig {
            data_qubits: d,
            phase_noise: Some(p),
            t_gates: 0,
            seed: 4,
        });
        let mut rng = StdRng::seed_from_u64(5);
        let samples = FrameSim::sample(&w.circuit, shots, &mut rng).unwrap();
        let fired: f64 = samples
            .iter()
            .map(|s| (d..2 * d - 1).filter(|&q| s.get(q)).count() as f64)
            .sum::<f64>()
            / shots as f64;
        rates.push(fired);
    }
    assert!(
        rates[0] < rates[1] && rates[1] < rates[2],
        "syndrome rate must grow with noise: {rates:?}"
    );
    // Analytic check at p: each adjacent pair's syndrome fires when exactly
    // one of the two data qubits flipped: 2p(1-p). Expected fired count =
    // (d-1)·2p(1-p).
    let p = 0.02;
    let expect = (d as f64 - 1.0) * 2.0 * p * (1.0 - p);
    assert!(
        (rates[0] - expect).abs() < 0.05,
        "rate at p=0.02: got {} want {expect}",
        rates[0]
    );
}

#[test]
fn depolarizing_noise_on_ancilla_corrupts_syndromes() {
    let d = 4;
    let n = 2 * d - 1;
    let mut c = Circuit::new(n);
    for q in 0..d {
        c.h(q);
    }
    for i in 0..d - 1 {
        let anc = d + i;
        c.h(anc);
        c.cx(anc, i);
        c.cx(anc, i + 1);
        c.h(anc);
        // Measurement-adjacent ancilla noise.
        c.add_noise(NoiseChannel::Depolarize1(0.5), &[anc]);
    }
    for q in 0..d {
        c.h(q);
    }
    let mut rng = StdRng::seed_from_u64(6);
    let shots = 20_000;
    let samples = FrameSim::sample(&c, shots, &mut rng).unwrap();
    let fired: f64 = samples
        .iter()
        .map(|s| (d..n).filter(|&q| s.get(q)).count() as f64)
        .sum::<f64>()
        / shots as f64;
    // Depolarize(0.5) flips the measured bit with probability 1/3 (X or Y).
    let expect = (d as f64 - 1.0) / 3.0;
    assert!((fired - expect).abs() < 0.1, "fired {fired} want {expect}");
}
