//! Offline mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `proptest` API the workspace's property tests use:
//! strategies over ranges, tuples, `Just`, `prop_oneof!`, `prop_map`,
//! `collection::vec`, `any::<T>()`, and the `proptest!` / `prop_assert*`
//! macros. No shrinking is performed — a failing case panics with the
//! generated inputs' debug representation left to the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::*;

    /// The RNG driving strategy generation.
    pub type TestRng = StdRng;

    /// Deterministic per-test RNG: hashed from the property name so case
    /// sequences are stable across runs (there is no failure persistence).
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Strategies: random-value generators composable like proptest's.
pub mod strategy {
    use super::test_runner::TestRng;
    use super::*;

    /// A generator of random values (object-safe; no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (see [`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Full-domain generation for [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy over a type's full domain.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — proptest's vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual star-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a property-level condition (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strategy:expr),+ $(,)? ) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            let mut options: ::std::vec::Vec<
                ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
            > = ::std::vec::Vec::new();
            $( options.push(::std::boxed::Box::new($strategy)); )+
            $crate::strategy::OneOf::new(options)
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let run = move || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if outcome.is_err() {
                    eprintln!(
                        "proptest case {}/{} of {} failed (no shrinking in offline shim)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(outcome.unwrap_err());
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, pair in (0u8..4, -1.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(v in collection::vec(any::<bool>(), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}
