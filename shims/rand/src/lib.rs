//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the rand 0.9 API that SuperSim-RS uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded through SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for `bool`, the primitive integers, and floats;
//! * [`Rng::random_range`] over half-open and inclusive integer/float
//!   ranges.
//!
//! Streams are deterministic per seed (a requirement throughout the
//! workspace) but are *not* the same streams real `rand` would produce.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a primitive type uniformly over its full domain
    /// (floats: uniform in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over an interval. The single blanket
/// [`SampleRange`] impl below keeps integer-literal inference working the
/// way it does with real rand (`random_range(0..3)` used as a slice index
/// infers `usize`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                // Modulo bias is < 2^-32 for the spans used here.
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator — the shim's replacement for rand's `StdRng`.
    ///
    /// Statistically strong for simulation workloads, tiny, and fully
    /// deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    trait NextPub {
        fn next_u64_pub(&mut self) -> u64;
    }
    impl NextPub for StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=4u8);
            assert!(y <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
