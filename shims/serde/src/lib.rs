//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access; this shim keeps the
//! `#[derive(serde::Serialize, serde::Deserialize)]` annotations across the
//! workspace compiling by expanding them to nothing. Swap in the real serde
//! (same major version) once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};
