//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` on several types so the
//! code is ready for a real serde dependency; offline, the derives expand
//! to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
