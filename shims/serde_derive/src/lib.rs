//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` on several types so the
//! code is ready for a real serde dependency; offline, the derives expand
//! to nothing. The `serde` helper attribute is declared (matching the real
//! `serde_derive` interface) so field annotations like `#[serde(skip)]`
//! compile against the shim and take effect once real serde is swapped in.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
