//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use — benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple mean-of-samples timer that prints one line per
//! benchmark. No plots, no statistics beyond mean/min, no baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (printing happens per benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Timing results of one benchmark.
#[derive(Clone, Copy, Debug)]
struct Sampled {
    mean: Duration,
    min: Duration,
    iters: u64,
}

/// Per-benchmark timer handle.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Sampled>,
}

impl Bencher {
    /// Times the closure: warm-up, then `sample_size` timed samples with an
    /// iteration count fitted to the measurement-time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
        }
        let denom = (self.sample_size as u64 * iters_per_sample).max(1);
        self.result = Some(Sampled {
            mean: total / denom as u32,
            min: min / iters_per_sample as u32,
            iters: denom,
        });
    }

    fn report(&self, group: &str, id: &str) {
        match self.result {
            Some(r) => println!(
                "{group}/{id}: mean {:?}, best {:?} ({} iters)",
                r.mean, r.min, r.iters
            ),
            None => println!("{group}/{id}: no measurement"),
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
    }
}
