//! A uniform sampler interface over every simulator backend.
//!
//! The paper's evaluation (§VI-A) uses all simulators "as samplers, using
//! 5000 shots to build output distributions". The [`Simulator`] trait
//! captures that protocol so the benchmark harness and examples can compare
//! backends uniformly:
//!
//! * [`StatevectorBackend`] — the exact dense simulator (paper's "SV");
//! * [`StabilizerBackend`] — Clifford circuits only (paper's Stim baseline);
//! * [`ExtStabBackend`] — Clifford+T via stabilizer decompositions
//!   (paper's "Qiskit extended stabilizer");
//! * [`MpsBackend`] — matrix product states (paper's "Qiskit MPS");
//! * [`SuperSim`](crate::SuperSim) — Clifford-based circuit cutting.

use crate::{SuperSim, SuperSimError};
use metrics::Distribution;
use mpssim::{MpsConfig, MpsState};
use qcir::Circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Error from a [`Simulator`] backend.
#[derive(Debug, Clone)]
pub enum BackendError {
    /// The backend cannot simulate this circuit (wrong gate class, noise,
    /// or size limits).
    Unsupported(String),
    /// The circuit exceeds the backend's resource limits.
    TooLarge(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported(s) => write!(f, "unsupported: {s}"),
            BackendError::TooLarge(s) => write!(f, "too large: {s}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A shot-based quantum circuit sampler.
pub trait Simulator {
    /// Human-readable backend name (used in benchmark tables).
    fn name(&self) -> String;

    /// Builds an empirical output distribution from `shots` samples.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] when the backend cannot simulate the
    /// circuit.
    fn run_distribution(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError>;

    /// Single-qubit marginals of the sampled distribution.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] when the backend cannot simulate the
    /// circuit.
    fn run_marginals(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Vec<[f64; 2]>, BackendError> {
        Ok(self.run_distribution(circuit, shots, seed)?.marginals())
    }
}

/// The exact dense statevector sampler (the paper's "SV simulator").
#[derive(Clone, Copy, Debug, Default)]
pub struct StatevectorBackend;

impl Simulator for StatevectorBackend {
    fn name(&self) -> String {
        "SV simulator".into()
    }

    fn run_distribution(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError> {
        let sv =
            svsim::StateVec::run(circuit).map_err(|e| BackendError::TooLarge(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = sv.sample(shots, &mut rng);
        Ok(Distribution::from_samples(circuit.num_qubits(), &samples))
    }
}

/// The Clifford-only tableau sampler (the paper's Stim baseline, Fig. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StabilizerBackend;

impl Simulator for StabilizerBackend {
    fn name(&self) -> String {
        "Stabilizer (Stim-like)".into()
    }

    fn run_distribution(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = if circuit.has_noise() {
            stabsim::FrameSim::sample(circuit, shots, &mut rng)
                .map_err(|e| BackendError::Unsupported(e.to_string()))?
        } else {
            stabsim::TableauSim::run(circuit, &mut rng)
                .map_err(|e| BackendError::Unsupported(e.to_string()))?
                .sample_all(shots, &mut rng)
        };
        Ok(Distribution::from_samples(circuit.num_qubits(), &samples))
    }
}

/// The extended stabilizer sampler (paper's "Qiskit extended stabilizer").
#[derive(Clone, Copy, Debug)]
pub struct ExtStabBackend {
    /// Cap on the stabilizer decomposition rank (`2^t` for `t` T gates).
    pub rank_cap: usize,
    /// Metropolis steps between recorded samples.
    pub mixing: usize,
}

impl Default for ExtStabBackend {
    fn default() -> Self {
        ExtStabBackend {
            rank_cap: 1 << 16,
            mixing: 16,
        }
    }
}

impl Simulator for ExtStabBackend {
    fn name(&self) -> String {
        "Extended stabilizer".into()
    }

    fn run_distribution(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError> {
        let sim = extstab::StabDecomp::run(circuit, self.rank_cap).map_err(|e| match e {
            extstab::ExtStabError::RankExceeded { .. } => BackendError::TooLarge(e.to_string()),
            extstab::ExtStabError::Unsupported(_) => BackendError::Unsupported(e.to_string()),
        })?;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = sim.sample_metropolis(shots, self.mixing, &mut rng);
        Ok(Distribution::from_samples(circuit.num_qubits(), &samples))
    }
}

/// The matrix-product-state sampler (paper's "Qiskit MPS").
#[derive(Clone, Copy, Debug, Default)]
pub struct MpsBackend {
    /// MPS truncation configuration (default: exact, unbounded bond).
    pub config: MpsConfig,
}

impl Simulator for MpsBackend {
    fn name(&self) -> String {
        "Qiskit-style MPS".into()
    }

    fn run_distribution(
        &self,
        circuit: &Circuit,
        shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError> {
        let mps = MpsState::run(circuit, &self.config)
            .map_err(|e| BackendError::Unsupported(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = mps.sample(shots, &mut rng);
        Ok(Distribution::from_samples(circuit.num_qubits(), &samples))
    }
}

impl Simulator for SuperSim {
    fn name(&self) -> String {
        "SuperSim Clifford cut".into()
    }

    fn run_distribution(
        &self,
        circuit: &Circuit,
        _shots: usize,
        seed: u64,
    ) -> Result<Distribution, BackendError> {
        let mut cfg = self.config().clone();
        cfg.seed = seed;
        let result = SuperSim::new(cfg).run(circuit).map_err(|e| match e {
            SuperSimError::Cut(_) => BackendError::Unsupported(e.to_string()),
            SuperSimError::Eval(_) | SuperSimError::Rejected(_) => {
                BackendError::TooLarge(e.to_string())
            }
            _ => BackendError::Unsupported(e.to_string()),
        })?;
        result.distribution.ok_or_else(|| {
            BackendError::TooLarge("joint distribution support too large; use run_marginals".into())
        })
    }

    fn run_marginals(
        &self,
        circuit: &Circuit,
        _shots: usize,
        seed: u64,
    ) -> Result<Vec<[f64; 2]>, BackendError> {
        let mut cfg = self.config().clone();
        cfg.seed = seed;
        let result = SuperSim::new(cfg).run(circuit).map_err(|e| match e {
            SuperSimError::Cut(_) => BackendError::Unsupported(e.to_string()),
            SuperSimError::Eval(_) | SuperSimError::Rejected(_) => {
                BackendError::TooLarge(e.to_string())
            }
            _ => BackendError::Unsupported(e.to_string()),
        })?;
        Ok(result.marginals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperSimConfig;

    fn near_clifford_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        c
    }

    #[test]
    fn all_backends_agree_on_near_clifford_circuit() {
        let c = near_clifford_circuit();
        let shots = 30_000;
        let reference = StatevectorBackend
            .run_distribution(&c, shots, 1)
            .expect("sv runs");
        let backends: Vec<Box<dyn Simulator>> = vec![
            Box::new(ExtStabBackend::default()),
            Box::new(MpsBackend::default()),
            Box::new(SuperSim::new(SuperSimConfig {
                shots,
                seed: 1,
                ..SuperSimConfig::default()
            })),
        ];
        for b in &backends {
            let d = b.run_distribution(&c, shots, 2).unwrap_or_else(|e| {
                panic!("{} failed: {e}", b.name());
            });
            let f = reference.hellinger_fidelity(&d);
            assert!(f > 0.98, "{} fidelity {f}", b.name());
        }
    }

    #[test]
    fn stabilizer_backend_rejects_t_gates() {
        let c = near_clifford_circuit();
        assert!(matches!(
            StabilizerBackend.run_distribution(&c, 10, 0),
            Err(BackendError::Unsupported(_))
        ));
    }

    #[test]
    fn stabilizer_backend_handles_clifford() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let d = StabilizerBackend.run_distribution(&c, 4000, 3).unwrap();
        let m = d.marginal(0);
        assert!((m[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn supersim_marginals_for_wide_clifford_circuit() {
        // 40-qubit GHZ-like Clifford circuit with one T: marginals must be
        // available even though the joint may be withheld.
        let mut c = Circuit::new(40);
        c.h(0);
        for q in 1..40 {
            c.cx(q - 1, q);
        }
        c.t(39);
        let sim = SuperSim::new(SuperSimConfig {
            shots: 2000,
            seed: 5,
            ..SuperSimConfig::default()
        });
        let marg = sim.run_marginals(&c, 2000, 5).unwrap();
        assert_eq!(marg.len(), 40);
        for (q, m) in marg.iter().enumerate() {
            assert!((m[0] - 0.5).abs() < 0.1, "qubit {q} marginal {m:?}");
        }
    }
}
