//! SuperSim-RS: Clifford-based circuit cutting for scalable quantum
//! circuit simulation.
//!
//! This crate is the user-facing framework of the reproduction of
//! *"Clifford-based Circuit Cutting for Quantum Simulation"* (ISCA 2023).
//! It wires the three pipeline stages of the paper's §V together:
//!
//! 1. the **circuit cutter** isolates non-Clifford gates
//!    ([`cutkit::cut_circuit`]);
//! 2. the **fragment evaluator** runs every fragment variant on the right
//!    backend — the stabilizer simulator for Clifford fragments, the exact
//!    statevector simulator for the rest — optionally in parallel;
//! 3. the **distribution builder** recombines fragment tensors into the
//!    uncut circuit's output distribution or single-qubit marginals.
//!
//! ```
//! use qcir::Circuit;
//! use supersim::{SuperSim, SuperSimConfig};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1).h(1);
//! let sim = SuperSim::new(SuperSimConfig {
//!     exact: true,
//!     ..SuperSimConfig::default()
//! });
//! let result = sim.run(&c).unwrap();
//! assert_eq!(result.report.num_cuts, 2);
//! let dist = result.distribution.as_ref().unwrap();
//! assert!((dist.total_mass() - 1.0).abs() < 1e-9);
//! ```

mod backends;
mod pipeline;

pub use backends::{
    BackendError, ExtStabBackend, MpsBackend, Simulator, StabilizerBackend, StatevectorBackend,
};
pub use pipeline::{RunReport, RunResult, SuperSim, SuperSimConfig, SuperSimError};

// Re-export the pieces users need to configure the pipeline.
pub use cutkit::{CutPoint, CutStrategy, EvalMode, TableauEngine};
