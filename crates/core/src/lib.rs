//! SuperSim-RS: Clifford-based circuit cutting for scalable quantum
//! circuit simulation.
//!
//! This crate is the user-facing framework of the reproduction of
//! *"Clifford-based Circuit Cutting for Quantum Simulation"* (ISCA 2023).
//!
//! # Plan / execute / batch architecture
//!
//! The pipeline of the paper's §V is staged so its one-time structure is
//! separated from its per-run work:
//!
//! 1. **Plan** ([`SuperSim::plan`] → [`CutPlan`]): the circuit cutter
//!    isolates non-Clifford gates ([`cutkit::cut_circuit`]) and
//!    precomputes everything reusable — fragment structure, tomography
//!    variant enumeration, extraction and recombination index plans.
//! 2. **Execute** ([`Executor`]): every fragment variant runs on the
//!    right backend (stabilizer simulator for Clifford fragments, exact
//!    statevector for the rest), sampled tensors get the MLFT correction,
//!    and the distribution builder recombines the fragment tensors. Each
//!    execution takes its own [`ExecParams`] (seed, shot budget), so
//!    parameterized sweeps ([`Executor::run_sweep`]) cut **once** and
//!    execute many times — the CAFQA/VQE and fragment-tomography shape.
//! 3. **Batch** ([`SuperSim::run_batch`]): many circuits flatten into
//!    one worker pool spanning all circuits *and* all stages. Work is a
//!    dependency-driven task queue of fixed (circuit × fragment ×
//!    variant) evaluation chunks, per-fragment MLFT corrections, and
//!    per-circuit recombinations: a circuit advances to its next stage
//!    the moment its own last task lands, so there are no per-circuit
//!    stage barriers and one slow circuit cannot serialize the batch.
//!
//! # Cross-circuit threading model
//!
//! One pool, sized by [`SuperSimConfig::threads`], serves everything.
//! Single runs parallelize within each stage; batches and sweeps
//! parallelize across circuits (each batch recombination contracts
//! single-threaded — recombination is bit-identical for any thread
//! count, so this is purely a scheduling choice). **Determinism:** for a
//! given seed, every path — sequential, parallel, batched — produces
//! bit-identical results at every thread count, and batch/sweep output is
//! bit-identical to independent sequential [`SuperSim::run`] calls; work
//! decompositions are fixed and float folds happen in (circuit, fragment,
//! variant) order, never in completion order.
//!
//! ```
//! use qcir::Circuit;
//! use supersim::{ExecParams, SuperSim, SuperSimConfig};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1).h(1);
//! let sim = SuperSim::new(SuperSimConfig {
//!     exact: true,
//!     ..SuperSimConfig::default()
//! });
//!
//! // One-shot: plan + execute fused.
//! let result = sim.run(&c).unwrap();
//! assert_eq!(result.report.num_cuts, 2);
//! let dist = result.distribution.as_ref().unwrap();
//! assert!((dist.total_mass() - 1.0).abs() < 1e-9);
//!
//! // Sweep: cut once, execute for many seeds on one shared pool.
//! let plan = sim.plan(&c).unwrap();
//! let points: Vec<ExecParams> = (0..3)
//!     .map(|s| ExecParams::from_config(sim.config()).with_seed(s))
//!     .collect();
//! let runs = sim.executor().run_sweep(&plan, &points);
//! assert_eq!(runs.len(), 3);
//! ```

mod backends;
mod pipeline;

pub use backends::{
    BackendError, ExtStabBackend, MpsBackend, Simulator, StabilizerBackend, StatevectorBackend,
};
pub use pipeline::{
    Admission, AdmissionError, AdmissionPolicy, CutPlan, ExecParams, Executor, PlanCacheStats,
    PlanCost, PlanLoadError, RunReport, RunResult, RunStats, SuperSim, SuperSimConfig,
    SuperSimError,
};

// Re-export the persistent worker-pool stats surfaced by
// [`SuperSim::stats`] (the pool itself is process-wide, in `runtime`).
pub use runtime::PoolStats;

// Re-export the pieces users need to configure the pipeline.
pub use cutkit::{CutPoint, CutStrategy, EvalMode, TableauEngine};

// Re-export the supervision primitives batch callers configure
// ([`SuperSimConfig::cancel`], [`SuperSimConfig::faults`]).
pub use faultkit::{CancelToken, Fault, FaultKind, FaultPlan, Interrupt, Stage};
