//! SuperSim-RS: Clifford-based circuit cutting for scalable quantum
//! circuit simulation.
//!
//! This crate is the user-facing framework of the reproduction of
//! *"Clifford-based Circuit Cutting for Quantum Simulation"* (ISCA 2023).
//!
//! # Plan / execute / batch architecture
//!
//! The pipeline of the paper's §V is staged so its one-time structure is
//! separated from its per-run work:
//!
//! 1. **Plan** ([`SuperSim::plan`] → [`CutPlan`]): the circuit cutter
//!    isolates non-Clifford gates ([`cutkit::cut_circuit`]) and
//!    precomputes everything reusable — fragment structure, tomography
//!    variant enumeration, extraction and recombination index plans.
//! 2. **Execute** ([`Executor`]): every fragment variant runs on the
//!    right backend (stabilizer simulator for Clifford fragments, exact
//!    statevector for the rest), sampled tensors get the MLFT correction,
//!    and the distribution builder recombines the fragment tensors. Each
//!    execution takes its own [`ExecParams`] (seed, shot budget), so
//!    parameterized sweeps ([`Executor::run_sweep`]) cut **once** and
//!    execute many times — the CAFQA/VQE and fragment-tomography shape.
//! 3. **Batch** ([`SuperSim::run_batch`]): many circuits flatten into
//!    one worker pool spanning all circuits *and* all stages. Work is a
//!    dependency-driven task queue of fixed (circuit × fragment ×
//!    variant) evaluation chunks, per-fragment MLFT corrections, and
//!    per-circuit recombinations: a circuit advances to its next stage
//!    the moment its own last task lands, so there are no per-circuit
//!    stage barriers and one slow circuit cannot serialize the batch.
//!
//! # Cross-circuit threading model
//!
//! One pool, sized by [`SuperSimConfig::threads`], serves everything.
//! Single runs parallelize within each stage; batches and sweeps
//! parallelize across circuits (each batch recombination contracts
//! single-threaded — recombination is bit-identical for any thread
//! count, so this is purely a scheduling choice). **Determinism:** for a
//! given seed, every path — sequential, parallel, batched — produces
//! bit-identical results at every thread count, and batch/sweep output is
//! bit-identical to independent sequential [`SuperSim::run`] calls; work
//! decompositions are fixed and float folds happen in (circuit, fragment,
//! variant) order, never in completion order.
//!
//! # The accuracy/latency dial: error-budgeted recombination
//!
//! Recombination sweeps `4^k` cut assignments — the paper's hard
//! reconstruction wall. [`SuperSimConfig::error_budget`] (per-run:
//! [`ExecParams::with_error_budget`]) trades a *bounded* amount of
//! accuracy for latency: each assignment carries a cheap weight bound
//! (the product of its fragments' per-slice L1 masses, which is exactly
//! the probability mass the assignment contributes to the unnormalized
//! joint in absolute value), and the sweep skips assignments greedily
//! while the accumulated bound of everything skipped stays within the
//! budget.
//!
//! What the knob guarantees:
//!
//! * **The bound is hard.** [`RunReport::recombine_error_bound`] is the
//!   accumulated bound actually skipped; by the triangle inequality it
//!   caps the L1 distance between the truncated and the exact
//!   unnormalized joint. [`RunReport::assignments_skipped`] and
//!   [`RunReport::visited_assignments`] report the work traded.
//! * **`0.0` is exact.** The default budget runs the untruncated sweep,
//!   bit for bit — truncation is strictly opt-in.
//! * **Determinism survives.** The budget is split evenly across the
//!   fixed contraction chunks and skip decisions are per-chunk
//!   sequential, so for a fixed budget results are **bit-identical for
//!   every thread count** and on every path (single run, sweep, batch,
//!   plan-cache hit).
//! * **Queries stay consistent.** Skip decisions depend only on the
//!   assignment indices, never on the query — marginals, the joint, and
//!   follow-up [`RunResult::probability_of`] /
//!   [`RunResult::expectation_z`] calls all truncate the identical
//!   assignment set.
//!
//! When to use it: deep circuits (large `k`) served at interactive
//! latency, sampled runs whose shot noise already dwarfs a small budget,
//! and admission-constrained batches (admission control discounts
//! [`PlanCost::sweep_assignments`] by the budget via
//! [`PlanCost::with_error_budget`]). Keep it at `0.0` when reproducing
//! the paper's exact protocol.
//!
//! # Resilience: retry, degrade, salvage
//!
//! [`SuperSim::run_batch_resilient`] and [`Executor::run_sweep_resilient`]
//! wrap the batch scheduler in a [`ResiliencePolicy`] — the policy layer a
//! cutting-as-a-service front-end needs over unreliable workers:
//!
//! * **Retry** ([`RetryPolicy`]): transient failures are re-enqueued with
//!   exponential backoff whose jitter comes from the job's own RNG
//!   stream, so the whole schedule is reproducible.
//! * **Degrade** ([`DegradationPolicy`]): under deadline pressure or
//!   admission rejection, a job escalates its recombination error budget
//!   along a validated ladder — bounded accuracy shed instead of
//!   failure, surfaced on [`RunReport::degraded_budget`].
//! * **Salvage** ([`BatchOutcome`]): failures never disturb surviving
//!   siblings; [`BatchOutcome::resume`] re-runs *only* the failed jobs
//!   against the cached plans and merges bit-identically.
//! * **Break** ([`BreakerPolicy`]): a per-plan circuit breaker
//!   (closed → open → half-open, cool-down counted in attempts, never
//!   wall clock) denies enqueue for repeatedly failing cut structures
//!   ([`SuperSimError::BreakerOpen`]).
//!
//! Error classification ([`is_transient`]):
//!
//! | [`SuperSimError`] variant | Class | Driver response |
//! |---|---|---|
//! | [`Panicked`](SuperSimError::Panicked) | transient | retry with backoff |
//! | [`DeadlineExceeded`](SuperSimError::DeadlineExceeded) (incl. stalls) | transient | degrade if a ladder rung remains, else retry |
//! | [`Injected`](SuperSimError::Injected) with the transient marker | transient | retry with backoff |
//! | [`BreakerOpen`](SuperSimError::BreakerOpen) | transient | retry (cool-down consumes attempts) |
//! | [`Rejected`](SuperSimError::Rejected) | permanent* | degrade if a ladder rung remains, else fail |
//! | [`Cut`](SuperSimError::Cut) / [`Eval`](SuperSimError::Eval) / [`Mlft`](SuperSimError::Mlft) | permanent | fail (deterministic reproduction) |
//! | [`Cancelled`](SuperSimError::Cancelled) | permanent | fail (the caller asked) |
//!
//! (*admission re-judges each escalated attempt against the
//! budget-discounted [`PlanCost`], which is what lets the ladder rescue
//! oversized jobs.)
//!
//! Retried and salvaged results stay **bit-identical** to a clean
//! single-pass run at every thread count; degraded results are
//! bit-identical to a run executed directly at the escalated budget.
//!
//! ```
//! use qcir::Circuit;
//! use supersim::{ExecParams, SuperSim, SuperSimConfig};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1).h(1);
//! let sim = SuperSim::new(
//!     SuperSimConfig::builder().exact(true).build().unwrap(),
//! );
//!
//! // One-shot: plan + execute fused.
//! let result = sim.run(&c).unwrap();
//! assert_eq!(result.report.num_cuts, 2);
//! let dist = result.distribution.as_ref().unwrap();
//! assert!((dist.total_mass() - 1.0).abs() < 1e-9);
//!
//! // Sweep: cut once, execute for many seeds on one shared pool.
//! let plan = sim.plan(&c).unwrap();
//! let points: Vec<ExecParams> = (0..3).map(|s| ExecParams::seeded(s)).collect();
//! let runs = sim.executor().run_sweep(&plan, &points);
//! assert_eq!(runs.len(), 3);
//!
//! // The accuracy/latency dial: trade a bounded L1 error for latency.
//! let budgeted = sim
//!     .executor()
//!     .run_with(&plan, ExecParams::seeded(0).with_error_budget(1e-3))
//!     .unwrap();
//! assert!(budgeted.report.recombine_error_bound <= 1e-3);
//! ```

mod backends;
mod pipeline;

pub use backends::{
    BackendError, ExtStabBackend, MpsBackend, Simulator, StabilizerBackend, StatevectorBackend,
};
pub use pipeline::{
    is_transient, Admission, AdmissionError, AdmissionPolicy, BatchOutcome, BreakerPolicy,
    BreakerState, CircuitBreaker, ConfigError, CutPlan, DegradationPolicy, ExecParams, Executor,
    JobStatus, PlanCacheStats, PlanCost, PlanLoadError, ResiliencePolicy, RetryPolicy, RunReport,
    RunResult, RunStats, SuperSim, SuperSimConfig, SuperSimConfigBuilder, SuperSimError,
};

// Re-export the persistent worker-pool stats surfaced by
// [`SuperSim::stats`] (the pool itself is process-wide, in `runtime`).
pub use runtime::PoolStats;

// Re-export the pieces users need to configure the pipeline.
pub use cutkit::{CutPoint, CutStrategy, EvalMode, SweepStats, TableauEngine};

// Re-export the supervision primitives batch callers configure
// ([`SuperSimConfig::cancel`], [`SuperSimConfig::faults`]).
pub use faultkit::{CancelToken, Fault, FaultKind, FaultPlan, Interrupt, Stage, TRANSIENT_MARKER};
