//! Resilience policies over the batch scheduler: deterministic retries,
//! partial-batch salvage/resume, load-shedding degradation, and a per-plan
//! circuit breaker.
//!
//! The supervision layer ([`batch`](super::batch) + `faultkit`) turns
//! failures into **typed, per-job errors**; this module turns those errors
//! into **outcomes**. [`SuperSim::run_batch_resilient`](crate::SuperSim::run_batch_resilient)
//! and [`Executor::run_sweep_resilient`](crate::Executor::run_sweep_resilient)
//! wrap the one-shot entry points with a [`ResiliencePolicy`]:
//!
//! * **Retry** ([`RetryPolicy`]) — transient failures (panics, deadline
//!   trips, injected transients, breaker denials) are re-enqueued up to a
//!   per-call attempt budget, with exponential backoff whose jitter is
//!   drawn from the job's own RNG stream — the schedule is a pure function
//!   of (seed, job, attempt), reproducible across runs and thread counts.
//! * **Salvage** ([`BatchOutcome`]) — a failed job never drags its
//!   surviving siblings down: succeeded jobs keep their first-pass results
//!   (they are never re-executed — watch the attempt counters), and
//!   [`BatchOutcome::resume`] re-runs *only* the failed jobs against the
//!   cached [`CutPlan`]s, merging bit-identically with the first pass.
//! * **Degradation** ([`DegradationPolicy`]) — under deadline pressure or
//!   admission rejection, the job's recombination error budget escalates
//!   along a validated ladder ([`ExecParams::with_error_budget`]): the
//!   service sheds accuracy instead of failing, and the shed is surfaced
//!   on [`RunReport::degraded_budget`](super::RunReport::degraded_budget).
//! * **Breaker** ([`BreakerPolicy`]) — per plan-fingerprint circuit
//!   breaker: after a threshold of consecutive failures the key opens and
//!   enqueue is denied ([`SuperSimError::BreakerOpen`]) for a cool-down
//!   measured in **attempts** (not wall clock — deterministic), then a
//!   half-open trial decides between closing and re-opening.
//!
//! Every retried, salvaged, or degraded result stays **bit-identical** to
//! a clean single-pass run with the same effective [`ExecParams`], for
//! every thread count: the driver only re-submits jobs through the same
//! `execute_jobs` backend, whose outputs depend on per-job seeds alone.

use super::batch::{build_plans, execute_jobs, BatchJob};
use super::cache::PlanCache;
use super::execute::{ExecParams, RunResult};
use super::plan::CutPlan;
use super::{ConfigError, SuperSimConfig, SuperSimError};
use faultkit::{lock_or_recover, splitmix64, TRANSIENT_MARKER};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Retry budget and deterministic backoff schedule of the resilient
/// drivers.
///
/// Backoff is exponential from [`RetryPolicy::base_backoff`], capped at
/// [`RetryPolicy::max_backoff`], with multiplicative jitter in
/// `[1 − jitter, 1 + jitter]` drawn from an RNG seeded by the job's own
/// seed and the retry number — so the whole schedule is reproducible (see
/// [`RetryPolicy::backoff`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts each job may consume per driver call (first try included;
    /// circuit-breaker denials count). Clamped to at least 1.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry. `ZERO` disables
    /// sleeping entirely (the retry schedule is still deterministic).
    pub base_backoff: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Jitter amplitude in `[0, 1]`: each backoff is scaled by a factor in
    /// `[1 − jitter, 1 + jitter]` drawn from the job's RNG stream.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// 3 attempts, 1 ms base, 50 ms cap, ±50% jitter.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// This policy with a different attempt budget.
    pub fn with_max_attempts(self, max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            ..self
        }
    }

    /// This policy with sleeping disabled (tests and latency-critical
    /// callers; the attempt schedule is unchanged).
    pub fn without_backoff(self) -> Self {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            ..self
        }
    }

    /// The deterministic backoff before retry number `retry` (1-based) of
    /// the job whose backoff stream is seeded by `seed`: exponential,
    /// capped, jittered — and a pure function of its inputs, so tests can
    /// predict the exact schedule.
    pub fn backoff(&self, seed: u64, retry: usize) -> Duration {
        if retry == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let ideal = self.base_backoff.as_secs_f64() * 2f64.powi((retry - 1).min(31) as i32);
        let capped = ideal.min(self.max_backoff.as_secs_f64());
        let mut state = seed ^ (retry as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(splitmix64(&mut state));
        // 53-bit uniform in [0, 1): the full-precision f64 mantissa draw.
        let unit = (rng.random::<u64>() >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Whether a pipeline failure is worth retrying: panics and deadline
/// trips (a stalled worker surfaces as the latter), injected faults
/// carrying the `faultkit` transient marker, and circuit-breaker denials.
/// Everything else — cut-budget, evaluation, MLFT, cancellation, and
/// (ladder permitting, degradation-handled) admission failures — is
/// permanent: re-running the identical job deterministically reproduces
/// the identical error.
pub fn is_transient(err: &SuperSimError) -> bool {
    match err.root() {
        SuperSimError::Panicked { .. }
        | SuperSimError::DeadlineExceeded { .. }
        | SuperSimError::BreakerOpen { .. } => true,
        SuperSimError::Injected { message, .. } => message.starts_with(TRANSIENT_MARKER),
        _ => false,
    }
}

/// Whether a failure should escalate the job's error budget instead of
/// (or before) plain retry: deadline pressure and admission rejection are
/// exactly the failures a cheaper, budget-truncated sweep can rescue.
fn degradation_trigger(err: &SuperSimError) -> bool {
    matches!(
        err.root(),
        SuperSimError::DeadlineExceeded { .. } | SuperSimError::Rejected(_)
    )
}

/// Load-shedding ladder: successive recombination error budgets a job
/// escalates through when deadline pressure or admission rejection would
/// otherwise fail it (each rung re-judged by admission against the
/// budget-discounted [`PlanCost`](crate::PlanCost)). Validated at
/// construction: rungs must be finite, positive, and strictly increasing.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationPolicy {
    ladder: Vec<f64>,
}

impl DegradationPolicy {
    /// Validates and builds a ladder.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidDegradationLadder`] when the ladder is empty,
    /// a rung is NaN/infinite/non-positive, or rungs do not strictly
    /// increase.
    pub fn new(ladder: Vec<f64>) -> Result<Self, ConfigError> {
        if ladder.is_empty() {
            return Err(ConfigError::InvalidDegradationLadder(
                "ladder must have at least one rung".into(),
            ));
        }
        for (i, &b) in ladder.iter().enumerate() {
            if !b.is_finite() || b <= 0.0 {
                return Err(ConfigError::InvalidDegradationLadder(format!(
                    "rung {i} must be a finite positive error budget, got {b}"
                )));
            }
        }
        if ladder.windows(2).any(|w| w[1] <= w[0]) {
            return Err(ConfigError::InvalidDegradationLadder(
                "rungs must strictly increase (each escalation sheds more accuracy)".into(),
            ));
        }
        Ok(DegradationPolicy { ladder })
    }

    /// The validated rungs, smallest budget first.
    pub fn ladder(&self) -> &[f64] {
        &self.ladder
    }
}

/// Circuit-breaker thresholds (see [`BreakerState`] for the lifecycle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures of a key that trip it open. Clamped to at
    /// least 1.
    pub failure_threshold: usize,
    /// Enqueue attempts denied while open before the half-open trial is
    /// admitted — the cool-down, measured in attempts rather than wall
    /// clock so breaker evolution is deterministic.
    pub cooldown_attempts: usize,
}

impl Default for BreakerPolicy {
    /// Open after 3 consecutive failures; deny 2 attempts before trialing.
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown_attempts: 2,
        }
    }
}

/// State of one circuit-breaker key (a plan fingerprint).
///
/// Lifecycle: `Closed` → (threshold consecutive failures) → `Open` →
/// (cool-down attempts denied) → `HalfOpen` → one trial attempt →
/// `Closed` on success, `Open` (fresh cool-down) on failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Attempts flow freely; consecutive failures are counted.
    Closed,
    /// Attempts are denied with [`SuperSimError::BreakerOpen`] until the
    /// cool-down elapses.
    Open,
    /// Cool-down elapsed: exactly one trial attempt is admitted.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct KeyState {
    state: BreakerState,
    consecutive_failures: usize,
    cooldown_remaining: usize,
}

impl Default for KeyState {
    fn default() -> Self {
        KeyState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
        }
    }
}

/// Per-key circuit breaker guarding enqueue, keyed by plan fingerprint so
/// every job of one repeatedly-failing cut structure shares one breaker.
/// All transitions are counted in attempts — never wall clock — so the
/// breaker's evolution is identical on every schedule and thread count.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    keys: Mutex<BTreeMap<u64, KeyState>>,
}

impl CircuitBreaker {
    /// A breaker with the given thresholds; every key starts closed.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            keys: Mutex::new(BTreeMap::new()),
        }
    }

    /// Asks to enqueue an attempt under `key`. `Ok` carries the state the
    /// attempt runs under (`Closed` or the `HalfOpen` trial); `Err`
    /// carries the consecutive-failure count behind the open breaker.
    pub fn try_acquire(&self, key: u64) -> Result<BreakerState, usize> {
        let mut keys = lock_or_recover(&self.keys);
        let entry = keys.entry(key).or_default();
        match entry.state {
            BreakerState::Closed => Ok(BreakerState::Closed),
            BreakerState::HalfOpen => Ok(BreakerState::HalfOpen),
            BreakerState::Open => {
                if entry.cooldown_remaining > 0 {
                    entry.cooldown_remaining -= 1;
                    Err(entry.consecutive_failures)
                } else {
                    entry.state = BreakerState::HalfOpen;
                    Ok(BreakerState::HalfOpen)
                }
            }
        }
    }

    /// Records a successful attempt under `key`: the key closes and its
    /// failure streak resets.
    pub fn record_success(&self, key: u64) {
        let mut keys = lock_or_recover(&self.keys);
        let entry = keys.entry(key).or_default();
        *entry = KeyState::default();
    }

    /// Records a failed attempt under `key`: a half-open trial failure
    /// re-opens immediately; a closed key opens once its streak reaches
    /// the threshold.
    pub fn record_failure(&self, key: u64) {
        let mut keys = lock_or_recover(&self.keys);
        let entry = keys.entry(key).or_default();
        entry.consecutive_failures += 1;
        let reopen = entry.state == BreakerState::HalfOpen
            || entry.consecutive_failures >= self.policy.failure_threshold.max(1);
        if reopen {
            entry.state = BreakerState::Open;
            entry.cooldown_remaining = self.policy.cooldown_attempts;
        }
    }

    /// The current state of `key` (untracked keys are closed).
    pub fn state(&self, key: u64) -> BreakerState {
        lock_or_recover(&self.keys)
            .get(&key)
            .map(|e| e.state)
            .unwrap_or(BreakerState::Closed)
    }
}

/// The full resilience configuration of a driver call: retry budget +
/// optional degradation ladder + optional circuit breaker.
#[derive(Clone, Debug, Default)]
pub struct ResiliencePolicy {
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Load-shedding ladder (`None`: never degrade).
    pub degradation: Option<DegradationPolicy>,
    /// Circuit-breaker thresholds (`None`: no breaker).
    pub breaker: Option<BreakerPolicy>,
}

impl ResiliencePolicy {
    /// The default policy: 3 attempts with jittered backoff, no
    /// degradation, no breaker.
    pub fn new() -> Self {
        ResiliencePolicy::default()
    }

    /// This policy with a different retry schedule.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// This policy with a degradation ladder.
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = Some(degradation);
        self
    }

    /// This policy with a circuit breaker.
    pub fn with_breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }
}

/// Terminal status of one job of a [`BatchOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The job succeeded, consuming this many attempts over the
    /// outcome's lifetime (1 = clean first pass; breaker denials count).
    Ok {
        /// Total attempts consumed, including the successful one.
        attempts: usize,
    },
    /// The job failed after consuming this many attempts (0 = the
    /// circuit never planned, so nothing was ever enqueued).
    Failed {
        /// Total attempts consumed.
        attempts: usize,
    },
}

struct Slot {
    /// The cached plan this job re-runs against (`None`: planning itself
    /// failed, nothing to retry).
    plan: Option<Arc<CutPlan>>,
    /// Whether the plan came from the instance cache (stamped on reports).
    cache_hit: bool,
    /// Original parameters, before any degradation.
    base_params: ExecParams,
    /// Effective parameters of the next attempt (escalated by the ladder).
    params: ExecParams,
    /// Batch index — supervision id, fault-plan target, and the `job`
    /// field of [`SuperSimError::Job`] wrapping.
    job: usize,
    /// Circuit-breaker key and error-context fingerprint.
    fingerprint: u64,
    /// Attempts consumed over the slot's lifetime, breaker denials
    /// included (what budgets and reports count).
    attempts: usize,
    /// Actual executions — the supervisor attempt number, cumulative
    /// across [`BatchOutcome::resume`] calls so attempt-indexed fault
    /// sites ([`faultkit::FaultKind::FailNTimes`]) see monotone numbers.
    executions: usize,
    /// Next degradation rung to escalate to.
    ladder_pos: usize,
    /// Whether any escalation was applied (stamps
    /// [`RunReport::degraded_budget`](super::RunReport::degraded_budget)).
    degraded: bool,
    /// Terminal result; `None` while the driver still owes this slot a
    /// verdict.
    outcome: Option<Result<RunResult, SuperSimError>>,
    /// Most recent failure of a still-pending slot (becomes the terminal
    /// error when the budget runs out).
    last_error: Option<SuperSimError>,
}

impl Slot {
    fn wrap(&self, e: SuperSimError) -> SuperSimError {
        SuperSimError::Job {
            job: self.job,
            fingerprint: self.fingerprint,
            source: Box::new(e),
        }
    }

    /// The seed of this job's backoff stream: its own RNG seed, mixed
    /// with the batch index so sweep points sharing one seed still jitter
    /// independently.
    fn backoff_seed(&self) -> u64 {
        let mut state = self.base_params.seed ^ (self.job as u64).rotate_left(32);
        splitmix64(&mut state)
    }
}

/// Outcome of a resilient batch/sweep call: per-job results plus the
/// retry bookkeeping and cached plans needed to salvage the failures.
///
/// Succeeded jobs are **never re-executed** — their first-pass results
/// (and attempt counters) are frozen; [`BatchOutcome::resume`] grants the
/// failed jobs a fresh attempt budget and merges their recoveries in
/// place, bit-identically with what a clean run would have produced.
pub struct BatchOutcome {
    config: SuperSimConfig,
    policy: ResiliencePolicy,
    breaker: Option<CircuitBreaker>,
    slots: Vec<Slot>,
}

impl BatchOutcome {
    /// Number of jobs (failed planning included).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the outcome holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Per-job result, in batch order. Errors carry the same
    /// [`SuperSimError::Job`] context `run_batch`/`run_sweep` attach.
    pub fn result(&self, job: usize) -> &Result<RunResult, SuperSimError> {
        self.slots[job]
            .outcome
            .as_ref()
            .expect("driver finalizes every slot")
    }

    /// All per-job results in batch order.
    pub fn results(&self) -> Vec<&Result<RunResult, SuperSimError>> {
        (0..self.len()).map(|i| self.result(i)).collect()
    }

    /// Terminal status + lifetime attempt counter of one job.
    pub fn status(&self, job: usize) -> JobStatus {
        let slot = &self.slots[job];
        match slot.outcome {
            Some(Ok(_)) => JobStatus::Ok {
                attempts: slot.attempts,
            },
            _ => JobStatus::Failed {
                attempts: slot.attempts,
            },
        }
    }

    /// All job statuses in batch order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        (0..self.len()).map(|i| self.status(i)).collect()
    }

    /// Lifetime attempts job `job` has consumed (breaker denials
    /// included). Frozen once the job succeeds — the salvage invariant
    /// tests assert on exactly this counter.
    pub fn attempts(&self, job: usize) -> usize {
        self.slots[job].attempts
    }

    /// Indices of the jobs currently failed, in batch order.
    pub fn failed(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| matches!(self.status(i), JobStatus::Failed { .. }))
            .collect()
    }

    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed().is_empty()
    }

    /// Re-runs **only the failed jobs** against the cached plans with a
    /// fresh [`RetryPolicy::max_attempts`] budget, merging recoveries in
    /// place; succeeded jobs are untouched (their results and attempt
    /// counters are frozen). Jobs whose circuit never planned cannot be
    /// salvaged and keep their error. Returns how many jobs this call
    /// newly salvaged.
    pub fn resume(&mut self) -> usize {
        let retryable: Vec<usize> = self
            .failed()
            .into_iter()
            .filter(|&i| self.slots[i].plan.is_some())
            .collect();
        for &i in &retryable {
            let slot = &mut self.slots[i];
            // The pre-resume error (stripped of its Job context, which
            // finalization re-attaches) becomes the fallback verdict
            // should the fresh budget run out without a single execution.
            slot.last_error = slot.outcome.take().and_then(|r| r.err()).map(|e| match e {
                SuperSimError::Job { source, .. } => *source,
                other => other,
            });
        }
        self.drive();
        retryable
            .iter()
            .filter(|&&i| matches!(self.status(i), JobStatus::Ok { .. }))
            .count()
    }

    /// Consumes the outcome into plain per-job results, in batch order —
    /// the exact shape [`SuperSim::run_batch`](crate::SuperSim::run_batch)
    /// returns.
    pub fn into_results(self) -> Vec<Result<RunResult, SuperSimError>> {
        self.slots
            .into_iter()
            .map(|s| s.outcome.expect("driver finalizes every slot"))
            .collect()
    }

    /// The retry driver: rounds of (breaker gate → backoff → one shared
    /// batch → record), over every slot without a terminal outcome, until
    /// all pending slots are finalized. Gating and recording happen in
    /// batch-index order between rounds — never concurrently — so breaker
    /// evolution, degradation, and attempt accounting are identical on
    /// every schedule and thread count.
    fn drive(&mut self) {
        let mut pending: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].outcome.is_none())
            .collect();
        // Fresh per-call budget on top of whatever earlier calls consumed.
        let per_call = self.policy.retry.max_attempts.max(1);
        let budgets: BTreeMap<usize, usize> = pending
            .iter()
            .map(|&i| (i, self.slots[i].attempts + per_call))
            .collect();
        let mut round = 0usize;
        while !pending.is_empty() {
            let mut admitted: Vec<usize> = Vec::new();
            let mut still_pending: Vec<usize> = Vec::new();
            for &i in &pending {
                let fingerprint = self.slots[i].fingerprint;
                let slot = &mut self.slots[i];
                if slot.attempts >= budgets[&i] {
                    let e = slot
                        .last_error
                        .take()
                        .expect("an exhausted slot recorded its last failure");
                    slot.outcome = Some(Err(slot.wrap(e)));
                    continue;
                }
                match &self.breaker {
                    Some(b) => match b.try_acquire(fingerprint) {
                        Ok(_) => admitted.push(i),
                        Err(failures) => {
                            slot.attempts += 1;
                            slot.last_error = Some(SuperSimError::BreakerOpen {
                                fingerprint,
                                failures,
                            });
                            still_pending.push(i);
                        }
                    },
                    None => admitted.push(i),
                }
            }
            // One pause per retry round: the longest of the admitted
            // jobs' deterministic backoffs (round 0 is the first try —
            // no pause).
            if round > 0 && !admitted.is_empty() {
                let pause = admitted
                    .iter()
                    .map(|&i| {
                        let slot = &self.slots[i];
                        self.policy
                            .retry
                            .backoff(slot.backoff_seed(), slot.attempts)
                    })
                    .max()
                    .unwrap_or(Duration::ZERO);
                if pause > Duration::ZERO {
                    std::thread::sleep(pause);
                }
            }
            // The round's survivors run as one batch on the shared pool —
            // retries keep full cross-job parallelism.
            let results = {
                let jobs: Vec<BatchJob<'_>> = admitted
                    .iter()
                    .map(|&i| {
                        let slot = &self.slots[i];
                        BatchJob {
                            plan: slot.plan.as_ref().expect("admitted slots hold plans"),
                            params: slot.params,
                            index: slot.job,
                            attempt: slot.executions,
                        }
                    })
                    .collect();
                execute_jobs(&self.config, &jobs)
            };
            for (&i, result) in admitted.iter().zip(results) {
                let slot = &mut self.slots[i];
                slot.attempts += 1;
                slot.executions += 1;
                match result {
                    Ok(mut res) => {
                        if let Some(b) = &self.breaker {
                            b.record_success(slot.fingerprint);
                        }
                        res.report.plan_cache_hit = slot.cache_hit;
                        res.report.attempts = slot.attempts;
                        res.report.degraded_budget = if slot.degraded {
                            slot.params.error_budget
                        } else {
                            None
                        };
                        res.report.breaker_state =
                            self.breaker.as_ref().map(|b| b.state(slot.fingerprint));
                        slot.outcome = Some(Ok(res));
                    }
                    Err(e) => {
                        if let Some(b) = &self.breaker {
                            b.record_failure(slot.fingerprint);
                        }
                        let rung = self
                            .policy
                            .degradation
                            .as_ref()
                            .filter(|_| degradation_trigger(&e))
                            .and_then(|d| d.ladder().get(slot.ladder_pos).copied());
                        if slot.attempts < budgets[&i] {
                            if let Some(budget) = rung {
                                // Shed accuracy and try again: the next
                                // attempt runs (and is re-judged by
                                // admission) at the escalated budget.
                                slot.ladder_pos += 1;
                                slot.degraded = true;
                                slot.params = slot.params.with_error_budget(budget);
                                slot.last_error = Some(e);
                                still_pending.push(i);
                                continue;
                            }
                            if is_transient(&e) {
                                slot.last_error = Some(e);
                                still_pending.push(i);
                                continue;
                            }
                        }
                        slot.outcome = Some(Err(slot.wrap(e)));
                    }
                }
            }
            still_pending.sort_unstable();
            pending = still_pending;
            round += 1;
        }
    }
}

/// The backend of [`SuperSim::run_batch_resilient`](crate::SuperSim::run_batch_resilient):
/// plan every circuit (cache-first), then drive the retry loop.
pub(crate) fn run_batch_resilient(
    config: &SuperSimConfig,
    cache: &PlanCache,
    circuits: &[qcir::Circuit],
    policy: ResiliencePolicy,
) -> BatchOutcome {
    let params = ExecParams::from_config(config);
    let slots = build_plans(config, cache, circuits)
        .into_iter()
        .zip(circuits)
        .enumerate()
        .map(|(i, ((plan, cache_hit), circuit))| {
            let fingerprint = circuit.fingerprint();
            match plan {
                Ok(plan) => new_slot(Some(plan), cache_hit, params, i, fingerprint, None),
                // Planning failures are permanent and were never enqueued:
                // finalized immediately, 0 attempts consumed.
                Err(e) => new_slot(None, cache_hit, params, i, fingerprint, Some(e)),
            }
        })
        .collect();
    finish_outcome(config, policy, slots)
}

/// The backend of [`Executor::run_sweep_resilient`](crate::Executor::run_sweep_resilient):
/// one plan, many parameter points, one retry driver.
pub(crate) fn run_sweep_resilient(
    config: &SuperSimConfig,
    plan: &Arc<CutPlan>,
    params: &[ExecParams],
    policy: ResiliencePolicy,
) -> BatchOutcome {
    let slots = params
        .iter()
        .enumerate()
        .map(|(i, &p)| new_slot(Some(plan.clone()), false, p, i, plan.fingerprint(), None))
        .collect();
    finish_outcome(config, policy, slots)
}

fn new_slot(
    plan: Option<Arc<CutPlan>>,
    cache_hit: bool,
    params: ExecParams,
    job: usize,
    fingerprint: u64,
    plan_error: Option<SuperSimError>,
) -> Slot {
    let mut slot = Slot {
        plan,
        cache_hit,
        base_params: params,
        params,
        job,
        fingerprint,
        attempts: 0,
        executions: 0,
        ladder_pos: 0,
        degraded: false,
        outcome: None,
        last_error: None,
    };
    if let Some(e) = plan_error {
        slot.outcome = Some(Err(slot.wrap(e)));
    }
    slot
}

fn finish_outcome(
    config: &SuperSimConfig,
    policy: ResiliencePolicy,
    slots: Vec<Slot>,
) -> BatchOutcome {
    let breaker = policy.breaker.map(CircuitBreaker::new);
    let mut outcome = BatchOutcome {
        config: config.clone(),
        policy,
        breaker,
        slots,
    };
    outcome.drive();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultkit::Stage;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy::default();
        for retry in 1..6 {
            let a = policy.backoff(42, retry);
            let b = policy.backoff(42, retry);
            assert_eq!(a, b, "same (seed, retry) must give the same backoff");
            let cap = policy.max_backoff.as_secs_f64() * (1.0 + policy.jitter);
            assert!(a.as_secs_f64() <= cap + 1e-12, "retry {retry} above cap");
        }
        assert_ne!(
            policy.backoff(42, 1),
            policy.backoff(43, 1),
            "different seeds must jitter differently"
        );
        assert_eq!(policy.backoff(42, 0), Duration::ZERO);
        assert_eq!(
            policy.without_backoff().backoff(42, 3),
            Duration::ZERO,
            "zero base disables sleeping"
        );
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let b1 = policy.backoff(7, 1).as_secs_f64();
        let b2 = policy.backoff(7, 2).as_secs_f64();
        let b3 = policy.backoff(7, 3).as_secs_f64();
        assert!((b2 - 2.0 * b1).abs() < 1e-9, "doubling: {b1} -> {b2}");
        assert!((b3 - 4.0 * b1).abs() < 1e-9, "doubling: {b1} -> {b3}");
    }

    #[test]
    fn classification_matches_the_documented_table() {
        let transient = SuperSimError::Panicked {
            stage: Stage::Eval,
            task: Some(0),
            payload: "boom".into(),
        };
        assert!(is_transient(&transient));
        assert!(is_transient(&SuperSimError::DeadlineExceeded {
            stage: Stage::Recombine,
            elapsed: Duration::from_millis(1),
        }));
        assert!(is_transient(&SuperSimError::BreakerOpen {
            fingerprint: 1,
            failures: 3,
        }));
        assert!(is_transient(&SuperSimError::Injected {
            stage: Stage::Eval,
            message: format!("{TRANSIENT_MARKER}: job 0 stage evaluate task 1"),
        }));
        assert!(!is_transient(&SuperSimError::Injected {
            stage: Stage::Eval,
            message: "job 0 stage evaluate task 1".into(),
        }));
        assert!(!is_transient(&SuperSimError::Cancelled {
            stage: Stage::Eval,
            elapsed: Duration::from_millis(1),
        }));
        // Job context is stripped before classification.
        let wrapped = SuperSimError::Job {
            job: 2,
            fingerprint: 9,
            source: Box::new(transient),
        };
        assert!(is_transient(&wrapped));
    }

    #[test]
    fn degradation_ladder_is_validated() {
        assert!(DegradationPolicy::new(vec![1e-4, 1e-3, 1e-2]).is_ok());
        for bad in [
            vec![],
            vec![0.0],
            vec![-1e-3],
            vec![f64::NAN],
            vec![f64::INFINITY],
            vec![1e-3, 1e-3],
            vec![1e-2, 1e-3],
        ] {
            assert!(
                matches!(
                    DegradationPolicy::new(bad.clone()),
                    Err(ConfigError::InvalidDegradationLadder(_))
                ),
                "ladder {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_deterministically() {
        let breaker = CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown_attempts: 2,
        });
        let key = 0xFEED;
        assert_eq!(breaker.try_acquire(key), Ok(BreakerState::Closed));
        breaker.record_failure(key);
        assert_eq!(breaker.state(key), BreakerState::Closed);
        assert_eq!(breaker.try_acquire(key), Ok(BreakerState::Closed));
        breaker.record_failure(key);
        assert_eq!(breaker.state(key), BreakerState::Open);
        // Cool-down: exactly two denials, then the half-open trial.
        assert_eq!(breaker.try_acquire(key), Err(2));
        assert_eq!(breaker.try_acquire(key), Err(2));
        assert_eq!(breaker.try_acquire(key), Ok(BreakerState::HalfOpen));
        // Trial failure re-opens with a fresh cool-down...
        breaker.record_failure(key);
        assert_eq!(breaker.state(key), BreakerState::Open);
        assert_eq!(breaker.try_acquire(key), Err(3));
        assert_eq!(breaker.try_acquire(key), Err(3));
        assert_eq!(breaker.try_acquire(key), Ok(BreakerState::HalfOpen));
        // ...and a trial success closes and resets the streak.
        breaker.record_success(key);
        assert_eq!(breaker.state(key), BreakerState::Closed);
        assert_eq!(breaker.try_acquire(key), Ok(BreakerState::Closed));
        // Other keys are independent.
        assert_eq!(breaker.state(key + 1), BreakerState::Closed);
    }
}
