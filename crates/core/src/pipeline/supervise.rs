//! The supervision layer: admission control for batch jobs.
//!
//! Admission control runs **before** a job is enqueued: the scheduler
//! derives a [`PlanCost`] from the job's [`CutPlan`] (cuts, variants,
//! `4^k` sweep size, dense-accumulator bytes — all structural, no
//! execution needed) and asks the configured [`AdmissionPolicy`] for a
//! verdict. Oversized jobs are rejected with a typed
//! [`AdmissionError`] carrying the offending quantity and its budget;
//! borderline jobs can instead be *sequentialized* — admitted, but run
//! alone with the full worker pool after the pooled phase, so one giant
//! sweep cannot starve every other job of workers. Plans served from the
//! plan cache get no shortcut here: a cached plan's cost is re-judged on
//! every run, so tightening the policy takes effect immediately even for
//! circuits whose plans are already cached.
//!
//! The other half of supervision — panic isolation, deadlines,
//! cancellation, and fault injection — lives in the `faultkit` crate
//! ([`Supervisor`](faultkit::Supervisor)) and is threaded through the
//! stage kernels by the batch scheduler; see the failure-semantics notes
//! on [`SuperSim::run_batch`](crate::SuperSim::run_batch).

use crate::pipeline::plan::PlanCost;
use std::error::Error;
use std::fmt;

/// Budget limits applied to every batch job before it is enqueued.
///
/// All limits default to `None` (unlimited). `max_*` limits reject the
/// job outright; `solo_*` thresholds admit the job but force it to run
/// sequentialized — alone, after the pooled phase, with the full worker
/// pool to itself — so its footprint is paid once instead of multiplied
/// by pool-wide concurrency.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Reject jobs with more than this many cuts (`4^k` guard).
    pub max_cuts: Option<usize>,
    /// Reject jobs evaluating more than this many tomography variants.
    pub max_variants: Option<usize>,
    /// Reject jobs whose recombination sweep exceeds this many
    /// assignments (`4^k`, before sparse pruning).
    pub max_sweep_assignments: Option<u64>,
    /// Reject jobs whose dense evaluation accumulators exceed this many
    /// bytes.
    pub max_accumulator_bytes: Option<u64>,
    /// Sequentialize (run solo, not reject) jobs whose sweep exceeds
    /// this many assignments.
    pub solo_sweep_assignments: Option<u64>,
    /// Sequentialize jobs whose accumulators exceed this many bytes.
    pub solo_accumulator_bytes: Option<u64>,
}

impl AdmissionPolicy {
    /// A policy with every limit disabled (the default).
    pub fn unlimited() -> Self {
        AdmissionPolicy::default()
    }

    /// Judges a job's [`PlanCost`] against this policy. Rejection limits
    /// are checked first (in declaration order, so the reported quantity
    /// is deterministic), then sequentialization thresholds.
    pub fn admit(&self, cost: &PlanCost) -> Admission {
        let over = |actual: u64, limit: Option<u64>| limit.is_some_and(|l| actual > l);
        if over(cost.num_cuts as u64, self.max_cuts.map(|l| l as u64)) {
            return Admission::Reject(AdmissionError {
                quantity: "cuts",
                actual: cost.num_cuts as u64,
                limit: self.max_cuts.unwrap_or(0) as u64,
            });
        }
        if over(
            cost.num_variants as u64,
            self.max_variants.map(|l| l as u64),
        ) {
            return Admission::Reject(AdmissionError {
                quantity: "variants",
                actual: cost.num_variants as u64,
                limit: self.max_variants.unwrap_or(0) as u64,
            });
        }
        if over(cost.sweep_assignments, self.max_sweep_assignments) {
            return Admission::Reject(AdmissionError {
                quantity: "sweep assignments",
                actual: cost.sweep_assignments,
                limit: self.max_sweep_assignments.unwrap_or(0),
            });
        }
        if over(cost.accumulator_bytes, self.max_accumulator_bytes) {
            return Admission::Reject(AdmissionError {
                quantity: "accumulator bytes",
                actual: cost.accumulator_bytes,
                limit: self.max_accumulator_bytes.unwrap_or(0),
            });
        }
        if over(cost.sweep_assignments, self.solo_sweep_assignments)
            || over(cost.accumulator_bytes, self.solo_accumulator_bytes)
        {
            return Admission::Solo;
        }
        Admission::Admit
    }
}

/// The verdict of [`AdmissionPolicy::admit`] for one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run in the shared pool.
    Admit,
    /// Run, but sequentialized: alone with the full worker pool, after
    /// the pooled jobs finish.
    Solo,
    /// Do not run; the job's result is this error.
    Reject(AdmissionError),
}

/// A job exceeded an [`AdmissionPolicy`] budget and was not enqueued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmissionError {
    /// Which budgeted quantity overflowed ("cuts", "variants",
    /// "sweep assignments", "accumulator bytes").
    pub quantity: &'static str,
    /// The job's value of that quantity.
    pub actual: u64,
    /// The configured budget it exceeded.
    pub limit: u64,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission rejected: {} {} exceeds budget {}",
            self.quantity, self.actual, self.limit
        )
    }
}

impl Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> PlanCost {
        PlanCost {
            num_cuts: 3,
            num_variants: 40,
            sweep_assignments: 64,
            accumulator_bytes: 1 << 20,
        }
    }

    #[test]
    fn unlimited_policy_admits_everything() {
        assert_eq!(
            AdmissionPolicy::unlimited().admit(&cost()),
            Admission::Admit
        );
    }

    #[test]
    fn rejection_reports_quantity_and_budget() {
        let policy = AdmissionPolicy {
            max_cuts: Some(2),
            ..AdmissionPolicy::default()
        };
        match policy.admit(&cost()) {
            Admission::Reject(e) => {
                assert_eq!(e.quantity, "cuts");
                assert_eq!(e.actual, 3);
                assert_eq!(e.limit, 2);
                assert_eq!(e.to_string(), "admission rejected: cuts 3 exceeds budget 2");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejection_outranks_sequentialization() {
        let policy = AdmissionPolicy {
            max_variants: Some(10),
            solo_sweep_assignments: Some(1),
            ..AdmissionPolicy::default()
        };
        assert!(matches!(policy.admit(&cost()), Admission::Reject(_)));
    }

    #[test]
    fn solo_threshold_sequentializes() {
        let policy = AdmissionPolicy {
            solo_accumulator_bytes: Some(1 << 10),
            ..AdmissionPolicy::default()
        };
        assert_eq!(policy.admit(&cost()), Admission::Solo);
    }

    #[test]
    fn at_limit_is_admitted() {
        let policy = AdmissionPolicy {
            max_cuts: Some(3),
            max_sweep_assignments: Some(64),
            ..AdmissionPolicy::default()
        };
        assert_eq!(policy.admit(&cost()), Admission::Admit);
    }
}
