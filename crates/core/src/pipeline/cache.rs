//! The plan cache: fingerprint-keyed reuse of [`CutPlan`]s.
//!
//! Cutting and planning is the dominant cost of cut-bound workloads, and
//! callers routinely resubmit structurally identical circuits — repeated
//! [`SuperSim::run`](crate::SuperSim::run) calls in an optimization loop,
//! batches whose circuits share a template. A [`PlanCache`] keyed by
//! [`qcir::Circuit::fingerprint`] (mixed with the cut strategy) lets
//! [`SuperSim`](crate::SuperSim) hand back the already-built plan instead
//! of re-running the cutter.
//!
//! # Identity and correctness
//!
//! Two circuits share a cache entry only when their structural
//! fingerprints agree *and* the configured [`CutStrategy`] compares equal
//! (the strategy is stored in the entry and compared on every lookup, so
//! strategy changes can never serve a stale plan). The fingerprint is the
//! same structural identity the rest of the pipeline uses for
//! diagnostics; plans are immutable once built, so a cache hit replays
//! the exact plan object — results are bit-identical to a rebuilt plan by
//! construction ([`CutPlan::build`] is deterministic).
//!
//! Cached plans receive **no** trust shortcut downstream: every run
//! re-judges the plan's [`PlanCost`](super::plan::PlanCost) against the
//! admission policy, exactly as a freshly built plan is judged.
//!
//! # Eviction
//!
//! The cache is bounded: when full, the least-recently-used entry is
//! evicted (entries carry a monotone use stamp; eviction removes the
//! minimum). Capacity 0 disables caching entirely — every lookup misses
//! without touching the counters, and inserts are dropped.

use super::plan::CutPlan;
use cutkit::CutStrategy;
use faultkit::lock_or_recover;
use qcir::Circuit;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counter snapshot of a [`SuperSim`](crate::SuperSim) instance's plan
/// cache, reported via [`SuperSim::stats`](crate::SuperSim::stats).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries evicted to keep the cache within capacity.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

struct Entry {
    /// Full fingerprint + strategy, compared on lookup so a key collision
    /// between different strategies can never serve the wrong plan.
    fingerprint: u64,
    strategy: CutStrategy,
    plan: Arc<CutPlan>,
    /// Monotone last-use stamp; the eviction victim is the minimum.
    stamp: u64,
}

struct Entries {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// Bounded, LRU-evicting cache of built [`CutPlan`]s, keyed by
/// (circuit fingerprint, cut strategy). Shared by every clone of a
/// [`SuperSim`](crate::SuperSim) instance; all operations are
/// thread-safe and poison-recovering.
pub(crate) struct PlanCache {
    capacity: usize,
    inner: Mutex<Entries>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(Entries {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Cache key: the circuit's structural fingerprint mixed with an
    /// FNV-1a hash of the strategy (rotated so a strategy change perturbs
    /// high and low bits). Lookups still compare the stored fingerprint
    /// and strategy, so the key only has to distribute, not identify.
    fn key(circuit: &Circuit, strategy: &CutStrategy) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{strategy:?}").bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        circuit.fingerprint() ^ h.rotate_left(17)
    }

    /// Looks up the plan of `circuit` under `strategy`, refreshing its
    /// LRU stamp on a hit. Counts a miss only when the cache is enabled.
    pub(crate) fn get(&self, circuit: &Circuit, strategy: &CutStrategy) -> Option<Arc<CutPlan>> {
        if self.capacity == 0 {
            return None;
        }
        let fingerprint = circuit.fingerprint();
        let mut inner = lock_or_recover(&self.inner);
        let Entries { map, clock } = &mut *inner;
        match map.get_mut(&Self::key(circuit, strategy)) {
            Some(e) if e.fingerprint == fingerprint && e.strategy == *strategy => {
                *clock += 1;
                e.stamp = *clock;
                let plan = Arc::clone(&e.plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            _ => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly built plan, evicting the least-recently-used
    /// entry when at capacity. Re-inserting an existing key refreshes it.
    pub(crate) fn insert(&self, circuit: &Circuit, strategy: &CutStrategy, plan: &Arc<CutPlan>) {
        if self.capacity == 0 {
            return;
        }
        let key = Self::key(circuit, strategy);
        let mut inner = lock_or_recover(&self.inner);
        let Entries { map, clock } = &mut *inner;
        *clock += 1;
        let stamp = *clock;
        if !map.contains_key(&key) && map.len() >= self.capacity {
            if let Some(&victim) = map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            key,
            Entry {
                fingerprint: circuit.fingerprint(),
                strategy: strategy.clone(),
                plan: Arc::clone(plan),
                stamp,
            },
        );
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: lock_or_recover(&self.inner).map.len(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(tag: u64) -> Circuit {
        // Vary the rotation angle so each tag has a distinct fingerprint.
        let mut c = Circuit::new(2);
        c.h(0).rz(0, 0.1 + tag as f64).cx(0, 1).t(1);
        c
    }

    fn build(c: &Circuit, strategy: &CutStrategy) -> Arc<CutPlan> {
        Arc::new(CutPlan::build(c, strategy.clone()).unwrap())
    }

    #[test]
    fn hit_returns_the_same_arc_and_counts() {
        let cache = PlanCache::new(4);
        let strategy = CutStrategy::default();
        let c = circuit(0);
        assert!(cache.get(&c, &strategy).is_none());
        let plan = build(&c, &strategy);
        cache.insert(&c, &strategy, &plan);
        let hit = cache.get(&c, &strategy).expect("cached");
        assert!(Arc::ptr_eq(&hit, &plan), "hit must return the cached Arc");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn structural_edit_and_strategy_change_miss() {
        let cache = PlanCache::new(4);
        let strategy = CutStrategy::default();
        let c = circuit(0);
        cache.insert(&c, &strategy, &build(&c, &strategy));
        // A structurally different circuit misses...
        assert!(cache.get(&circuit(1), &strategy).is_none());
        // ...and so does the same circuit under a different strategy.
        let other = CutStrategy::IsolateNonClifford { max_cuts: 3 };
        assert!(cache.get(&c, &other).is_none());
        assert!(cache.get(&c, &strategy).is_some());
    }

    #[test]
    fn lru_eviction_bounds_occupancy() {
        let cache = PlanCache::new(2);
        let strategy = CutStrategy::default();
        let circuits: Vec<Circuit> = (0..3).map(circuit).collect();
        for c in &circuits[..2] {
            cache.insert(c, &strategy, &build(c, &strategy));
        }
        // Touch circuit 0 so circuit 1 is the least recently used.
        assert!(cache.get(&circuits[0], &strategy).is_some());
        cache.insert(&circuits[2], &strategy, &build(&circuits[2], &strategy));
        let s = cache.stats();
        assert_eq!(s.len, 2, "capacity bound violated");
        assert_eq!(s.evictions, 1);
        assert!(
            cache.get(&circuits[0], &strategy).is_some(),
            "recently used survives"
        );
        assert!(
            cache.get(&circuits[2], &strategy).is_some(),
            "new entry cached"
        );
        assert!(
            cache.get(&circuits[1], &strategy).is_none(),
            "LRU entry evicted"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let strategy = CutStrategy::default();
        let c = circuit(0);
        cache.insert(&c, &strategy, &build(&c, &strategy));
        assert!(cache.get(&c, &strategy).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (0, 0, 0, 0));
    }
}
