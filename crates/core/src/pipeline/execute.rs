//! The execute stage: running evaluate → MLFT → recombine against a
//! [`CutPlan`].
//!
//! An [`Executor`] owns no state beyond a reference to the configuration;
//! every run replays a prebuilt plan with a choice of [`ExecParams`]
//! (seed + shot budget). [`Executor::run_sweep`] executes many parameter
//! points against **one** plan on one shared worker pool (see the
//! [`batch`](super::batch) scheduler) — the plan is built once, the cutter
//! never re-runs, and points proceed through the pipeline stages
//! independently.

use super::batch::{execute_jobs, BatchJob};
use super::plan::CutPlan;
use super::resilience::{run_sweep_resilient, BatchOutcome, BreakerState, ResiliencePolicy};
use super::{fault_error, SuperSimConfig, SuperSimError};
use cutkit::{EvalMode, EvalOptions, FragmentTensor, Reconstructor, TensorOptions};
use faultkit::{Stage, Supervisor};
use metrics::Distribution;
use qcir::Bits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-run execution parameters: the knobs a sweep varies while the cut
/// structure (the [`CutPlan`]) stays fixed.
///
/// Build fluently from a starting point — [`ExecParams::seeded`],
/// [`ExecParams::from_config`], or [`ExecParams::default`] — then chain
/// `with_*` overrides:
///
/// ```
/// # use supersim::ExecParams;
/// let p = ExecParams::seeded(7).with_shots(2000).with_error_budget(1e-3);
/// assert_eq!(p.seed, 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecParams {
    /// Base RNG seed of this run (each fragment derives its own stream,
    /// exactly as [`SuperSimConfig::seed`] does for
    /// [`SuperSim::run`](crate::SuperSim::run)).
    pub seed: u64,
    /// Shots per fragment variant in sampled mode (ignored in exact mode).
    pub shots: usize,
    /// Per-job wall-clock deadline of this run, overriding
    /// [`SuperSimConfig::job_deadline`] when set. A run that exceeds it
    /// fails with [`SuperSimError::DeadlineExceeded`] at its next
    /// supervision checkpoint.
    pub deadline: Option<Duration>,
    /// Recombination error budget of this run, overriding
    /// [`SuperSimConfig::error_budget`] when set (see that field for the
    /// accuracy/latency semantics; the realized bound is reported via
    /// [`RunReport::recombine_error_bound`]).
    pub error_budget: Option<f64>,
}

impl Default for ExecParams {
    /// The paper-protocol defaults: seed 0, 5000 shots, no deadline, no
    /// error budget (exact recombination).
    fn default() -> Self {
        ExecParams {
            seed: 0,
            shots: 5000,
            deadline: None,
            error_budget: None,
        }
    }
}

impl ExecParams {
    /// Default parameters with the given seed — the usual sweep starting
    /// point (independent tomography repetitions of one cut structure).
    pub fn seeded(seed: u64) -> Self {
        ExecParams {
            seed,
            ..ExecParams::default()
        }
    }

    /// The parameters [`SuperSim::run`](crate::SuperSim::run) itself uses:
    /// the config's seed and shot budget.
    pub fn from_config(config: &SuperSimConfig) -> Self {
        ExecParams {
            seed: config.seed,
            shots: config.shots,
            deadline: None,
            error_budget: None,
        }
    }

    /// This run's parameters with a different seed.
    pub fn with_seed(self, seed: u64) -> Self {
        ExecParams { seed, ..self }
    }

    /// This run's parameters with a different shot budget.
    pub fn with_shots(self, shots: usize) -> Self {
        ExecParams { shots, ..self }
    }

    /// This run's parameters with a wall-clock deadline (overrides
    /// [`SuperSimConfig::job_deadline`] for this run only).
    pub fn with_deadline(self, deadline: Duration) -> Self {
        ExecParams {
            deadline: Some(deadline),
            ..self
        }
    }

    /// This run's parameters with a recombination error budget (overrides
    /// [`SuperSimConfig::error_budget`] for this run only). `0.0` forces
    /// the exact sweep regardless of the config's budget.
    pub fn with_error_budget(self, budget: f64) -> Self {
        ExecParams {
            error_budget: Some(budget),
            ..self
        }
    }
}

/// Diagnostics of one pipeline run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Number of fragments after cutting.
    pub num_fragments: usize,
    /// Number of Clifford fragments (evaluated on the stabilizer backend).
    pub clifford_fragments: usize,
    /// Number of cuts (`k` in the `4^k` reconstruction bound).
    pub num_cuts: usize,
    /// Total fragment variants executed.
    pub num_variants: usize,
    /// Wall time of the cutting stage. Runs that reuse a [`CutPlan`]
    /// report the plan's one-time build cost here, so a sweep's points all
    /// show the same (amortized) value.
    pub cut_time: Duration,
    /// Wall time of fragment evaluation (all variants, including the MLFT
    /// correction). On the batch scheduler this is wall-clock time during
    /// which other circuits' work shares the pool.
    pub eval_time: Duration,
    /// Wall time of recombination.
    pub recombine_time: Duration,
    /// Total Frobenius movement of the MLFT correction (0 without MLFT).
    pub mlft_moved: f64,
    /// Guaranteed cap on the L1 error the budget-truncated recombination
    /// introduced: the accumulated weight bound of every skipped cut
    /// assignment (0.0 with a zero budget — the exact sweep). The skip
    /// set is identical for every query of the run (marginals, joint,
    /// follow-up strong simulation), so one bound covers them all.
    pub recombine_error_bound: f64,
    /// Cut assignments the error budget skipped during recombination
    /// (sparse-skipped exact zeros are not counted).
    pub assignments_skipped: u64,
    /// Cut assignments the recombination sweep actually contracted, after
    /// both sparse skipping and budget truncation — the post-truncation
    /// counterpart of [`PlanCost::sweep_assignments`](crate::PlanCost::sweep_assignments),
    /// so cost estimates and realized work compare like with like.
    pub visited_assignments: u64,
    /// Whether this run's [`CutPlan`] was served from the instance's plan
    /// cache instead of being rebuilt. Always `false` on the raw
    /// [`Executor`] entry points, which take a prebuilt plan; set by
    /// [`SuperSim::run`](crate::SuperSim::run) and
    /// [`SuperSim::run_batch`](crate::SuperSim::run_batch).
    pub plan_cache_hit: bool,
    /// Attempts the resilient driver consumed before this run succeeded
    /// (1 = clean first pass; counts circuit-breaker denials too). Always
    /// 1 on the non-resilient entry points.
    pub attempts: usize,
    /// Error budget the [`DegradationPolicy`](crate::DegradationPolicy)
    /// escalated this run to, when load shedding rescued it. `None` when
    /// the run completed at its requested accuracy.
    pub degraded_budget: Option<f64>,
    /// State of the job's circuit breaker when the resilient driver
    /// finished with it. `None` outside the resilient entry points.
    pub breaker_state: Option<BreakerState>,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fragments ({} Clifford), {} cuts, {} variants; \
             cut {:?}, eval {:?}, recombine {:?}",
            self.num_fragments,
            self.clifford_fragments,
            self.num_cuts,
            self.num_variants,
            self.cut_time,
            self.eval_time,
            self.recombine_time
        )?;
        if self.assignments_skipped > 0 {
            write!(
                f,
                "; budget skipped {} assignments (error bound {:.3e})",
                self.assignments_skipped, self.recombine_error_bound
            )?;
        }
        Ok(())
    }
}

impl RunReport {
    /// Multi-line operator summary of the run: the [`Display`](fmt::Display)
    /// line plus one line per resilience event — attempts used, escalated
    /// error budget, and circuit-breaker state — so one report per job
    /// tells the whole retry/degrade story.
    pub fn render_summary(&self) -> String {
        let mut out = format!("{self}");
        if self.attempts > 1 {
            out.push_str(&format!(
                "\nattempts: {} ({} retried)",
                self.attempts,
                self.attempts - 1
            ));
        }
        if let Some(budget) = self.degraded_budget {
            out.push_str(&format!(
                "\ndegraded: error budget escalated to {budget:.3e} (accuracy shed under load)"
            ));
        }
        if let Some(state) = self.breaker_state {
            out.push_str(&format!("\nbreaker: {state}"));
        }
        out
    }
}

/// Result of one pipeline execution ([`SuperSim::run`](crate::SuperSim::run),
/// [`Executor::run`], or one point of a sweep/batch).
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Single-qubit marginals of the reconstructed distribution — always
    /// available, even for hundreds of qubits.
    pub marginals: Vec<[f64; 2]>,
    /// The full joint distribution, when the fragment supports are small
    /// enough (see [`SuperSimConfig::joint_support_limit`]).
    pub distribution: Option<Distribution>,
    /// Pipeline diagnostics.
    pub report: RunReport,
    tensors: Vec<FragmentTensor>,
    num_cuts: usize,
    n_qubits: usize,
    sparse: bool,
    /// Contraction pool size for follow-up queries (1 = sequential,
    /// 0 = one worker per core), mirroring the config this run used.
    threads: usize,
    /// Resolved recombination error budget of this run, reapplied to
    /// follow-up queries ([`RunResult::probability_of`],
    /// [`RunResult::expectation_z`]) so they truncate the exact same
    /// assignment set the run itself did.
    error_budget: f64,
}

impl RunResult {
    /// "Strong simulation": the reconstructed probability of a specific
    /// bitstring (machine precision in exact mode).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the circuit width.
    pub fn probability_of(&self, bits: &Bits) -> f64 {
        Reconstructor::new(&self.tensors, self.num_cuts, self.n_qubits)
            .with_sparse(self.sparse)
            .with_threads(self.threads)
            .with_error_budget(self.error_budget)
            .probability_of(bits)
    }

    /// The fragment tensors of this run (advanced inspection).
    pub fn tensors(&self) -> &[FragmentTensor] {
        &self.tensors
    }

    /// Draws measurement samples from the reconstructed joint distribution.
    ///
    /// Returns `None` when the joint distribution was withheld (fragment
    /// supports too large); use [`RunResult::marginals`] instead in that
    /// regime.
    pub fn sample(&self, shots: usize, rng: &mut impl rand::Rng) -> Option<Vec<Bits>> {
        self.distribution.as_ref().map(|d| d.sample(shots, rng))
    }

    /// Expectation value `⟨Π_{q∈subset} Z_q⟩` of a diagonal observable on
    /// the reconstructed distribution. Scales to hundreds of qubits (does
    /// not require the joint distribution) — the workhorse for VQE-style
    /// cost functions (paper §IV-B).
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        Reconstructor::new(&self.tensors, self.num_cuts, self.n_qubits)
            .with_sparse(self.sparse)
            .with_threads(self.threads)
            .with_error_budget(self.error_budget)
            .expectation_z(subset)
    }

    /// Whether two runs agree **bit for bit** on every numeric output of
    /// the determinism contract: marginal float bits, joint availability,
    /// support size and emission order, per-outcome probability bits, and
    /// the `mlft_moved` diagnostic. This is the comparison the
    /// determinism suites and the `batch_sweep` benchmark gate on —
    /// batch/sweep results must satisfy it against independent sequential
    /// runs for every thread count.
    pub fn bit_identical_to(&self, other: &RunResult) -> bool {
        self.report.mlft_moved.to_bits() == other.report.mlft_moved.to_bits()
            && self.marginals.len() == other.marginals.len()
            && self
                .marginals
                .iter()
                .zip(&other.marginals)
                .all(|(x, y)| x[0].to_bits() == y[0].to_bits() && x[1].to_bits() == y[1].to_bits())
            && match (&self.distribution, &other.distribution) {
                (Some(da), Some(db)) => {
                    da.support_len() == db.support_len()
                        && da
                            .iter()
                            .zip(db.iter())
                            .all(|((ab, ap), (bb, bp))| ab == bb && ap.to_bits() == bp.to_bits())
                }
                (None, None) => true,
                _ => false,
            }
    }
}

/// Executes prebuilt [`CutPlan`]s: single runs, and parameter sweeps on
/// one shared worker pool.
#[derive(Clone, Copy, Debug)]
pub struct Executor<'c> {
    config: &'c SuperSimConfig,
}

impl<'c> Executor<'c> {
    /// Creates an executor over a configuration.
    pub fn new(config: &'c SuperSimConfig) -> Self {
        Executor { config }
    }

    /// Runs the evaluate → MLFT → recombine stages against `plan` with the
    /// configuration's own seed and shot budget. `SuperSim::run` is
    /// exactly `plan` + this call, so results are identical to the
    /// monolithic pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SuperSimError`] when a fragment cannot be evaluated or
    /// the MLFT correction cannot normalize a fragment.
    pub fn run(&self, plan: &CutPlan) -> Result<RunResult, SuperSimError> {
        self.run_with(plan, ExecParams::from_config(self.config))
    }

    /// [`Executor::run`] with explicit per-run parameters.
    ///
    /// Runs as a single-job batch on the shared scheduler, so single runs
    /// get the full supervision layer — panic isolation, deadlines,
    /// cancellation, admission control, fault injection — with the same
    /// task decomposition a batch uses (results are bit-identical either
    /// way; see the [`batch`](super::batch) module docs). Single-run
    /// errors are **not** wrapped in [`SuperSimError::Job`].
    ///
    /// # Errors
    ///
    /// Returns [`SuperSimError`] when a fragment cannot be evaluated, the
    /// MLFT correction cannot normalize a fragment, a task panics, the
    /// run is cancelled or exceeds its deadline, or admission control
    /// rejects the plan.
    pub fn run_with(&self, plan: &CutPlan, params: ExecParams) -> Result<RunResult, SuperSimError> {
        let jobs = [BatchJob {
            plan,
            params,
            index: 0,
            attempt: 0,
        }];
        execute_jobs(self.config, &jobs)
            .pop()
            .expect("one result for one job")
    }

    /// Executes one plan across many parameter points — the sweep shape of
    /// CAFQA/VQE and fragment tomography: cut once, execute many times.
    ///
    /// All (point × fragment × variant) work items share **one** worker
    /// pool spanning every point and every pipeline stage (evaluation,
    /// MLFT, recombination), so a slow point cannot serialize the sweep
    /// behind a stage barrier. Each point's output is **bit-identical** to
    /// an independent [`SuperSim::run`](crate::SuperSim::run) with that
    /// point's seed and shot budget, for every thread count: per-point RNG
    /// streams are derived exactly as single runs derive them, and every
    /// merge folds in (point, fragment, variant) order.
    ///
    /// # Failure semantics
    ///
    /// Identical to [`SuperSim::run_batch`](crate::SuperSim::run_batch):
    /// failures stay per-point and are wrapped in [`SuperSimError::Job`]
    /// (point index + circuit fingerprint); panics are isolated at task
    /// boundaries ([`SuperSimError::Panicked`]); per-point and
    /// batch-wide deadlines, the cancel token, and admission control
    /// apply per point; surviving points stay bit-identical to
    /// independent runs on every schedule.
    pub fn run_sweep(
        &self,
        plan: &CutPlan,
        params: &[ExecParams],
    ) -> Vec<Result<RunResult, SuperSimError>> {
        let jobs: Vec<BatchJob<'_>> = params
            .iter()
            .enumerate()
            .map(|(i, &p)| BatchJob {
                plan,
                params: p,
                index: i,
                attempt: 0,
            })
            .collect();
        execute_jobs(self.config, &jobs)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map_err(|e| SuperSimError::Job {
                    job: i,
                    fingerprint: plan.fingerprint(),
                    source: Box::new(e),
                })
            })
            .collect()
    }

    /// [`Executor::run_sweep`] behind a [`ResiliencePolicy`](crate::ResiliencePolicy)
    /// (see [`SuperSim::run_batch_resilient`](crate::SuperSim::run_batch_resilient)
    /// for the retry/degrade/salvage semantics): one plan, many parameter
    /// points, each retried, degraded, or salvaged independently. Takes
    /// the plan by `Arc` so the returned
    /// [`BatchOutcome`](crate::BatchOutcome) can keep it alive for
    /// [`resume`](crate::BatchOutcome::resume).
    pub fn run_sweep_resilient(
        &self,
        plan: &Arc<CutPlan>,
        params: &[ExecParams],
        policy: ResiliencePolicy,
    ) -> BatchOutcome {
        run_sweep_resilient(self.config, plan, params, policy)
    }
}

/// Worker-pool size shared by fragment evaluation, MLFT correction, and
/// the batch scheduler: 1 when [`SuperSimConfig::parallel`] is off,
/// otherwise the configured thread count resolved by
/// [`runtime::worker_count`] (`0` = the auto count: `SUPERSIM_TEST_THREADS`
/// when set, hardware parallelism otherwise).
pub(crate) fn worker_threads(config: &SuperSimConfig) -> usize {
    if config.parallel {
        runtime::worker_count(config.threads, usize::MAX)
    } else {
        1
    }
}

/// Contraction pool size recorded on results (and used by `run`'s own
/// recombination): 1 sequential, 0 = all cores.
pub(crate) fn contraction_pool(config: &SuperSimConfig) -> usize {
    if config.parallel {
        config.threads
    } else {
        1
    }
}

/// Whether the MLFT correction stage runs under this configuration.
pub(crate) fn mlft_enabled(config: &SuperSimConfig) -> bool {
    config.mlft && !config.exact
}

/// The evaluation options of one run. The supervisor is the job's own
/// supervision context, consulted at every evaluation-chunk boundary.
pub(crate) fn eval_options(
    config: &SuperSimConfig,
    params: ExecParams,
    supervisor: Supervisor,
) -> EvalOptions {
    EvalOptions {
        mode: if config.exact {
            EvalMode::Exact
        } else {
            EvalMode::Sampled {
                shots: params.shots,
            }
        },
        exact_clifford: config.exact_clifford,
        exact_support_limit: config.exact_support_limit,
        tableau_engine: config.tableau_engine,
        supervisor,
    }
}

/// The recombination error budget of one run: the per-run override when
/// set, the config's budget otherwise (the same override shape as
/// [`ExecParams::deadline`] vs [`SuperSimConfig::job_deadline`]).
pub(crate) fn resolved_error_budget(config: &SuperSimConfig, params: ExecParams) -> f64 {
    params.error_budget.unwrap_or(config.error_budget)
}

/// The tensor-construction options of one run.
pub(crate) fn tensor_options(config: &SuperSimConfig) -> TensorOptions {
    TensorOptions {
        clifford_snap: config.clifford_snap,
    }
}

/// One base seed per fragment, derived from the run seed exactly as every
/// path (single run, sweep point, batch circuit) derives them — the RNG
/// stream isolation that keeps batch output bit-identical to independent
/// runs.
pub(crate) fn base_seeds(seed: u64, fragments: usize) -> Vec<u64> {
    (0..fragments)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
            rng.random()
        })
        .collect()
}

/// The recombination stage + result assembly, shared by the single-run
/// path and the batch scheduler's finish task. `recombine_threads` is a
/// scheduling choice only — recombination is bit-identical for any thread
/// count — so the batch scheduler contracts with one thread per finish
/// task (its parallelism comes from running many circuits at once) while
/// single runs use the configured pool. The job's supervisor is checked
/// once per contraction chunk; an interrupt or injected error surfaces as
/// the typed pipeline error with the job's elapsed time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_run(
    config: &SuperSimConfig,
    plan: &CutPlan,
    tensors: Vec<FragmentTensor>,
    mlft_moved: f64,
    eval_time: Duration,
    recombine_threads: usize,
    error_budget: f64,
    supervisor: &Supervisor,
) -> Result<RunResult, SuperSimError> {
    let t2 = Instant::now();
    let rec = Reconstructor::new(&tensors, plan.cut.num_cuts, plan.cut.original_qubits)
        .with_sparse(config.sparse_contraction)
        .with_threads(recombine_threads)
        .with_output_plans(&plan.output_plans)
        .with_supervisor(supervisor.clone())
        .with_error_budget(error_budget);
    let (marginals, stats) = rec
        .try_marginals_with_stats()
        .map_err(|fault| fault_error(Stage::Recombine, fault, supervisor))?;
    let support: usize = tensors
        .iter()
        .map(|t| t.support_len().max(1))
        .fold(1usize, |a, b| a.saturating_mul(b));
    let distribution = if support <= config.joint_support_limit {
        // The joint sweep skips the identical assignment set the marginal
        // sweep did (skip decisions are query-independent), so its stats
        // are the same and one report entry covers both.
        let (mut d, _) = rec
            .try_joint_with_stats(config.joint_support_limit)
            .map_err(|fault| fault_error(Stage::Recombine, fault, supervisor))?;
        d.clip_and_normalize();
        Some(d)
    } else {
        None
    };
    let recombine_time = t2.elapsed();
    Ok(RunResult {
        marginals,
        distribution,
        report: RunReport {
            num_fragments: plan.num_fragments(),
            clifford_fragments: plan.clifford_fragments,
            num_cuts: plan.cut.num_cuts,
            num_variants: plan.num_variants,
            cut_time: plan.cut_time,
            eval_time,
            recombine_time,
            mlft_moved,
            recombine_error_bound: stats.skipped_bound,
            assignments_skipped: stats.skipped,
            visited_assignments: stats.visited,
            plan_cache_hit: false,
            attempts: 1,
            degraded_budget: None,
            breaker_state: None,
        },
        tensors,
        num_cuts: plan.cut.num_cuts,
        n_qubits: plan.cut.original_qubits,
        sparse: config.sparse_contraction,
        threads: contraction_pool(config),
        error_budget,
    })
}
