//! The SuperSim pipeline, staged as **plan → execute**, batch-first.
//!
//! # Architecture
//!
//! The pipeline is split into three modules:
//!
//! * [`plan`] — [`CutPlan`]: cut placement, fragment structure, variant
//!   enumeration, and recombination scatter plans, built **once** per cut
//!   structure by [`SuperSim::plan`];
//! * [`execute`] — [`Executor`]: evaluate → MLFT → recombine against a
//!   plan, with per-run [`ExecParams`] (seed, shot budget) and
//!   [`Executor::run_sweep`] for parameter sweeps over one plan;
//! * [`batch`] — the shared worker pool behind [`SuperSim::run_batch`]
//!   and [`Executor::run_sweep`]: all (circuit × fragment × variant) work
//!   items and all pipeline stages drain through one dependency-driven
//!   task queue, so there are no per-circuit stage barriers and one slow
//!   circuit cannot serialize a batch;
//! * [`resilience`] — the service-hardening layer over the batch
//!   scheduler behind [`SuperSim::run_batch_resilient`] and
//!   [`Executor::run_sweep_resilient`]: deterministic retries with seeded
//!   backoff ([`RetryPolicy`]), partial-batch salvage and failed-only
//!   resume ([`BatchOutcome`]), load-shedding degradation along an
//!   error-budget ladder ([`DegradationPolicy`]), and a per-plan circuit
//!   breaker ([`BreakerPolicy`]).
//!
//! [`SuperSim::run`] is exactly `plan` + `execute` — the monolithic entry
//! point is a thin composition of the stages.
//!
//! # Threading model
//!
//! With [`SuperSimConfig::parallel`] enabled, worker pools are sized by
//! [`SuperSimConfig::threads`] (`0` = one worker per available core):
//!
//! * **Single runs** schedule every (fragment × variant) pair onto one
//!   shared evaluation pool ([`cutkit::evaluate_fragment_tensors`]), ride
//!   the same pool for MLFT ([`cutkit::correct_tensors`]), and contract
//!   the `4^k` assignment range in fixed-size chunks
//!   ([`cutkit::Reconstructor::with_threads`]).
//! * **Batches and sweeps** flatten all circuits' work into one pool
//!   spanning every stage: evaluation chunks of all circuits interleave
//!   freely; a circuit moves to MLFT the moment its own last chunk lands,
//!   and to recombination the moment its last fragment is corrected.
//!   Cross-circuit parallelism replaces intra-stage parallelism (each
//!   batch recombination contracts single-threaded), which keeps the pool
//!   busy without nesting pools.
//!
//! **Determinism-in-seed guarantee:** every path produces bit-identical
//! results for a given seed regardless of thread count, and batch/sweep
//! output is bit-identical to independent sequential [`SuperSim::run`]
//! calls: work-item decompositions are fixed (never derived from worker
//! counts or schedules), all float folds happen in (circuit, fragment,
//! variant) / chunk order, and each circuit derives its RNG streams from
//! its own seed exactly as a single run does. `parallel: false` is
//! therefore purely a scheduling choice, never a numerical one.

pub(crate) mod batch;
pub(crate) mod cache;
pub(crate) mod execute;
pub(crate) mod plan;
pub(crate) mod resilience;
pub(crate) mod supervise;

pub use cache::PlanCacheStats;
pub use execute::{ExecParams, Executor, RunReport, RunResult};
pub use plan::{CutPlan, PlanCost, PlanLoadError};
pub use resilience::{
    is_transient, BatchOutcome, BreakerPolicy, BreakerState, CircuitBreaker, DegradationPolicy,
    JobStatus, ResiliencePolicy, RetryPolicy,
};
pub use supervise::{Admission, AdmissionError, AdmissionPolicy};

use cache::PlanCache;

use cutkit::{CutBudgetError, CutStrategy, EvalError, MlftError, TableauEngine};
use faultkit::{CancelToken, Fault, FaultPlan, Interrupt, Stage, Supervisor};
use qcir::Circuit;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`SuperSim`] instance.
///
/// The defaults match the paper's protocol: 5000-shot sampled fragment
/// evaluation, MLFT correction, and both Clifford-specific optimizations
/// (§IX) enabled.
#[derive(Clone, Debug)]
pub struct SuperSimConfig {
    /// Shots per fragment variant in sampled mode.
    pub shots: usize,
    /// Machine-precision evaluation (exact fragment distributions) instead
    /// of sampling.
    pub exact: bool,
    /// Cut placement strategy.
    pub cut_strategy: CutStrategy,
    /// Apply the maximum-likelihood fragment-tomography correction to
    /// sampled fragment tensors.
    pub mlft: bool,
    /// Snap Clifford-fragment conditional Pauli expectations to
    /// `{-1, 0, +1}` (paper §IX optimization 1).
    pub clifford_snap: bool,
    /// Evaluate Clifford fragments exactly even in sampled mode (the
    /// zero-shot form of §IX optimization 1); requires supports within
    /// `exact_support_limit`.
    pub exact_clifford: bool,
    /// Skip identically-zero Pauli assignments during recombination
    /// (paper §IX optimization 2).
    pub sparse_contraction: bool,
    /// Recombination error budget — the accuracy/latency dial (see the
    /// crate docs). The `4^k` sweep may skip cut assignments as long as
    /// the accumulated weight bound of everything skipped stays within
    /// this budget; the realized bound — a guaranteed cap on the L1 error
    /// of the unnormalized joint — is reported via
    /// [`RunReport::recombine_error_bound`]. `0.0` (the default) runs the
    /// exact sweep, bit for bit; any fixed budget is bit-identical for
    /// every thread count. Must be finite and non-negative.
    /// [`ExecParams::error_budget`] overrides this per run.
    pub error_budget: f64,
    /// Run fragment evaluation, recombination, and batch scheduling on
    /// worker pools (see the module docs for the threading model).
    pub parallel: bool,
    /// Worker-pool size when [`SuperSimConfig::parallel`] is set
    /// (`0` = one worker per available core). Ignored when `parallel` is
    /// `false`. Results are bit-identical for every value.
    pub threads: usize,
    /// Base RNG seed (each fragment derives its own stream).
    pub seed: u64,
    /// Build the full joint distribution only when the product of fragment
    /// supports stays below this.
    pub joint_support_limit: usize,
    /// Largest affine-support dimension enumerated in exact Clifford
    /// evaluation.
    pub exact_support_limit: usize,
    /// Stabilizer engine for noiseless Clifford fragments
    /// ([`TableauEngine::Packed`] is the word-parallel row-major default;
    /// [`TableauEngine::SparseGate`] is the column-major engine with
    /// `O(n/64)`-word gates, fastest on gate-dense fragments;
    /// [`TableauEngine::Reference`] is the frozen bit-at-a-time baseline).
    /// All three are bit-identical in outcomes and RNG consumption, so
    /// this is purely a performance knob. The default honours the
    /// `SUPERSIM_TABLEAU_ENGINE` environment variable (`packed` /
    /// `sparse-gate` / `reference`) — the CI engine axis.
    pub tableau_engine: TableauEngine,
    /// Per-job wall-clock deadline: a job (one circuit of a batch, one
    /// sweep point, or one [`SuperSim::run`]) that exceeds it fails with
    /// [`SuperSimError::DeadlineExceeded`] at its next supervision
    /// checkpoint (evaluation chunk, MLFT fragment, or recombination
    /// chunk boundary). [`ExecParams::deadline`] overrides this per job.
    pub job_deadline: Option<Duration>,
    /// Shareable cooperative cancellation token: once
    /// [`CancelToken::cancel`] is called (from any thread), every job in
    /// flight fails with [`SuperSimError::Cancelled`] at its next
    /// supervision checkpoint. Already-completed jobs keep their results.
    pub cancel: Option<CancelToken>,
    /// Batch-wide wall-clock deadline, measured from the start of
    /// [`SuperSim::run_batch`] / [`Executor::run_sweep`]: every job still
    /// in flight when it passes fails with
    /// [`SuperSimError::DeadlineExceeded`]. Composes with per-job
    /// deadlines by taking the earlier instant.
    pub batch_deadline: Option<Duration>,
    /// Admission-control budgets applied to every job before it is
    /// enqueued (default: unlimited). Rejected jobs report
    /// [`SuperSimError::Rejected`]; sequentialized jobs run alone after
    /// the pooled phase.
    pub admission: AdmissionPolicy,
    /// Deterministic fault-injection plan for chaos testing: makes chosen
    /// (job, stage, task) sites panic, error, or stall on schedule. `None`
    /// (the default) injects nothing and adds no per-task overhead.
    pub faults: Option<Arc<FaultPlan>>,
    /// Capacity of the per-instance [`CutPlan`] cache consulted by
    /// [`SuperSim::plan`], [`SuperSim::run`], and [`SuperSim::run_batch`]
    /// (keyed by circuit fingerprint + cut strategy, LRU-evicted beyond
    /// this many entries; `0` disables caching). Cache hits return the
    /// already-built plan — bit-identical to a rebuild, since planning is
    /// deterministic — and still pass admission control on every run.
    pub plan_cache_capacity: usize,
}

impl Default for SuperSimConfig {
    fn default() -> Self {
        SuperSimConfig {
            shots: 5000,
            exact: false,
            cut_strategy: CutStrategy::default(),
            mlft: true,
            clifford_snap: true,
            exact_clifford: false,
            sparse_contraction: true,
            error_budget: 0.0,
            parallel: false,
            threads: 0,
            seed: 0,
            joint_support_limit: 2_000_000,
            exact_support_limit: 16,
            tableau_engine: TableauEngine::default(),
            job_deadline: None,
            cancel: None,
            batch_deadline: None,
            admission: AdmissionPolicy::default(),
            faults: None,
            plan_cache_capacity: 128,
        }
    }
}

impl SuperSimConfig {
    /// A fluent, validating builder over the paper-protocol defaults —
    /// the preferred way to construct a configuration (the public fields
    /// stay available for struct-literal construction, but bypass
    /// validation):
    ///
    /// ```
    /// # use supersim::SuperSimConfig;
    /// let config = SuperSimConfig::builder()
    ///     .exact(true)
    ///     .parallel(true)
    ///     .error_budget(1e-3)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.error_budget, 1e-3);
    /// ```
    pub fn builder() -> SuperSimConfigBuilder {
        SuperSimConfigBuilder::default()
    }

    /// Re-enter the builder from an existing configuration, to derive a
    /// variant (revalidated at `build()`):
    ///
    /// ```
    /// # use supersim::SuperSimConfig;
    /// let base = SuperSimConfig::builder().shots(300).build().unwrap();
    /// let seq = base.clone().into_builder().parallel(false).build().unwrap();
    /// assert_eq!(seq.shots, 300);
    /// assert!(!seq.parallel);
    /// ```
    pub fn into_builder(self) -> SuperSimConfigBuilder {
        SuperSimConfigBuilder { config: self }
    }
}

/// Validation errors from [`SuperSimConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The error budget was NaN, infinite, or negative — the truncated
    /// sweep needs a finite non-negative L1 allowance.
    InvalidErrorBudget(f64),
    /// A worker-pool size was set without enabling `parallel`; `threads`
    /// is meaningless on the sequential path, so an explicit size there
    /// is almost certainly a dropped `.parallel(true)`.
    ThreadsWithoutParallel(usize),
    /// A [`DegradationPolicy`] ladder was empty, held a NaN / infinite /
    /// non-positive rung, or did not strictly increase. The message names
    /// the offending rung.
    InvalidDegradationLadder(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidErrorBudget(b) => {
                write!(f, "error budget must be finite and non-negative, got {b}")
            }
            ConfigError::ThreadsWithoutParallel(t) => {
                write!(f, "threads = {t} has no effect without parallel; call .parallel(true) or drop .threads(..)")
            }
            ConfigError::InvalidDegradationLadder(reason) => {
                write!(f, "invalid degradation ladder: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`SuperSimConfig`], created by
/// [`SuperSimConfig::builder`]. Starts from [`SuperSimConfig::default`]
/// (the paper's protocol); every setter mirrors the config field of the
/// same name, and [`SuperSimConfigBuilder::build`] validates the
/// combination before handing out the config.
#[derive(Clone, Debug, Default)]
pub struct SuperSimConfigBuilder {
    config: SuperSimConfig,
}

impl SuperSimConfigBuilder {
    /// Shots per fragment variant in sampled mode.
    pub fn shots(mut self, shots: usize) -> Self {
        self.config.shots = shots;
        self
    }

    /// Machine-precision evaluation instead of sampling.
    pub fn exact(mut self, exact: bool) -> Self {
        self.config.exact = exact;
        self
    }

    /// Cut placement strategy.
    pub fn cut_strategy(mut self, strategy: CutStrategy) -> Self {
        self.config.cut_strategy = strategy;
        self
    }

    /// Apply the MLFT correction to sampled fragment tensors.
    pub fn mlft(mut self, mlft: bool) -> Self {
        self.config.mlft = mlft;
        self
    }

    /// Snap Clifford-fragment conditional Pauli expectations (§IX opt. 1).
    pub fn clifford_snap(mut self, snap: bool) -> Self {
        self.config.clifford_snap = snap;
        self
    }

    /// Evaluate Clifford fragments exactly even in sampled mode.
    pub fn exact_clifford(mut self, exact_clifford: bool) -> Self {
        self.config.exact_clifford = exact_clifford;
        self
    }

    /// Skip identically-zero Pauli assignments during recombination.
    pub fn sparse_contraction(mut self, sparse: bool) -> Self {
        self.config.sparse_contraction = sparse;
        self
    }

    /// Recombination error budget — the accuracy/latency dial (see
    /// [`SuperSimConfig::error_budget`]). Validated at build time: must
    /// be finite and non-negative.
    pub fn error_budget(mut self, budget: f64) -> Self {
        self.config.error_budget = budget;
        self
    }

    /// Run evaluation, recombination, and batch scheduling on worker
    /// pools.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Worker-pool size (`0` = one worker per available core). Only
    /// meaningful together with [`SuperSimConfigBuilder::parallel`] —
    /// build time rejects a nonzero size on the sequential path.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Joint-distribution support ceiling.
    pub fn joint_support_limit(mut self, limit: usize) -> Self {
        self.config.joint_support_limit = limit;
        self
    }

    /// Largest affine-support dimension in exact Clifford evaluation.
    pub fn exact_support_limit(mut self, limit: usize) -> Self {
        self.config.exact_support_limit = limit;
        self
    }

    /// Stabilizer engine for noiseless Clifford fragments.
    pub fn tableau_engine(mut self, engine: TableauEngine) -> Self {
        self.config.tableau_engine = engine;
        self
    }

    /// Per-job wall-clock deadline.
    pub fn job_deadline(mut self, deadline: Duration) -> Self {
        self.config.job_deadline = Some(deadline);
        self
    }

    /// Shareable cooperative cancellation token.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = Some(cancel);
        self
    }

    /// Batch-wide wall-clock deadline.
    pub fn batch_deadline(mut self, deadline: Duration) -> Self {
        self.config.batch_deadline = Some(deadline);
        self
    }

    /// Admission-control budgets applied before jobs are enqueued.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.config.admission = policy;
        self
    }

    /// Deterministic fault-injection plan (chaos testing).
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Capacity of the per-instance [`CutPlan`] cache.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.plan_cache_capacity = capacity;
        self
    }

    /// Validates the combination and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidErrorBudget`] when the error budget is NaN,
    /// infinite, or negative; [`ConfigError::ThreadsWithoutParallel`]
    /// when a nonzero worker count was set without `parallel`.
    pub fn build(self) -> Result<SuperSimConfig, ConfigError> {
        let config = self.config;
        if !config.error_budget.is_finite() || config.error_budget < 0.0 {
            return Err(ConfigError::InvalidErrorBudget(config.error_budget));
        }
        if config.threads > 0 && !config.parallel {
            return Err(ConfigError::ThreadsWithoutParallel(config.threads));
        }
        Ok(config)
    }
}

/// Errors from the SuperSim pipeline.
///
/// Batch and sweep entry points wrap every per-job error in
/// [`SuperSimError::Job`], attaching the job's batch index and circuit
/// fingerprint; [`SuperSimError::root`] unwraps that context.
#[derive(Debug)]
pub enum SuperSimError {
    /// The cutter could not respect the cut budget.
    Cut(CutBudgetError),
    /// A fragment could not be evaluated.
    Eval(EvalError),
    /// The MLFT correction could not normalize a fragment (its tensor
    /// would have poisoned recombination had the run continued).
    Mlft(MlftError),
    /// A worker panicked while executing one of this job's tasks. The
    /// panic was isolated: the pool and every other job survive, and
    /// surviving jobs stay bit-identical to sequential runs.
    Panicked {
        /// Pipeline stage of the panicking task.
        stage: Stage,
        /// Task index within the stage (evaluation chunk, MLFT fragment,
        /// recombination chunk); `None` when the panic escaped a
        /// stage-fold step rather than a per-task kernel.
        task: Option<usize>,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// The job's deadline (per-job or batch-wide) passed before it
    /// finished; work stopped at the next supervision checkpoint.
    DeadlineExceeded {
        /// Stage that observed the deadline.
        stage: Stage,
        /// Wall time the job had been running when it stopped.
        elapsed: Duration,
    },
    /// The batch's [`CancelToken`] fired before the job finished.
    Cancelled {
        /// Stage that observed the cancellation.
        stage: Stage,
        /// Wall time the job had been running when it stopped.
        elapsed: Duration,
    },
    /// A configured [`FaultPlan`] injected an error at one of this job's
    /// supervision checkpoints (chaos testing).
    Injected {
        /// Stage of the injection site.
        stage: Stage,
        /// The injector's site description (`job J stage S task T`).
        message: String,
    },
    /// Admission control rejected the job before it was enqueued.
    Rejected(AdmissionError),
    /// The resilient driver's per-plan [`CircuitBreaker`] was open and
    /// denied the attempt before it was enqueued (transient: the breaker
    /// half-opens after its cool-down and the denial is retried within
    /// the attempt budget).
    BreakerOpen {
        /// The breaker key: the plan's circuit fingerprint.
        fingerprint: u64,
        /// Consecutive failures that tripped (and are holding) the
        /// breaker open.
        failures: usize,
    },
    /// Per-job context wrapper attached by batch/sweep entry points.
    Job {
        /// Index of the job in the batch (circuit index for
        /// [`SuperSim::run_batch`], parameter index for
        /// [`Executor::run_sweep`]).
        job: usize,
        /// Structural fingerprint of the job's circuit
        /// ([`qcir::Circuit::fingerprint`]).
        fingerprint: u64,
        /// The underlying failure.
        source: Box<SuperSimError>,
    },
}

impl SuperSimError {
    /// Strips any [`SuperSimError::Job`] context layers and returns the
    /// underlying failure.
    pub fn root(&self) -> &SuperSimError {
        match self {
            SuperSimError::Job { source, .. } => source.root(),
            other => other,
        }
    }
}

impl fmt::Display for SuperSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperSimError::Cut(e) => write!(f, "cutting failed: {e}"),
            SuperSimError::Eval(e) => write!(f, "fragment evaluation failed: {e}"),
            SuperSimError::Mlft(e) => write!(f, "MLFT correction failed: {e}"),
            SuperSimError::Panicked {
                stage,
                task: Some(task),
                payload,
            } => write!(f, "{stage} task {task} panicked: {payload}"),
            SuperSimError::Panicked {
                stage,
                task: None,
                payload,
            } => write!(f, "{stage} stage panicked: {payload}"),
            SuperSimError::DeadlineExceeded { stage, elapsed } => {
                write!(f, "deadline exceeded during {stage} after {elapsed:?}")
            }
            SuperSimError::Cancelled { stage, elapsed } => {
                write!(f, "cancelled during {stage} after {elapsed:?}")
            }
            SuperSimError::Injected { stage, message } => {
                write!(f, "injected fault during {stage}: {message}")
            }
            SuperSimError::Rejected(e) => write!(f, "{e}"),
            SuperSimError::BreakerOpen {
                fingerprint,
                failures,
            } => write!(
                f,
                "circuit breaker open for plan {fingerprint:#018x} \
                 after {failures} consecutive failures; attempt denied"
            ),
            SuperSimError::Job {
                job,
                fingerprint,
                source,
            } => write!(f, "job {job} (circuit {fingerprint:#018x}): {source}"),
        }
    }
}

impl std::error::Error for SuperSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuperSimError::Cut(e) => Some(e),
            SuperSimError::Eval(e) => Some(e),
            SuperSimError::Mlft(e) => Some(e),
            SuperSimError::Rejected(e) => Some(e),
            SuperSimError::Job { source, .. } => Some(source.as_ref()),
            SuperSimError::Panicked { .. }
            | SuperSimError::DeadlineExceeded { .. }
            | SuperSimError::Cancelled { .. }
            | SuperSimError::Injected { .. }
            | SuperSimError::BreakerOpen { .. } => None,
        }
    }
}

/// Converts a supervision [`Fault`] observed at `stage` into the typed
/// pipeline error, stamping the job's elapsed wall time on interrupts
/// (the "partial timing" a cancelled or timed-out job still reports).
pub(crate) fn fault_error(stage: Stage, fault: Fault, supervisor: &Supervisor) -> SuperSimError {
    match fault {
        Fault::Interrupted(Interrupt::Cancelled) => SuperSimError::Cancelled {
            stage,
            elapsed: supervisor.elapsed(),
        },
        Fault::Interrupted(Interrupt::DeadlineExceeded) => SuperSimError::DeadlineExceeded {
            stage,
            elapsed: supervisor.elapsed(),
        },
        Fault::Injected(message) => SuperSimError::Injected { stage, message },
    }
}

impl From<CutBudgetError> for SuperSimError {
    fn from(e: CutBudgetError) -> Self {
        SuperSimError::Cut(e)
    }
}

impl From<EvalError> for SuperSimError {
    fn from(e: EvalError) -> Self {
        SuperSimError::Eval(e)
    }
}

impl From<MlftError> for SuperSimError {
    fn from(e: MlftError) -> Self {
        SuperSimError::Mlft(e)
    }
}

/// Runtime counters of a [`SuperSim`] instance: plan-cache traffic and
/// the state of the process-wide persistent worker pool. Snapshot via
/// [`SuperSim::stats`].
#[derive(Copy, Clone, Debug)]
pub struct RunStats {
    /// This instance's plan-cache counters (hits, misses, evictions,
    /// occupancy).
    pub plan_cache: PlanCacheStats,
    /// The process-wide [`runtime`] pool (shared by every instance):
    /// live workers, total spawns, idle count. `spawned_total` staying
    /// flat across consecutive batches is the pool-reuse signal.
    pub pool: runtime::PoolStats,
}

/// The SuperSim framework: Clifford-based circuit cutting simulation.
///
/// Instances are cheap to clone; clones share one plan cache, so a
/// circuit planned through any clone is a cache hit for all of them.
#[derive(Clone, Debug)]
pub struct SuperSim {
    config: SuperSimConfig,
    plan_cache: Arc<PlanCache>,
}

impl Default for SuperSim {
    fn default() -> Self {
        SuperSim::new(SuperSimConfig::default())
    }
}

impl SuperSim {
    /// Creates a framework instance with the given configuration.
    pub fn new(config: SuperSimConfig) -> Self {
        let plan_cache = Arc::new(PlanCache::new(config.plan_cache_capacity));
        SuperSim { config, plan_cache }
    }

    /// The active configuration.
    pub fn config(&self) -> &SuperSimConfig {
        &self.config
    }

    /// Runtime counters: this instance's plan-cache traffic and the
    /// process-wide worker-pool state.
    pub fn stats(&self) -> RunStats {
        RunStats {
            plan_cache: self.plan_cache.stats(),
            pool: runtime::Pool::global().stats(),
        }
    }

    /// Builds the reusable [`CutPlan`] of a circuit: cut placement,
    /// fragment structure, variant enumeration, and recombination scatter
    /// plans. Sweeps and repeated runs pay this once.
    ///
    /// Consults the instance's plan cache first (keyed by the circuit's
    /// structural fingerprint and the configured cut strategy): a hit
    /// returns the already-built plan — the *same* `Arc` — which is
    /// bit-identical in effect to a rebuild because planning is
    /// deterministic. Set [`SuperSimConfig::plan_cache_capacity`] to 0 to
    /// always rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`SuperSimError::Cut`] when cutting exceeds the cut budget.
    pub fn plan(&self, circuit: &Circuit) -> Result<Arc<CutPlan>, SuperSimError> {
        Ok(self.plan_cached(circuit)?.0)
    }

    /// Cache-first planning; the flag reports whether the plan was served
    /// from the cache (surfaced as [`RunReport::plan_cache_hit`]).
    fn plan_cached(&self, circuit: &Circuit) -> Result<(Arc<CutPlan>, bool), SuperSimError> {
        let strategy = &self.config.cut_strategy;
        if let Some(plan) = self.plan_cache.get(circuit, strategy) {
            return Ok((plan, true));
        }
        let plan = Arc::new(CutPlan::build(circuit, strategy.clone())?);
        self.plan_cache.insert(circuit, strategy, &plan);
        Ok((plan, false))
    }

    /// An [`Executor`] over this instance's configuration.
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(&self.config)
    }

    /// Runs the full pipeline on a circuit — exactly [`SuperSim::plan`]
    /// followed by [`Executor::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SuperSimError`] when cutting exceeds the cut budget or a
    /// fragment cannot be evaluated (too wide for the statevector backend,
    /// support too large for exact enumeration, noise in exact mode).
    pub fn run(&self, circuit: &Circuit) -> Result<RunResult, SuperSimError> {
        let (plan, cache_hit) = self.plan_cached(circuit)?;
        let mut result = self.executor().run(&plan)?;
        result.report.plan_cache_hit = cache_hit;
        Ok(result)
    }

    /// Runs the full pipeline on a batch of circuits, flattening all
    /// (circuit × fragment × variant) work items into **one** worker pool
    /// spanning every circuit and every pipeline stage (see the module
    /// docs).
    ///
    /// # Failure semantics
    ///
    /// Failures stay per-circuit, and every per-circuit error is wrapped
    /// in [`SuperSimError::Job`] (batch index + circuit fingerprint;
    /// unwrap with [`SuperSimError::root`]):
    ///
    /// * **Panic isolation** — a panic inside any of a job's tasks
    ///   (evaluation chunk, MLFT fragment, recombination) is caught at
    ///   the task boundary and becomes that job's
    ///   [`SuperSimError::Panicked`]; the pool, the other jobs, and their
    ///   bit-identity to sequential runs all survive.
    /// * **Deadlines and cancellation** — per-job
    ///   ([`SuperSimConfig::job_deadline`], [`ExecParams::deadline`]) and
    ///   batch-wide ([`SuperSimConfig::batch_deadline`]) deadlines plus
    ///   the shared [`SuperSimConfig::cancel`] token are checked
    ///   cooperatively at chunk/fragment boundaries, yielding
    ///   [`SuperSimError::DeadlineExceeded`] /
    ///   [`SuperSimError::Cancelled`] with the job's elapsed wall time.
    /// * **Admission control** — each job's [`PlanCost`] is judged
    ///   against [`SuperSimConfig::admission`] before enqueuing:
    ///   rejected jobs report [`SuperSimError::Rejected`] without
    ///   running; sequentialized jobs run alone (full pool) after the
    ///   pooled phase.
    /// * **Determinism** — surviving jobs are **bit-identical** to
    ///   independent [`SuperSim::run`] calls for every thread count, and
    ///   a failing job's root error is the earliest faulting task in
    ///   task order (chunk order, then fragment order) on every
    ///   schedule.
    pub fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<RunResult, SuperSimError>> {
        batch::plan_and_run_batch(&self.config, &self.plan_cache, circuits)
    }

    /// [`SuperSim::run_batch`] behind a [`ResiliencePolicy`]: transient
    /// failures (panics, deadline trips, injected transients, breaker
    /// denials) are retried with deterministic seeded backoff; deadline
    /// pressure and admission rejection optionally degrade along the
    /// policy's error-budget ladder instead of failing; a per-plan
    /// circuit breaker guards enqueue. The returned [`BatchOutcome`]
    /// keeps the cached [`CutPlan`]s, so [`BatchOutcome::resume`] can
    /// salvage the failed jobs later without re-executing (or even
    /// re-planning) the survivors.
    ///
    /// # Determinism
    ///
    /// Retried and salvaged results are **bit-identical** to a clean
    /// single-pass run at every thread count (the driver re-submits jobs
    /// through the same scheduler, and outputs depend only on per-job
    /// seeds); degraded results are bit-identical to a run executed
    /// directly at the escalated budget. Breaker evolution, attempt
    /// accounting, and backoff schedules are pure functions of
    /// (policy, seeds, failure pattern) — never of the schedule.
    pub fn run_batch_resilient(
        &self,
        circuits: &[Circuit],
        policy: ResiliencePolicy,
    ) -> BatchOutcome {
        resilience::run_batch_resilient(&self.config, &self.plan_cache, circuits, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::Bits;
    use svsim::StateVec;

    fn exact_config() -> SuperSimConfig {
        SuperSimConfig {
            exact: true,
            ..SuperSimConfig::default()
        }
    }

    fn assert_matches_sv(c: &Circuit, cfg: SuperSimConfig, tol: f64, label: &str) {
        let result = SuperSim::new(cfg).run(c).unwrap();
        let sv = StateVec::run(c).unwrap();
        let dist = result.distribution.as_ref().expect("joint available");
        for x in 0..1usize << c.num_qubits() {
            let b = Bits::from_u64(x as u64, c.num_qubits());
            let got = dist.prob(&b);
            let expect = sv.probability_of_index(x);
            assert!(
                (got - expect).abs() < tol,
                "{label}: p({b}) = {got} vs sv {expect}"
            );
        }
    }

    #[test]
    fn exact_pipeline_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        assert_matches_sv(&c, exact_config(), 1e-9, "3q 1T");
    }

    #[test]
    fn exact_pipeline_two_t_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
        assert_matches_sv(&c, exact_config(), 1e-9, "2q 2T");
    }

    #[test]
    fn sampled_pipeline_close_to_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let cfg = SuperSimConfig {
            shots: 20_000,
            seed: 7,
            ..SuperSimConfig::default()
        };
        assert_matches_sv(&c, cfg, 0.03, "sampled 3q");
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let seq = SuperSim::new(exact_config()).run(&c).unwrap();
        let par = SuperSim::new(SuperSimConfig {
            parallel: true,
            ..exact_config()
        })
        .run(&c)
        .unwrap();
        for x in 0..8u64 {
            let b = Bits::from_u64(x, 3);
            let a = seq.distribution.as_ref().unwrap().prob(&b);
            let p = par.distribution.as_ref().unwrap().prob(&b);
            assert!((a - p).abs() < 1e-9, "parallel mismatch at {b}");
        }
    }

    #[test]
    fn parallel_mlft_bit_identical_to_sequential() {
        // Sampled mode with MLFT on: the corrected pipeline must be
        // bit-identical between the sequential loop and the worker pool.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cfg = |parallel: bool, threads: usize| SuperSimConfig {
            shots: 400,
            seed: 11,
            mlft: true,
            parallel,
            threads,
            ..SuperSimConfig::default()
        };
        let seq = SuperSim::new(cfg(false, 1)).run(&c).unwrap();
        for threads in [2usize, 8] {
            let par = SuperSim::new(cfg(true, threads)).run(&c).unwrap();
            assert!(
                seq.report.mlft_moved.to_bits() == par.report.mlft_moved.to_bits(),
                "mlft_moved differs at {threads} threads"
            );
            let a = seq.distribution.as_ref().unwrap();
            let b = par.distribution.as_ref().unwrap();
            assert_eq!(a.support_len(), b.support_len());
            for ((ab, ap), (bb, bp)) in a.iter().zip(b.iter()) {
                assert_eq!(ab, bb, "support order at {threads} threads");
                assert!(
                    ap.to_bits() == bp.to_bits(),
                    "probability differs at {ab}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn report_counts_fragments_and_cuts() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1).h(1);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        assert_eq!(r.report.num_cuts, 2);
        assert_eq!(r.report.num_fragments, 3);
        assert_eq!(r.report.clifford_fragments, 2);
        // 12 variants for the middle T fragment + upstream (3) + downstream (4).
        assert_eq!(r.report.num_variants, 12 + 3 + 4);
    }

    #[test]
    fn strong_simulation_probability() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).cx(0, 1);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        for x in 0..4u64 {
            let b = Bits::from_u64(x, 2);
            assert!(
                (r.probability_of(&b) - sv.probability_of(&b)).abs() < 1e-9,
                "strong sim at {b}"
            );
        }
    }

    #[test]
    fn marginals_available_without_joint() {
        // Force the joint off via a tiny support limit.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).t(2).cx(2, 3);
        let cfg = SuperSimConfig {
            joint_support_limit: 1,
            ..exact_config()
        };
        let r = SuperSim::new(cfg).run(&c).unwrap();
        assert!(r.distribution.is_none());
        assert_eq!(r.marginals.len(), 4);
        let sv = StateVec::run(&c).unwrap();
        let sv_dist = metrics::Distribution::from_pairs(4, sv.distribution(1e-12));
        for q in 0..4 {
            let m = sv_dist.marginal(q);
            assert!(
                (r.marginals[q][0] - m[0]).abs() < 1e-9,
                "marginal q{q}: {:?} vs {m:?}",
                r.marginals[q]
            );
        }
    }

    #[test]
    fn pure_clifford_circuit_no_cut_needed() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).s(2);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        assert_eq!(r.report.num_cuts, 0);
        assert_eq!(r.report.num_fragments, 1);
        let dist = r.distribution.unwrap();
        assert!((dist.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_clifford_optimization_gives_exact_marginals() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        let cfg = SuperSimConfig {
            shots: 50,            // tiny shot budget...
            exact_clifford: true, // ...but Clifford fragments evaluated exactly
            mlft: false,
            seed: 3,
            ..SuperSimConfig::default()
        };
        let r = SuperSim::new(cfg).run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let sv_marg = metrics::Distribution::from_pairs(3, sv.distribution(1e-12));
        // Only the tiny T fragment is sampled; since it has no circuit
        // outputs of its own the marginals stay near-exact.
        for q in 0..2 {
            assert!(
                (r.marginals[q][0] - sv_marg.marginal(q)[0]).abs() < 0.05,
                "qubit {q}"
            );
        }
    }

    /// `plan` + `Executor::run` is the same pipeline as `run`, and plan
    /// reuse across repeated executions changes nothing: identical
    /// marginals, joint support, probability bits, and diagnostics.
    #[test]
    fn planned_execution_bit_identical_to_run() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cfg = SuperSimConfig {
            shots: 350,
            seed: 99,
            ..SuperSimConfig::default()
        };
        let sim = SuperSim::new(cfg);
        let direct = sim.run(&c).unwrap();
        let plan = sim.plan(&c).unwrap();
        assert_eq!(plan.num_cuts(), direct.report.num_cuts);
        assert_eq!(plan.num_variants(), direct.report.num_variants);
        assert_eq!(plan.clifford_fragments(), direct.report.clifford_fragments);
        let executor = sim.executor();
        for rep in 0..2 {
            let replay = executor.run(&plan).unwrap();
            assert!(
                replay.report.mlft_moved.to_bits() == direct.report.mlft_moved.to_bits(),
                "mlft_moved drifted on replay {rep}"
            );
            for (q, (a, b)) in direct.marginals.iter().zip(&replay.marginals).enumerate() {
                assert!(
                    a[0].to_bits() == b[0].to_bits() && a[1].to_bits() == b[1].to_bits(),
                    "marginal bits differ at qubit {q}, replay {rep}"
                );
            }
            let (da, db) = (
                direct.distribution.as_ref().unwrap(),
                replay.distribution.as_ref().unwrap(),
            );
            assert_eq!(da.support_len(), db.support_len());
            for ((ab, ap), (bb, bp)) in da.iter().zip(db.iter()) {
                assert_eq!(ab, bb, "support order, replay {rep}");
                assert!(ap.to_bits() == bp.to_bits(), "probability at {ab}");
            }
        }
    }

    /// `run_with` overrides seed and shots exactly like a reconfigured
    /// single run.
    #[test]
    fn run_with_matches_reconfigured_run() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).h(1);
        let base = SuperSimConfig {
            shots: 200,
            seed: 5,
            ..SuperSimConfig::default()
        };
        let sim = SuperSim::new(base.clone());
        let plan = sim.plan(&c).unwrap();
        let swept = sim
            .executor()
            .run_with(
                &plan,
                ExecParams::from_config(&base).with_seed(77).with_shots(300),
            )
            .unwrap();
        let reconfigured = SuperSim::new(SuperSimConfig {
            seed: 77,
            shots: 300,
            ..base
        })
        .run(&c)
        .unwrap();
        for (a, b) in swept.marginals.iter().zip(&reconfigured.marginals) {
            assert!(a[0].to_bits() == b[0].to_bits() && a[1].to_bits() == b[1].to_bits());
        }
    }

    /// Repeated planning of a structurally identical circuit is a cache
    /// hit: the same `Arc` comes back, the hit is surfaced on the run
    /// report, and a gate edit misses.
    #[test]
    fn plan_cache_hits_on_identical_structure() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let sim = SuperSim::new(SuperSimConfig {
            shots: 100,
            ..SuperSimConfig::default()
        });
        let first = sim.plan(&c).unwrap();
        let second = sim.plan(&c).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "identical circuit must be served from the cache"
        );
        // The cached plan flows through `run`, flagged on the report, and
        // stays bit-identical to the first (cache-miss) run.
        let cold = SuperSim::new(sim.config().clone()).run(&c).unwrap();
        assert!(!cold.report.plan_cache_hit);
        let warm = sim.run(&c).unwrap();
        assert!(warm.report.plan_cache_hit);
        assert!(warm.bit_identical_to(&cold));
        // A structural edit misses.
        let mut edited = Circuit::new(2);
        edited.h(0).t(0).cx(0, 1).h(1);
        let third = sim.plan(&edited).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        let stats = sim.stats().plan_cache;
        assert!(stats.hits >= 2, "stats: {stats:?}");
        assert!(stats.misses >= 2, "stats: {stats:?}");
        // run_batch shares the same cache: every circuit here is cached.
        let batch = sim.run_batch(&[c.clone(), edited.clone()]);
        for r in &batch {
            assert!(r.as_ref().unwrap().report.plan_cache_hit);
        }
    }

    /// A plan snapshot round-trips: save → load rebuilds a plan with the
    /// same structure, and executing it is bit-identical to the original.
    #[test]
    fn plan_snapshot_round_trips_bit_identically() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cfg = SuperSimConfig {
            shots: 250,
            seed: 17,
            ..SuperSimConfig::default()
        };
        let sim = SuperSim::new(cfg);
        let plan = sim.plan(&c).unwrap();
        let loaded = CutPlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(loaded.fingerprint(), plan.fingerprint());
        assert_eq!(loaded.num_cuts(), plan.num_cuts());
        assert_eq!(loaded.num_variants(), plan.num_variants());
        assert_eq!(loaded.strategy(), plan.strategy());
        let executor = sim.executor();
        let original = executor.run(&plan).unwrap();
        let replayed = executor.run(&loaded).unwrap();
        assert!(
            replayed.bit_identical_to(&original),
            "loaded plan must execute bit-identically"
        );
        // The snapshot also round-trips textually (stable format).
        assert_eq!(loaded.to_text(), plan.to_text());
        // Manual strategies render and parse too.
        let manual = CutPlan::build(
            &c,
            cutkit::CutStrategy::Manual(vec![cutkit::CutPoint {
                qubit: 1,
                after_op: 2,
            }]),
        )
        .unwrap();
        let manual_loaded = CutPlan::from_text(&manual.to_text()).unwrap();
        assert_eq!(manual_loaded.strategy(), manual.strategy());
        assert_eq!(manual_loaded.fingerprint(), manual.fingerprint());
    }

    /// Evaluation failures in a batch stay per-circuit: the failing
    /// circuit reports the same error an independent run would, and the
    /// other circuits' results are untouched.
    #[test]
    fn batch_isolates_per_circuit_failures() {
        let mut fine = Circuit::new(2);
        fine.h(0).t(0).cx(0, 1);
        // Uncut non-Clifford circuit wider than the statevector backend
        // allows: evaluation fails with FragmentTooWide.
        let mut infeasible = Circuit::new(svsim::MAX_QUBITS + 1);
        infeasible.t(0);
        let cfg = SuperSimConfig {
            cut_strategy: CutStrategy::None,
            shots: 100,
            seed: 2,
            ..SuperSimConfig::default()
        };
        let sim = SuperSim::new(cfg);
        let results = sim.run_batch(&[fine.clone(), infeasible.clone()]);
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok(), "feasible circuit must run");
        let standalone = sim.run(&infeasible).unwrap_err();
        // Batch errors carry a Job context layer; the root failure is the
        // same error the standalone run reports.
        let batch_err = results[1].as_ref().unwrap_err();
        match batch_err {
            SuperSimError::Job { job, .. } => assert_eq!(*job, 1),
            other => panic!("batch error missing job context: {other:?}"),
        }
        match (batch_err.root(), standalone.root()) {
            (
                SuperSimError::Eval(cutkit::EvalError::FragmentTooWide(a)),
                SuperSimError::Eval(cutkit::EvalError::FragmentTooWide(b)),
            ) => assert_eq!(a, b),
            other => panic!("unexpected error pair {other:?}"),
        }
        // The feasible circuit's batch result matches its standalone run.
        let solo = sim.run(&fine).unwrap();
        let batch_fine = results[0].as_ref().unwrap();
        for (a, b) in solo.marginals.iter().zip(&batch_fine.marginals) {
            assert!(a[0].to_bits() == b[0].to_bits() && a[1].to_bits() == b[1].to_bits());
        }
    }
}
