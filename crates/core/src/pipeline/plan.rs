//! The plan stage: cut placement and reusable execution structure.
//!
//! A [`CutPlan`] captures everything about a pipeline run that depends
//! only on the circuit's *cut structure* — the cut placement, the
//! fragment decomposition, the enumerated tomography variants with their
//! extraction plans ([`cutkit::FragmentEvalPlan`]), and the recombination
//! scatter plans — and nothing that depends on execution parameters
//! (seed, shot budget, thread count).
//!
//! That split is what makes parameterized sweeps cheap: CAFQA/VQE-style
//! workloads and fragment tomography re-run the **same cut structure**
//! with different seeds and shot budgets, so [`SuperSim::plan`] runs the
//! cutter once and an [`Executor`] replays the plan for every point
//! instead of re-cutting per call.
//!
//! [`SuperSim::plan`]: crate::SuperSim::plan
//! [`Executor`]: crate::Executor

use cutkit::{
    cut_circuit, CutBudgetError, CutCircuit, CutPoint, CutStrategy, Fragment, FragmentEvalPlan,
};
use qcir::text::ParseCircuitError;
use qcir::{Circuit, IndexPlan};
use std::fmt;
use std::time::{Duration, Instant};

/// A reusable execution plan: cut placement + fragment structure +
/// variant enumeration + recombination scatter plans, built once by
/// [`SuperSim::plan`](crate::SuperSim::plan) and executed many times by
/// an [`Executor`](crate::Executor).
#[derive(Clone, Debug)]
pub struct CutPlan {
    pub(crate) cut: CutCircuit,
    /// Per-fragment evaluation plans (variants + extraction tables).
    pub(crate) eval_plans: Vec<FragmentEvalPlan>,
    /// Per-fragment circuit-output scatter plans for joint reconstruction
    /// and strong simulation.
    pub(crate) output_plans: Vec<IndexPlan>,
    pub(crate) num_variants: usize,
    pub(crate) clifford_fragments: usize,
    /// Wall time of the cutting + planning stage (reported once per run
    /// via [`RunReport::cut_time`](crate::RunReport::cut_time); sweeps
    /// amortize it over every point).
    pub(crate) cut_time: Duration,
    /// Structural fingerprint of the source circuit
    /// ([`Circuit::fingerprint`]) — carried into batch diagnostics so a
    /// failing job identifies its circuit without holding it.
    pub(crate) fingerprint: u64,
    /// The source circuit and strategy the plan was built from — what
    /// [`CutPlan::to_text`] snapshots so a loaded plan can be rebuilt
    /// deterministically.
    pub(crate) source: Circuit,
    pub(crate) strategy: CutStrategy,
}

/// The resource footprint of executing a [`CutPlan`] once, derived purely
/// from the plan structure — the quantities admission control budgets
/// against before a job is enqueued.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PlanCost {
    /// Number of cuts `k`.
    pub num_cuts: usize,
    /// Total tomography variants evaluated across all fragments.
    pub num_variants: usize,
    /// Estimated size of the `4^k` recombination assignment sweep. This
    /// is an **upper bound**, not a prediction: the sparse contraction
    /// prunes identically-zero Pauli assignments entirely outside this
    /// estimate (for stabilizer-heavy circuits the realized visit count
    /// can be orders of magnitude lower), and an error budget discounts
    /// it only by the uniform-weight model of
    /// [`PlanCost::with_error_budget`]. Compare against the realized
    /// [`RunReport::visited_assignments`](crate::RunReport::visited_assignments)
    /// — the post-truncation count — when judging like with like.
    pub sweep_assignments: u64,
    /// Bytes of dense per-fragment accumulators held live during
    /// evaluation: `Σ_f variants_f × 4^{cuts_f} × 8`.
    pub accumulator_bytes: u64,
}

impl PlanCost {
    /// Discounts [`PlanCost::sweep_assignments`] by a recombination error
    /// budget, under a uniform-weight model: a budget of `b` on a
    /// unit-mass sweep can truncate up to a `b` fraction of the
    /// assignments, so the estimate scales by `1 − min(b, 1)` (never
    /// below one assignment for a nonempty sweep). A zero budget returns
    /// the cost unchanged. Admission control applies this before judging
    /// a job, so budgeted jobs are not rejected on the exact sweep size.
    pub fn with_error_budget(self, budget: f64) -> PlanCost {
        if budget <= 0.0 || !budget.is_finite() {
            return self;
        }
        let scaled = (self.sweep_assignments as f64 * (1.0 - budget.min(1.0))).ceil() as u64;
        PlanCost {
            sweep_assignments: scaled.max(1),
            ..self
        }
    }
}

impl CutPlan {
    /// Cuts `circuit` with `strategy` and precomputes the reusable
    /// execution structure.
    ///
    /// # Errors
    ///
    /// Returns [`CutBudgetError`] when the cutter cannot respect the cut
    /// budget.
    pub fn build(circuit: &Circuit, strategy: CutStrategy) -> Result<CutPlan, CutBudgetError> {
        let t0 = Instant::now();
        let cut = cut_circuit(circuit, strategy.clone())?;
        let eval_plans: Vec<FragmentEvalPlan> =
            cut.fragments.iter().map(FragmentEvalPlan::new).collect();
        let output_plans: Vec<IndexPlan> = cut
            .fragments
            .iter()
            .map(|f| {
                let globals: Vec<usize> = f.circuit_outputs.iter().map(|&(_, g)| g).collect();
                IndexPlan::new(&globals, cut.original_qubits)
            })
            .collect();
        let num_variants = eval_plans.iter().map(FragmentEvalPlan::num_variants).sum();
        let clifford_fragments = cut.fragments.iter().filter(|f| f.is_clifford).count();
        Ok(CutPlan {
            cut,
            eval_plans,
            output_plans,
            num_variants,
            clifford_fragments,
            cut_time: t0.elapsed(),
            fingerprint: circuit.fingerprint(),
            source: circuit.clone(),
            strategy,
        })
    }

    /// Structural fingerprint of the source circuit
    /// ([`Circuit::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The resource footprint of one execution of this plan — what
    /// admission control budgets against (see
    /// [`AdmissionPolicy`](crate::AdmissionPolicy)).
    pub fn cost(&self) -> PlanCost {
        let k = self.cut.num_cuts as u32;
        // 4^k, saturating: k is already capped far below 32 by the cut
        // budget, but admission must not overflow on adversarial plans.
        let sweep_assignments = 1u64.checked_shl(2 * k).unwrap_or(u64::MAX);
        let accumulator_bytes = self
            .eval_plans
            .iter()
            .map(|p| (p.num_variants() as u64).saturating_mul(p.dim() as u64))
            .fold(0u64, u64::saturating_add)
            .saturating_mul(8);
        PlanCost {
            num_cuts: self.cut.num_cuts,
            num_variants: self.num_variants,
            sweep_assignments,
            accumulator_bytes,
        }
    }

    /// The fragments of the cut circuit, in deterministic discovery order.
    pub fn fragments(&self) -> &[Fragment] {
        &self.cut.fragments
    }

    /// Number of fragments.
    pub fn num_fragments(&self) -> usize {
        self.cut.fragments.len()
    }

    /// Number of Clifford fragments (stabilizer-simulable).
    pub fn clifford_fragments(&self) -> usize {
        self.clifford_fragments
    }

    /// Number of cuts (`k` in the `4^k` reconstruction bound).
    pub fn num_cuts(&self) -> usize {
        self.cut.num_cuts
    }

    /// Total fragment variants one execution of this plan runs.
    pub fn num_variants(&self) -> usize {
        self.num_variants
    }

    /// Width of the original circuit.
    pub fn original_qubits(&self) -> usize {
        self.cut.original_qubits
    }

    /// Wall time the cutter + planner took to build this plan.
    pub fn cut_time(&self) -> Duration {
        self.cut_time
    }

    /// The source circuit this plan was built from.
    pub fn source(&self) -> &Circuit {
        &self.source
    }

    /// The cut strategy this plan was built with.
    pub fn strategy(&self) -> &CutStrategy {
        &self.strategy
    }

    /// Serializes the plan to a text snapshot: a version header, the cut
    /// strategy, and the source circuit in the [`qcir::text`] format.
    ///
    /// The snapshot stores the plan's *inputs*, not its derived tables:
    /// planning is deterministic, so [`CutPlan::from_text`] rebuilds the
    /// identical plan (same fragments, variants, and scatter plans), and
    /// executing a loaded plan is **bit-identical** to executing the
    /// original. This keeps snapshots small, diffable, and immune to
    /// internal-representation drift across versions of the planner.
    pub fn to_text(&self) -> String {
        let mut out = String::from("supersim-plan v1\n");
        out.push_str(&strategy_line(&self.strategy));
        out.push('\n');
        out.push_str(&qcir::text::to_text(&self.source));
        out
    }

    /// Loads a plan from a [`CutPlan::to_text`] snapshot by parsing the
    /// strategy and circuit and rebuilding deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`PlanLoadError`] when the header or strategy line is
    /// malformed, the circuit text fails to parse, or rebuilding exceeds
    /// the cut budget (possible only if the snapshot was edited).
    pub fn from_text(src: &str) -> Result<CutPlan, PlanLoadError> {
        let mut lines = src.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != "supersim-plan v1" {
            return Err(PlanLoadError::Format {
                line: 1,
                message: format!("expected header `supersim-plan v1`, got `{header}`"),
            });
        }
        let strategy = parse_strategy_line(lines.next().unwrap_or(""))?;
        let rest: String = lines.collect::<Vec<_>>().join("\n");
        let circuit = qcir::text::from_text(&rest).map_err(PlanLoadError::Circuit)?;
        CutPlan::build(&circuit, strategy).map_err(PlanLoadError::Cut)
    }
}

/// Renders a [`CutStrategy`] for the plan snapshot (`strategy none`,
/// `strategy isolate <max_cuts>`, or `strategy manual <q>:<after_op>...`).
fn strategy_line(strategy: &CutStrategy) -> String {
    match strategy {
        CutStrategy::None => "strategy none".to_string(),
        CutStrategy::IsolateNonClifford { max_cuts } => format!("strategy isolate {max_cuts}"),
        CutStrategy::Manual(points) => {
            let mut out = String::from("strategy manual");
            for p in points {
                out.push_str(&format!(" {}:{}", p.qubit, p.after_op));
            }
            out
        }
    }
}

fn parse_strategy_line(line: &str) -> Result<CutStrategy, PlanLoadError> {
    let err = |message: String| PlanLoadError::Format { line: 2, message };
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("strategy") {
        return Err(err(format!("expected `strategy ...`, got `{line}`")));
    }
    match tokens.next() {
        Some("none") => Ok(CutStrategy::None),
        Some("isolate") => {
            let max_cuts = tokens
                .next()
                .ok_or_else(|| err("`strategy isolate` needs a max-cuts bound".into()))?
                .parse::<usize>()
                .map_err(|e| err(format!("bad max-cuts bound: {e}")))?;
            Ok(CutStrategy::IsolateNonClifford { max_cuts })
        }
        Some("manual") => {
            let mut points = Vec::new();
            for tok in tokens {
                let (q, op) = tok
                    .split_once(':')
                    .ok_or_else(|| err(format!("bad cut point `{tok}` (want `qubit:after_op`)")))?;
                points.push(CutPoint {
                    qubit: q
                        .parse()
                        .map_err(|e| err(format!("bad cut-point qubit `{q}`: {e}")))?,
                    after_op: op
                        .parse()
                        .map_err(|e| err(format!("bad cut-point op index `{op}`: {e}")))?,
                });
            }
            Ok(CutStrategy::Manual(points))
        }
        other => Err(err(format!("unknown strategy `{other:?}`"))),
    }
}

/// Error from [`CutPlan::from_text`].
#[derive(Debug)]
pub enum PlanLoadError {
    /// The snapshot's header or strategy line is malformed.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The embedded circuit text failed to parse.
    Circuit(ParseCircuitError),
    /// Rebuilding the plan exceeded the cut budget (possible only when a
    /// snapshot is edited to a different circuit or strategy).
    Cut(CutBudgetError),
}

impl fmt::Display for PlanLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanLoadError::Format { line, message } => {
                write!(f, "plan snapshot line {line}: {message}")
            }
            PlanLoadError::Circuit(e) => write!(f, "plan snapshot circuit: {e}"),
            PlanLoadError::Cut(e) => write!(f, "plan snapshot rebuild: {e}"),
        }
    }
}

impl std::error::Error for PlanLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanLoadError::Format { .. } => None,
            PlanLoadError::Circuit(e) => Some(e),
            PlanLoadError::Cut(e) => Some(e),
        }
    }
}
