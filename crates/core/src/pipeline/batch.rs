//! The batch stage: one shared worker pool spanning all circuits and all
//! pipeline stages, under a supervision layer.
//!
//! [`execute_jobs`] drives a set of (plan, params) jobs — the backend of
//! [`SuperSim::run_batch`](crate::SuperSim::run_batch) (many circuits),
//! [`Executor::run_sweep`](crate::Executor::run_sweep) (one plan, many
//! parameter points), and [`Executor::run_with`](crate::Executor::run_with)
//! (a single supervised job) — through a dependency-driven task queue:
//!
//! * every job's evaluation decomposes into the same fixed (fragment ×
//!   variant) chunks a standalone run uses
//!   ([`cutkit::evaluate_planned_chunk`]); all jobs' chunks go into one
//!   FIFO queue, so workers drain whatever is ready regardless of which
//!   circuit it belongs to;
//! * when a job's **last** evaluation chunk lands, the finishing worker
//!   folds its chunks in chunk order ([`cutkit::merge_planned_chunks`])
//!   and enqueues that job's per-fragment MLFT tasks — no global stage
//!   barrier, so one slow circuit cannot hold every other circuit's MLFT
//!   and recombination hostage;
//! * when a job's last MLFT task lands, its `mlft_moved` folds in fragment
//!   order and a single recombination task is enqueued (recombination is
//!   bit-identical for any thread count, so the batch contracts each job
//!   with one thread and takes its parallelism from running many jobs at
//!   once).
//!
//! # Supervision
//!
//! Before anything is enqueued, every job's [`PlanCost`] is judged by the
//! configured [`AdmissionPolicy`](crate::AdmissionPolicy): rejected jobs
//! record [`SuperSimError::Rejected`] without running, and sequentialized
//! jobs run alone (with the full pool) after the pooled phase. Each
//! admitted job carries a [`Supervisor`] — job index, cancel token,
//! per-job/batch deadlines, fault-injection plan — consulted at every
//! chunk/fragment boundary. Every task body runs under `catch_unwind`, so
//! a panic (including injected ones) becomes that job's
//! [`SuperSimError::Panicked`] while the pool, the other jobs, and their
//! bit-identity all survive; mutexes a panicking task may have poisoned
//! are recovered, never unwrapped.
//!
//! # Determinism
//!
//! The work-item decomposition is a pure function of each job (never of
//! the worker count or schedule), and every float fold happens in a fixed
//! order — chunks in chunk order, fragments in fragment order, jobs
//! independent — so each job's output is **bit-identical to an
//! independent sequential [`SuperSim::run`](crate::SuperSim::run)** with
//! the same parameters, for every pool size. Per-job RNG streams are
//! derived from the job's own seed exactly as single runs derive them,
//! which isolates the streams of different circuits in a batch.
//!
//! # Errors
//!
//! Failures stay per-job: a circuit whose evaluation or correction fails
//! reports the same root error an independent run would. Failed tasks
//! record into a per-job *failure floor* (a `fetch_min` over task
//! indices), and tasks above the floor are skipped while tasks at or
//! below it always run — so the reported failure is the **earliest
//! faulting task in task order on every schedule**, for every
//! deterministic fault source (evaluation errors, injected faults).

use super::cache::PlanCache;
use super::execute::{
    base_seeds, contraction_pool, eval_options, finish_run, mlft_enabled, resolved_error_budget,
    tensor_options, worker_threads, ExecParams, RunResult,
};
use super::plan::CutPlan;
use super::supervise::Admission;
use super::{fault_error, SuperSimConfig, SuperSimError};
use cutkit::{
    correct_tensor, evaluate_planned_chunk, merge_planned_chunks, planned_num_chunks, EvalChunk,
    EvalError, EvalOptions, FragmentTensor, MlftError, MlftOptions, TensorOptions,
};
use faultkit::{into_inner_or_recover, lock_or_recover, wait_or_recover, Fault, Stage, Supervisor};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One unit of batch work: a plan executed with one set of parameters.
pub(crate) struct BatchJob<'p> {
    pub plan: &'p CutPlan,
    pub params: ExecParams,
    /// The job's supervision id — the index fault plans target and error
    /// context reports. Entry points set it to the caller-visible batch
    /// position (circuit index for `run_batch`, point index for
    /// `run_sweep`), and the resilience layer keeps it stable across
    /// retries so a fault plan follows its job through every attempt.
    pub index: usize,
    /// Zero-based execution attempt (0 = first try), forwarded to the
    /// job's [`Supervisor`] so attempt-aware transient faults
    /// ([`faultkit::FaultKind::FailNTimes`]) see retries.
    pub attempt: usize,
}

/// A schedulable task. Tasks of one job are enqueued in dependency order
/// (all evaluation chunks, then — once those complete — MLFT fragments,
/// then recombination); the FIFO queue preserves within-job chunk order,
/// which the deterministic error selection relies on.
#[derive(Clone, Copy, Debug)]
enum Task {
    EvalChunk { job: usize, chunk: usize },
    Mlft { job: usize, frag: usize },
    Recombine { job: usize },
}

/// How one task of a job failed. Recorded per task slot; the job's
/// finish step converts the earliest failure (in task order) into the
/// job's [`SuperSimError`].
#[derive(Debug)]
enum TaskFailure {
    /// The evaluation kernel returned an error (including supervision
    /// interrupts and injected errors observed inside the kernel).
    Eval(EvalError),
    /// The MLFT correction returned an error.
    Mlft(MlftError),
    /// A supervision checkpoint in the scheduler itself tripped.
    Fault(Fault),
    /// The task panicked; payload rendered to a string.
    Panicked(String),
}

/// Mutable per-job state, shared across workers. Slots are written by
/// exactly one worker each (the queue hands out distinct tasks), so the
/// mutexes are uncontended handles for `&mut` access. All locks recover
/// from poisoning: a panicking task must not take down its siblings.
struct JobState<'p> {
    plan: &'p CutPlan,
    eval: EvalOptions,
    topts: TensorOptions,
    seeds: Vec<u64>,
    num_chunks: usize,
    /// This job's supervision context (job index, cancel token, deadline,
    /// fault plan) — cloned into the evaluation options and the
    /// recombination step, checked directly by the MLFT arm.
    supervisor: Supervisor,
    /// Resolved recombination error budget of this job (the params
    /// override when set, the config's budget otherwise).
    error_budget: f64,
    /// Completed evaluation chunks (`None` = not run / skipped after an
    /// earlier chunk of this job failed).
    chunks: Mutex<Vec<Option<Result<EvalChunk, TaskFailure>>>>,
    chunks_left: AtomicUsize,
    /// Lowest failing chunk index (`usize::MAX` = none). Chunks above
    /// the floor are skipped; chunks at or below it always run, so the
    /// floor only tightens toward the true minimum and the reported
    /// error is the earliest failing chunk on every schedule.
    fail_floor: AtomicUsize,
    /// Finished fragment tensors, populated when the last chunk folds;
    /// corrected in place by the per-fragment MLFT tasks.
    tensors: Vec<Mutex<Option<FragmentTensor>>>,
    /// Per-fragment MLFT outcomes, folded in fragment order at the end.
    moved: Mutex<Vec<Option<Result<f64, TaskFailure>>>>,
    mlft_left: AtomicUsize,
    /// Folded `mlft_moved` (set between the MLFT and recombine stages).
    mlft_moved: Mutex<f64>,
    started: Instant,
    /// Wall time from job start to the end of its correction stage (the
    /// batch analogue of the single-run `eval_time`; overlaps other jobs'
    /// work on the shared pool).
    eval_time: Mutex<std::time::Duration>,
    /// Guards result recording: a job completes exactly once even when a
    /// fold-step panic races its own error path.
    done: AtomicBool,
    result: Mutex<Option<Result<RunResult, SuperSimError>>>,
}

impl<'p> JobState<'p> {
    /// The supervision context is keyed by [`BatchJob::index`] — the
    /// job's position in the caller's batch, independent of which
    /// scheduling phase (pooled or solo) or retry attempt runs it.
    fn new(
        config: &SuperSimConfig,
        job: &BatchJob<'p>,
        batch_deadline_at: Option<Instant>,
    ) -> Self {
        let plan = job.plan;
        let fragments = plan.num_fragments();
        let num_chunks = planned_num_chunks(&plan.eval_plans);
        let mut supervisor = Supervisor::for_job(job.index).with_attempt(job.attempt);
        if let Some(token) = &config.cancel {
            supervisor = supervisor.with_cancel(token.clone());
        }
        if let Some(deadline) = job.params.deadline.or(config.job_deadline) {
            supervisor = supervisor.with_timeout(deadline);
        }
        if let Some(at) = batch_deadline_at {
            supervisor = supervisor.with_deadline_at(at);
        }
        if let Some(faults) = &config.faults {
            supervisor = supervisor.with_faults(Arc::clone(faults));
        }
        JobState {
            plan,
            eval: eval_options(config, job.params, supervisor.clone()),
            topts: tensor_options(config),
            seeds: base_seeds(job.params.seed, fragments),
            num_chunks,
            supervisor,
            error_budget: resolved_error_budget(config, job.params),
            chunks: Mutex::new((0..num_chunks).map(|_| None).collect()),
            chunks_left: AtomicUsize::new(num_chunks),
            fail_floor: AtomicUsize::new(usize::MAX),
            tensors: (0..fragments).map(|_| Mutex::new(None)).collect(),
            moved: Mutex::new((0..fragments).map(|_| None).collect()),
            mlft_left: AtomicUsize::new(fragments),
            mlft_moved: Mutex::new(0.0),
            started: Instant::now(),
            eval_time: Mutex::new(std::time::Duration::ZERO),
            done: AtomicBool::new(false),
            result: Mutex::new(None),
        }
    }
}

/// FIFO task queue with completion-based termination.
struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    ready: Condvar,
    jobs_done: AtomicUsize,
    total_jobs: usize,
    /// Pool size, for tasks that can borrow idle capacity (tail-job
    /// recombination).
    workers: usize,
    /// Set when a worker panics outside the per-task isolation (a
    /// scheduler bug, not a task fault): termination is completion-based
    /// (`jobs_done == total_jobs`), and such a worker's job would never
    /// complete — without this flag its siblings would wait on the
    /// condvar forever and the pool run would deadlock instead of
    /// propagating the panic.
    aborted: AtomicBool,
}

impl Queue {
    fn push(&self, new: impl IntoIterator<Item = Task>) {
        let mut q = lock_or_recover(&self.tasks);
        q.extend(new);
        drop(q);
        self.ready.notify_all();
    }

    /// Pops the next task, blocking while the queue is empty but jobs are
    /// still in flight (their completions will enqueue follow-up tasks).
    /// Returns `None` once every job has recorded its result or a sibling
    /// worker panicked (the panic then propagates from the scope join).
    fn pop(&self) -> Option<Task> {
        let mut q = lock_or_recover(&self.tasks);
        loop {
            if self.aborted.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if self.jobs_done.load(Ordering::Acquire) >= self.total_jobs {
                return None;
            }
            q = wait_or_recover(&self.ready, q);
        }
    }

    /// Marks one job complete; wakes idle workers so they can re-check the
    /// termination condition.
    fn job_done(&self) {
        let done = self.jobs_done.fetch_add(1, Ordering::AcqRel) + 1;
        if done >= self.total_jobs {
            self.wake_all();
        }
    }

    /// Flags the pool as dead and wakes every waiter (worker-panic path).
    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.wake_all();
    }

    fn wake_all(&self) {
        // Taking the lock orders the flag/counter store before any
        // waiter's re-check; recover from poisoning — this runs on panic
        // paths, where an unwrap would turn one contained task panic
        // into a pool-wide abort.
        let _guard = lock_or_recover(&self.tasks);
        self.ready.notify_all();
    }
}

/// Aborts the queue when dropped during a panic, so sibling workers wake
/// and exit instead of waiting for a job that will never complete.
struct AbortOnPanic<'q>(&'q Queue);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// Executes every job under the supervision layer (see the module docs)
/// and returns per-job results in job order. Errors are **not** wrapped
/// in [`SuperSimError::Job`] here — the public batch/sweep entry points
/// attach that context with their own job indexing.
pub(crate) fn execute_jobs(
    config: &SuperSimConfig,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<RunResult, SuperSimError>> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let batch_deadline_at = config.batch_deadline.map(|d| Instant::now() + d);
    // Admission control: judge every job before anything is enqueued.
    let mut results: Vec<Option<Result<RunResult, SuperSimError>>> =
        jobs.iter().map(|_| None).collect();
    let mut pooled: Vec<usize> = Vec::with_capacity(jobs.len());
    let mut solo: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        // Admission judges the budget-discounted cost: a job whose error
        // budget will truncate most of its sweep should not be rejected
        // (or sequentialized) on the exact sweep's assignment count.
        let cost = job
            .plan
            .cost()
            .with_error_budget(resolved_error_budget(config, job.params));
        match config.admission.admit(&cost) {
            Admission::Admit => pooled.push(i),
            Admission::Solo => solo.push(i),
            Admission::Reject(e) => results[i] = Some(Err(SuperSimError::Rejected(e))),
        }
    }
    // Pooled phase: every admitted job shares one pool; then the
    // sequentialized jobs run one at a time, each with the pool to
    // itself. Both phases use the identical task decomposition, so
    // results are bit-identical whichever phase runs a job.
    run_scheduled(config, jobs, &pooled, batch_deadline_at, &mut results);
    for &i in &solo {
        run_scheduled(config, jobs, &[i], batch_deadline_at, &mut results);
    }
    results
        .into_iter()
        .map(|r| r.expect("every job records a result"))
        .collect()
}

/// Runs the jobs selected by `subset` (indices into `jobs`) on one shared
/// pool and records their results. Supervisors keep the jobs' original
/// batch indices, so fault plans and error context are phase-independent.
fn run_scheduled(
    config: &SuperSimConfig,
    jobs: &[BatchJob<'_>],
    subset: &[usize],
    batch_deadline_at: Option<Instant>,
    results: &mut [Option<Result<RunResult, SuperSimError>>],
) {
    if subset.is_empty() {
        return;
    }
    let states: Vec<JobState<'_>> = subset
        .iter()
        .map(|&i| JobState::new(config, &jobs[i], batch_deadline_at))
        .collect();
    let workers = worker_threads(config)
        .min(total_tasks_bound(&states))
        .max(1);
    let queue = Queue {
        tasks: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        jobs_done: AtomicUsize::new(0),
        total_jobs: states.len(),
        workers,
        aborted: AtomicBool::new(false),
    };
    // Seed the queue with every job's evaluation chunks, job-major: the
    // FIFO drain then keeps each job's chunks in chunk order.
    queue.push(
        states.iter().enumerate().flat_map(|(j, s)| {
            (0..s.num_chunks).map(move |c| Task::EvalChunk { job: j, chunk: c })
        }),
    );
    if workers <= 1 {
        // Sequential drain on the current thread — the identical task
        // structure, so results match the pooled paths bit for bit.
        while let Some(task) = queue.pop() {
            run_task(config, &states, &queue, task);
        }
    } else {
        // The persistent runtime pool replaces the per-call thread scope:
        // workers (including the calling thread) drain the same queue, and
        // consecutive batches reuse the live threads. A panic escaping the
        // drain loop trips `AbortOnPanic` (the pool unwinds the worker's
        // ticket, so `std::thread::panicking()` is observed) and is
        // re-raised by `run` after every ticket finishes — the same
        // propagation the scope join used to provide.
        runtime::Pool::global().run(workers, |_| {
            let _abort_guard = AbortOnPanic(&queue);
            while let Some(task) = queue.pop() {
                run_task(config, &states, &queue, task);
            }
        });
    }
    for (&i, s) in subset.iter().zip(states) {
        results[i] =
            Some(into_inner_or_recover(s.result).expect("every scheduled job records a result"));
    }
}

/// A loose upper bound on useful workers (no point spawning more threads
/// than initially queued evaluation chunks across all jobs).
fn total_tasks_bound(states: &[JobState<'_>]) -> usize {
    states.iter().map(|s| s.num_chunks).sum::<usize>().max(1)
}

/// Records a job's result and marks it complete, exactly once: losers of
/// the race (e.g. a fold-step panic whose error path already completed
/// the job) are dropped.
fn complete(s: &JobState<'_>, queue: &Queue, result: Result<RunResult, SuperSimError>) {
    if !s.done.swap(true, Ordering::AcqRel) {
        *lock_or_recover(&s.result) = Some(result);
        queue.job_done();
    }
}

/// Renders a caught panic payload for [`SuperSimError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts the earliest task failure of a stage into the job's typed
/// error, stamping elapsed time on interrupts and stage/task context on
/// panics and injections.
fn task_error(
    stage: Stage,
    task: Option<usize>,
    failure: TaskFailure,
    supervisor: &Supervisor,
) -> SuperSimError {
    match failure {
        TaskFailure::Eval(EvalError::Interrupted(i)) => {
            fault_error(stage, Fault::Interrupted(i), supervisor)
        }
        TaskFailure::Eval(EvalError::Injected(site)) => {
            fault_error(stage, Fault::Injected(site), supervisor)
        }
        TaskFailure::Eval(e) => SuperSimError::Eval(e),
        TaskFailure::Mlft(e) => SuperSimError::Mlft(e),
        TaskFailure::Fault(fault) => fault_error(stage, fault, supervisor),
        TaskFailure::Panicked(payload) => SuperSimError::Panicked {
            stage,
            task,
            payload,
        },
    }
}

fn run_task(config: &SuperSimConfig, states: &[JobState<'_>], queue: &Queue, task: Task) {
    match task {
        Task::EvalChunk { job, chunk } => {
            let s = &states[job];
            // Skip only chunks *above* the failure floor: chunks below
            // the earliest failure always run, so the reported error is
            // schedule-independent.
            if chunk <= s.fail_floor.load(Ordering::Relaxed) {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    evaluate_planned_chunk(
                        &s.plan.cut.fragments,
                        &s.plan.eval_plans,
                        &s.eval,
                        &s.seeds,
                        chunk,
                    )
                }));
                let r: Result<EvalChunk, TaskFailure> = match outcome {
                    Ok(Ok(c)) => Ok(c),
                    Ok(Err(e)) => Err(TaskFailure::Eval(e)),
                    Err(payload) => Err(TaskFailure::Panicked(panic_message(payload.as_ref()))),
                };
                if r.is_err() {
                    s.fail_floor.fetch_min(chunk, Ordering::Relaxed);
                }
                lock_or_recover(&s.chunks)[chunk] = Some(r);
            }
            if s.chunks_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Err(payload) =
                    catch_unwind(AssertUnwindSafe(|| finish_eval(config, s, queue, job)))
                {
                    complete(
                        s,
                        queue,
                        Err(SuperSimError::Panicked {
                            stage: Stage::Eval,
                            task: None,
                            payload: panic_message(payload.as_ref()),
                        }),
                    );
                }
            }
        }
        Task::Mlft { job, frag } => {
            let s = &states[job];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                s.supervisor
                    .check(Stage::Mlft, frag)
                    .map_err(TaskFailure::Fault)?;
                let mut slot = lock_or_recover(&s.tensors[frag]);
                let tensor = slot.as_mut().expect("MLFT before tensors finalized");
                correct_tensor(tensor, &MlftOptions::default()).map_err(TaskFailure::Mlft)
            }));
            let r: Result<f64, TaskFailure> = match outcome {
                Ok(r) => r,
                Err(payload) => Err(TaskFailure::Panicked(panic_message(payload.as_ref()))),
            };
            lock_or_recover(&s.moved)[frag] = Some(r);
            if s.mlft_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| finish_mlft(s, queue, job)))
                {
                    complete(
                        s,
                        queue,
                        Err(SuperSimError::Panicked {
                            stage: Stage::Mlft,
                            task: None,
                            payload: panic_message(payload.as_ref()),
                        }),
                    );
                }
            }
        }
        Task::Recombine { job } => {
            let s = &states[job];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let tensors: Vec<FragmentTensor> = s
                    .tensors
                    .iter()
                    .map(|m| {
                        lock_or_recover(m)
                            .take()
                            .expect("recombine before tensors finalized")
                    })
                    .collect();
                let mlft_moved = *lock_or_recover(&s.mlft_moved);
                let eval_time = *lock_or_recover(&s.eval_time);
                // Recombination is bit-identical for any thread count, so
                // the contraction may soak up idle pool capacity when few
                // jobs remain (a tail sweep point on a large 4^k plan
                // would otherwise contract single-threaded while workers
                // idle) — purely a scheduling choice, never a numerical
                // one. Single-job calls (run_with, solo phase) use the
                // configured contraction pool like a standalone run.
                let rec_threads = if queue.total_jobs == 1 {
                    contraction_pool(config)
                } else {
                    let remaining = queue
                        .total_jobs
                        .saturating_sub(queue.jobs_done.load(Ordering::Acquire))
                        .max(1);
                    (queue.workers / remaining).max(1)
                };
                finish_run(
                    config,
                    s.plan,
                    tensors,
                    mlft_moved,
                    eval_time,
                    rec_threads,
                    s.error_budget,
                    &s.supervisor,
                )
            }));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => Err(SuperSimError::Panicked {
                    stage: Stage::Recombine,
                    task: None,
                    payload: panic_message(payload.as_ref()),
                }),
            };
            complete(s, queue, result);
        }
    }
}

/// Runs when a job's last evaluation chunk lands: folds the chunks in
/// chunk order into fragment tensors, then opens the job's next stage.
fn finish_eval(config: &SuperSimConfig, s: &JobState<'_>, queue: &Queue, job: usize) {
    let slots = std::mem::take(&mut *lock_or_recover(&s.chunks));
    let mut chunks: Vec<EvalChunk> = Vec::with_capacity(slots.len());
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(chunk)) => chunks.push(chunk),
            Some(Err(failure)) => {
                // First failure in chunk order — identical to the error an
                // independent sequential run reports.
                complete(
                    s,
                    queue,
                    Err(task_error(Stage::Eval, Some(idx), failure, &s.supervisor)),
                );
                return;
            }
            // Skipped above the failure floor; the failure precedes it.
            None => {}
        }
    }
    let tensors = merge_planned_chunks(
        &s.plan.cut.fragments,
        &s.plan.eval_plans,
        &s.eval,
        &s.topts,
        chunks,
    );
    for (slot, tensor) in s.tensors.iter().zip(tensors) {
        *lock_or_recover(slot) = Some(tensor);
    }
    if mlft_enabled(config) {
        queue.push((0..s.plan.num_fragments()).map(|f| Task::Mlft { job, frag: f }));
    } else {
        *lock_or_recover(&s.eval_time) = s.started.elapsed();
        queue.push([Task::Recombine { job }]);
    }
}

/// Runs when a job's last MLFT task lands: folds `mlft_moved` in fragment
/// order (the first failing fragment's error wins, like the sequential
/// path) and enqueues recombination.
fn finish_mlft(s: &JobState<'_>, queue: &Queue, job: usize) {
    let outcomes = std::mem::take(&mut *lock_or_recover(&s.moved));
    let mut total = 0.0;
    for (frag, outcome) in outcomes.into_iter().enumerate() {
        match outcome.expect("every fragment records an MLFT outcome") {
            Ok(moved) => total += moved,
            Err(failure) => {
                complete(
                    s,
                    queue,
                    Err(task_error(Stage::Mlft, Some(frag), failure, &s.supervisor)),
                );
                return;
            }
        }
    }
    *lock_or_recover(&s.mlft_moved) = total;
    *lock_or_recover(&s.eval_time) = s.started.elapsed();
    queue.push([Task::Recombine { job }]);
}

/// Builds every circuit's plan — cache-first, then on the configured pool
/// size when rebuilding pays: plans are independent and placed by index,
/// so the output is identical to the sequential loop for any worker
/// count. Parallelizing this matters because cutting *is* the dominant
/// stage for cut-bound batches (the `batch_sweep` workload) — a serial
/// planning pass would serialize exactly the cost the batch front-end
/// exists to amortize. The `bool` in each result reports whether the
/// plan came from the cache (planning is deterministic, so hits are
/// bit-identical in effect to rebuilds).
pub(crate) fn build_plans(
    config: &SuperSimConfig,
    cache: &PlanCache,
    circuits: &[qcir::Circuit],
) -> Vec<(Result<Arc<CutPlan>, SuperSimError>, bool)> {
    let strategy = &config.cut_strategy;
    let build = |c: &qcir::Circuit| {
        CutPlan::build(c, strategy.clone())
            .map(Arc::new)
            .map_err(SuperSimError::Cut)
    };
    let mut out: Vec<Option<(Result<Arc<CutPlan>, SuperSimError>, bool)>> = circuits
        .iter()
        .map(|c| cache.get(c, strategy).map(|p| (Ok(p), true)))
        .collect();
    let missing: Vec<usize> = (0..circuits.len()).filter(|&i| out[i].is_none()).collect();
    let workers = worker_threads(config).min(missing.len()).max(1);
    if workers <= 1 {
        for &i in &missing {
            out[i] = Some((build(&circuits[i]), false));
        }
    } else {
        let slots: Vec<Mutex<Option<Result<Arc<CutPlan>, SuperSimError>>>> =
            missing.iter().map(|_| Mutex::new(None)).collect();
        let queue = runtime::CounterQueue::new(missing.len());
        runtime::Pool::global().run_queue(workers, &queue, |_, j| {
            *lock_or_recover(&slots[j]) = Some(build(&circuits[missing[j]]));
        });
        for (&i, slot) in missing.iter().zip(slots) {
            let built = into_inner_or_recover(slot).expect("every circuit gets planned");
            out[i] = Some((built, false));
        }
    }
    // Publish the fresh builds in circuit order (duplicate circuits in
    // one batch each build once here and converge on a single entry).
    for &i in &missing {
        if let Some((Ok(plan), _)) = &out[i] {
            cache.insert(&circuits[i], strategy, plan);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every circuit gets a plan outcome"))
        .collect()
}

/// Plans and executes a batch of circuits (the backend of
/// [`SuperSim::run_batch`](crate::SuperSim::run_batch)): each circuit is
/// cut and planned up front (a cut-budget failure stays per-circuit),
/// then every successfully planned circuit executes on the shared pool.
/// Every per-circuit error — planning or execution — is wrapped in
/// [`SuperSimError::Job`] with the circuit's batch index and fingerprint.
pub(crate) fn plan_and_run_batch(
    config: &SuperSimConfig,
    cache: &PlanCache,
    circuits: &[qcir::Circuit],
) -> Vec<Result<RunResult, SuperSimError>> {
    let plans = build_plans(config, cache, circuits);
    let params = ExecParams::from_config(config);
    let jobs: Vec<BatchJob<'_>> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, (p, _))| {
            p.as_ref().ok().map(|plan| BatchJob {
                plan: plan.as_ref(),
                params,
                // Supervision id = circuit index, so fault plans target
                // batch positions even when an earlier circuit failed
                // planning and was never enqueued.
                index: i,
                attempt: 0,
            })
        })
        .collect();
    let mut executed = execute_jobs(config, &jobs).into_iter();
    plans
        .iter()
        .zip(circuits)
        .enumerate()
        .map(|(i, ((p, cache_hit), circuit))| {
            let result = match p {
                Ok(_) => executed
                    .next()
                    .expect("one result per planned job")
                    .map(|mut r| {
                        r.report.plan_cache_hit = *cache_hit;
                        r
                    }),
                Err(SuperSimError::Cut(e)) => Err(SuperSimError::Cut(e.clone())),
                Err(_) => unreachable!("planning only produces cut errors"),
            };
            result.map_err(|e| SuperSimError::Job {
                job: i,
                fingerprint: circuit.fingerprint(),
                source: Box::new(e),
            })
        })
        .collect()
}
