//! The batch stage: one shared worker pool spanning all circuits and all
//! pipeline stages.
//!
//! [`execute_jobs`] drives a set of (plan, params) jobs — the backend of
//! both [`SuperSim::run_batch`](crate::SuperSim::run_batch) (many
//! circuits) and [`Executor::run_sweep`](crate::Executor::run_sweep)
//! (one plan, many parameter points) — through a dependency-driven task
//! queue:
//!
//! * every job's evaluation decomposes into the same fixed (fragment ×
//!   variant) chunks a standalone run uses
//!   ([`cutkit::evaluate_planned_chunk`]); all jobs' chunks go into one
//!   FIFO queue, so workers drain whatever is ready regardless of which
//!   circuit it belongs to;
//! * when a job's **last** evaluation chunk lands, the finishing worker
//!   folds its chunks in chunk order ([`cutkit::merge_planned_chunks`])
//!   and enqueues that job's per-fragment MLFT tasks — no global stage
//!   barrier, so one slow circuit cannot hold every other circuit's MLFT
//!   and recombination hostage;
//! * when a job's last MLFT task lands, its `mlft_moved` folds in fragment
//!   order and a single recombination task is enqueued (recombination is
//!   bit-identical for any thread count, so the batch contracts each job
//!   with one thread and takes its parallelism from running many jobs at
//!   once).
//!
//! # Determinism
//!
//! The work-item decomposition is a pure function of each job (never of
//! the worker count or schedule), and every float fold happens in a fixed
//! order — chunks in chunk order, fragments in fragment order, jobs
//! independent — so each job's output is **bit-identical to an
//! independent sequential [`SuperSim::run`](crate::SuperSim::run)** with
//! the same parameters, for every pool size. Per-job RNG streams are
//! derived from the job's own seed exactly as single runs derive them,
//! which isolates the streams of different circuits in a batch.
//!
//! # Errors
//!
//! Failures stay per-job: a circuit whose evaluation or correction fails
//! reports the same error an independent run would (the earliest failing
//! chunk in chunk order / fragment in fragment order) without disturbing
//! the other jobs.

use super::execute::{
    base_seeds, eval_options, finish_run, mlft_enabled, tensor_options, worker_threads, ExecParams,
    RunResult,
};
use super::plan::CutPlan;
use super::{SuperSimConfig, SuperSimError};
use cutkit::{
    correct_tensor, evaluate_planned_chunk, merge_planned_chunks, planned_num_chunks, EvalChunk,
    EvalError, EvalOptions, FragmentTensor, MlftError, MlftOptions, TensorOptions,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One unit of batch work: a plan executed with one set of parameters.
pub(crate) struct BatchJob<'p> {
    pub plan: &'p CutPlan,
    pub params: ExecParams,
}

/// A schedulable task. Tasks of one job are enqueued in dependency order
/// (all evaluation chunks, then — once those complete — MLFT fragments,
/// then recombination); the FIFO queue preserves within-job chunk order,
/// which the deterministic error selection relies on.
#[derive(Clone, Copy, Debug)]
enum Task {
    EvalChunk { job: usize, chunk: usize },
    Mlft { job: usize, frag: usize },
    Recombine { job: usize },
}

/// Mutable per-job state, shared across workers. Slots are written by
/// exactly one worker each (the queue hands out distinct tasks), so the
/// mutexes are uncontended handles for `&mut` access.
struct JobState<'p> {
    plan: &'p CutPlan,
    eval: EvalOptions,
    topts: TensorOptions,
    seeds: Vec<u64>,
    num_chunks: usize,
    /// Completed evaluation chunks (`None` = not run / skipped after an
    /// earlier chunk of this job failed).
    chunks: Mutex<Vec<Option<Result<EvalChunk, EvalError>>>>,
    chunks_left: AtomicUsize,
    /// Early-exit flag: set by the first failing chunk so later chunks of
    /// this job are skipped. Claims are FIFO in chunk order, so every
    /// chunk below the first failure has already been claimed and will
    /// record its result — the reported error is the earliest failing
    /// chunk, exactly like the sequential path.
    eval_failed: AtomicBool,
    /// Finished fragment tensors, populated when the last chunk folds;
    /// corrected in place by the per-fragment MLFT tasks.
    tensors: Vec<Mutex<Option<FragmentTensor>>>,
    /// Per-fragment MLFT outcomes, folded in fragment order at the end.
    moved: Mutex<Vec<Option<Result<f64, MlftError>>>>,
    mlft_left: AtomicUsize,
    /// Folded `mlft_moved` (set between the MLFT and recombine stages).
    mlft_moved: Mutex<f64>,
    started: Instant,
    /// Wall time from job start to the end of its correction stage (the
    /// batch analogue of the single-run `eval_time`; overlaps other jobs'
    /// work on the shared pool).
    eval_time: Mutex<std::time::Duration>,
    result: Mutex<Option<Result<RunResult, SuperSimError>>>,
}

impl<'p> JobState<'p> {
    fn new(config: &SuperSimConfig, job: &BatchJob<'p>) -> Self {
        let plan = job.plan;
        let fragments = plan.num_fragments();
        let num_chunks = planned_num_chunks(&plan.eval_plans);
        JobState {
            plan,
            eval: eval_options(config, job.params),
            topts: tensor_options(config),
            seeds: base_seeds(job.params.seed, fragments),
            num_chunks,
            chunks: Mutex::new((0..num_chunks).map(|_| None).collect()),
            chunks_left: AtomicUsize::new(num_chunks),
            eval_failed: AtomicBool::new(false),
            tensors: (0..fragments).map(|_| Mutex::new(None)).collect(),
            moved: Mutex::new(vec![None; fragments]),
            mlft_left: AtomicUsize::new(fragments),
            mlft_moved: Mutex::new(0.0),
            started: Instant::now(),
            eval_time: Mutex::new(std::time::Duration::ZERO),
            result: Mutex::new(None),
        }
    }
}

/// FIFO task queue with completion-based termination.
struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    ready: Condvar,
    jobs_done: AtomicUsize,
    total_jobs: usize,
    /// Pool size, for tasks that can borrow idle capacity (tail-job
    /// recombination).
    workers: usize,
    /// Set when a worker panics mid-task: termination is completion-based
    /// (`jobs_done == total_jobs`), and a panicked worker's job would
    /// never complete — without this flag its siblings would wait on the
    /// condvar forever and the scope join would deadlock instead of
    /// propagating the panic.
    aborted: AtomicBool,
}

impl Queue {
    fn push(&self, new: impl IntoIterator<Item = Task>) {
        let mut q = self.tasks.lock().expect("task queue poisoned");
        q.extend(new);
        drop(q);
        self.ready.notify_all();
    }

    /// Pops the next task, blocking while the queue is empty but jobs are
    /// still in flight (their completions will enqueue follow-up tasks).
    /// Returns `None` once every job has recorded its result or a sibling
    /// worker panicked (the panic then propagates from the scope join).
    fn pop(&self) -> Option<Task> {
        let mut q = self.tasks.lock().expect("task queue poisoned");
        loop {
            if self.aborted.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if self.jobs_done.load(Ordering::Acquire) >= self.total_jobs {
                return None;
            }
            q = self.ready.wait(q).expect("task queue poisoned");
        }
    }

    /// Marks one job complete; wakes idle workers so they can re-check the
    /// termination condition.
    fn job_done(&self) {
        let done = self.jobs_done.fetch_add(1, Ordering::AcqRel) + 1;
        if done >= self.total_jobs {
            self.wake_all();
        }
    }

    /// Flags the pool as dead and wakes every waiter (worker-panic path).
    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
        self.wake_all();
    }

    fn wake_all(&self) {
        // Taking the lock orders the flag/counter store before any
        // waiter's re-check; ignore poisoning — this runs on panic paths.
        let _guard = self.tasks.lock();
        self.ready.notify_all();
    }
}

/// Aborts the queue when dropped during a panic, so sibling workers wake
/// and exit instead of waiting for a job that will never complete.
struct AbortOnPanic<'q>(&'q Queue);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// Executes every job on one shared pool (see the module docs) and
/// returns per-job results in job order.
pub(crate) fn execute_jobs(
    config: &SuperSimConfig,
    jobs: &[BatchJob<'_>],
) -> Vec<Result<RunResult, SuperSimError>> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let states: Vec<JobState<'_>> = jobs.iter().map(|j| JobState::new(config, j)).collect();
    let workers = worker_threads(config)
        .min(total_tasks_bound(&states))
        .max(1);
    let queue = Queue {
        tasks: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        jobs_done: AtomicUsize::new(0),
        total_jobs: states.len(),
        workers,
        aborted: AtomicBool::new(false),
    };
    // Seed the queue with every job's evaluation chunks, job-major: the
    // FIFO drain then keeps each job's chunks in chunk order.
    queue.push(
        states.iter().enumerate().flat_map(|(j, s)| {
            (0..s.num_chunks).map(move |c| Task::EvalChunk { job: j, chunk: c })
        }),
    );
    if workers <= 1 {
        // Sequential drain on the current thread — the identical task
        // structure, so results match the pooled paths bit for bit.
        while let Some(task) = queue.pop() {
            run_task(config, &states, &queue, task);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _abort_guard = AbortOnPanic(&queue);
                    while let Some(task) = queue.pop() {
                        run_task(config, &states, &queue, task);
                    }
                });
            }
        });
    }

    states
        .into_iter()
        .map(|s| {
            s.result
                .into_inner()
                .expect("job result poisoned")
                .expect("every job records a result")
        })
        .collect()
}

/// A loose upper bound on useful workers (no point spawning more threads
/// than initially queued evaluation chunks across all jobs).
fn total_tasks_bound(states: &[JobState<'_>]) -> usize {
    states.iter().map(|s| s.num_chunks).sum::<usize>().max(1)
}

fn run_task(config: &SuperSimConfig, states: &[JobState<'_>], queue: &Queue, task: Task) {
    match task {
        Task::EvalChunk { job, chunk } => {
            let s = &states[job];
            if !s.eval_failed.load(Ordering::Relaxed) {
                let r = evaluate_planned_chunk(
                    &s.plan.cut.fragments,
                    &s.plan.eval_plans,
                    &s.eval,
                    &s.seeds,
                    chunk,
                );
                if r.is_err() {
                    s.eval_failed.store(true, Ordering::Relaxed);
                }
                s.chunks.lock().expect("chunk slots poisoned")[chunk] = Some(r);
            }
            if s.chunks_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                finish_eval(config, s, queue, job);
            }
        }
        Task::Mlft { job, frag } => {
            let s = &states[job];
            let r = {
                let mut slot = s.tensors[frag].lock().expect("tensor slot poisoned");
                let tensor = slot.as_mut().expect("MLFT before tensors finalized");
                correct_tensor(tensor, &MlftOptions::default())
            };
            s.moved.lock().expect("moved slots poisoned")[frag] = Some(r);
            if s.mlft_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                finish_mlft(s, queue, job);
            }
        }
        Task::Recombine { job } => {
            let s = &states[job];
            let tensors: Vec<FragmentTensor> = s
                .tensors
                .iter()
                .map(|m| {
                    m.lock()
                        .expect("tensor slot poisoned")
                        .take()
                        .expect("recombine before tensors finalized")
                })
                .collect();
            let mlft_moved = *s.mlft_moved.lock().expect("mlft_moved poisoned");
            let eval_time = *s.eval_time.lock().expect("eval_time poisoned");
            // Recombination is bit-identical for any thread count, so the
            // contraction may soak up idle pool capacity when few jobs
            // remain (a tail sweep point on a large 4^k plan would
            // otherwise contract single-threaded while workers idle) —
            // purely a scheduling choice, never a numerical one.
            let remaining = queue
                .total_jobs
                .saturating_sub(queue.jobs_done.load(Ordering::Acquire))
                .max(1);
            let rec_threads = (queue.workers / remaining).max(1);
            let result = finish_run(config, s.plan, tensors, mlft_moved, eval_time, rec_threads);
            *s.result.lock().expect("job result poisoned") = Some(Ok(result));
            queue.job_done();
        }
    }
}

/// Runs when a job's last evaluation chunk lands: folds the chunks in
/// chunk order into fragment tensors, then opens the job's next stage.
fn finish_eval(config: &SuperSimConfig, s: &JobState<'_>, queue: &Queue, job: usize) {
    let slots = std::mem::take(&mut *s.chunks.lock().expect("chunk slots poisoned"));
    let mut chunks: Vec<EvalChunk> = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(Ok(chunk)) => chunks.push(chunk),
            Some(Err(e)) => {
                // First error in chunk order — identical to the error an
                // independent sequential run reports.
                *s.result.lock().expect("job result poisoned") = Some(Err(SuperSimError::Eval(e)));
                queue.job_done();
                return;
            }
            // Skipped after a failure; the error precedes it in order.
            None => {}
        }
    }
    let tensors = merge_planned_chunks(
        &s.plan.cut.fragments,
        &s.plan.eval_plans,
        &s.eval,
        &s.topts,
        chunks,
    );
    for (slot, tensor) in s.tensors.iter().zip(tensors) {
        *slot.lock().expect("tensor slot poisoned") = Some(tensor);
    }
    if mlft_enabled(config) {
        queue.push((0..s.plan.num_fragments()).map(|f| Task::Mlft { job, frag: f }));
    } else {
        *s.eval_time.lock().expect("eval_time poisoned") = s.started.elapsed();
        queue.push([Task::Recombine { job }]);
    }
}

/// Runs when a job's last MLFT task lands: folds `mlft_moved` in fragment
/// order (the first failing fragment's error wins, like the sequential
/// path) and enqueues recombination.
fn finish_mlft(s: &JobState<'_>, queue: &Queue, job: usize) {
    let outcomes = std::mem::take(&mut *s.moved.lock().expect("moved slots poisoned"));
    let mut total = 0.0;
    for outcome in outcomes {
        match outcome.expect("every fragment records an MLFT outcome") {
            Ok(moved) => total += moved,
            Err(e) => {
                *s.result.lock().expect("job result poisoned") = Some(Err(SuperSimError::Mlft(e)));
                queue.job_done();
                return;
            }
        }
    }
    *s.mlft_moved.lock().expect("mlft_moved poisoned") = total;
    *s.eval_time.lock().expect("eval_time poisoned") = s.started.elapsed();
    queue.push([Task::Recombine { job }]);
}

/// Builds every circuit's plan, on the configured pool size when it pays:
/// plans are independent and placed by index, so the output is identical
/// to the sequential loop for any worker count. Parallelizing this
/// matters because cutting *is* the dominant stage for cut-bound batches
/// (the `batch_sweep` workload) — a serial planning pass would serialize
/// exactly the cost the batch front-end exists to amortize.
fn build_plans(
    config: &SuperSimConfig,
    circuits: &[qcir::Circuit],
) -> Vec<Result<CutPlan, SuperSimError>> {
    let build = |c: &qcir::Circuit| {
        CutPlan::build(c, config.cut_strategy.clone()).map_err(SuperSimError::Cut)
    };
    let workers = worker_threads(config).min(circuits.len()).max(1);
    if workers <= 1 {
        return circuits.iter().map(build).collect();
    }
    let slots: Vec<Mutex<Option<Result<CutPlan, SuperSimError>>>> =
        circuits.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= circuits.len() {
                    break;
                }
                *slots[i].lock().expect("plan slot poisoned") = Some(build(&circuits[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("plan slot poisoned")
                .expect("every circuit gets planned")
        })
        .collect()
}

/// Plans and executes a batch of circuits (the backend of
/// [`SuperSim::run_batch`](crate::SuperSim::run_batch)): each circuit is
/// cut and planned up front (a cut-budget failure stays per-circuit),
/// then every successfully planned circuit executes on the shared pool.
pub(crate) fn plan_and_run_batch(
    config: &SuperSimConfig,
    circuits: &[qcir::Circuit],
) -> Vec<Result<RunResult, SuperSimError>> {
    let plans = build_plans(config, circuits);
    let params = ExecParams::from_config(config);
    let jobs: Vec<BatchJob<'_>> = plans
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .map(|plan| BatchJob { plan, params })
        .collect();
    let mut executed = execute_jobs(config, &jobs).into_iter();
    plans
        .iter()
        .map(|p| match p {
            Ok(_) => executed.next().expect("one result per planned job"),
            Err(SuperSimError::Cut(e)) => Err(SuperSimError::Cut(e.clone())),
            Err(_) => unreachable!("planning only produces cut errors"),
        })
        .collect()
}
