//! The SuperSim pipeline: cut → evaluate → recombine.
//!
//! # Threading model
//!
//! With [`SuperSimConfig::parallel`] enabled, the two expensive stages run
//! on worker pools sized by [`SuperSimConfig::threads`] (`0` = one worker
//! per available core):
//!
//! * **Fragment evaluation** schedules every (fragment × variant) pair
//!   onto one shared pool ([`cutkit::evaluate_fragment_tensors`]) — the
//!   paper's §X "embarrassingly parallel" variant simulations, lifted
//!   above the per-fragment level so one expensive fragment cannot
//!   serialize the stage.
//! * **Recombination** splits the `4^k` cut-assignment range into
//!   fixed-size chunks contracted in parallel and merged in chunk order
//!   ([`cutkit::Reconstructor::with_threads`]).
//!
//! The MLFT correction stage rides the same pool
//! ([`cutkit::correct_tensors`]): fragments are corrected independently
//! and the `mlft_moved` diagnostic folds in fragment order.
//!
//! **Determinism-in-seed guarantee:** both stages produce bit-identical
//! results for a given [`SuperSimConfig::seed`] regardless of thread
//! count. Fragment evaluation derives one RNG stream per (fragment,
//! variant) from the seed and folds per-variant accumulators in variant
//! order; recombination's chunk decomposition and merge order are
//! independent of the worker count. `parallel: false` is therefore purely
//! a scheduling choice, never a numerical one.

use cutkit::{
    correct_tensors, cut_circuit, CutBudgetError, CutStrategy, EvalError, EvalMode, EvalOptions,
    FragmentTensor, MlftError, MlftOptions, Reconstructor, TableauEngine, TensorOptions,
};
use metrics::Distribution;
use qcir::{Bits, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of a [`SuperSim`] instance.
///
/// The defaults match the paper's protocol: 5000-shot sampled fragment
/// evaluation, MLFT correction, and both Clifford-specific optimizations
/// (§IX) enabled.
#[derive(Clone, Debug)]
pub struct SuperSimConfig {
    /// Shots per fragment variant in sampled mode.
    pub shots: usize,
    /// Machine-precision evaluation (exact fragment distributions) instead
    /// of sampling.
    pub exact: bool,
    /// Cut placement strategy.
    pub cut_strategy: CutStrategy,
    /// Apply the maximum-likelihood fragment-tomography correction to
    /// sampled fragment tensors.
    pub mlft: bool,
    /// Snap Clifford-fragment conditional Pauli expectations to
    /// `{-1, 0, +1}` (paper §IX optimization 1).
    pub clifford_snap: bool,
    /// Evaluate Clifford fragments exactly even in sampled mode (the
    /// zero-shot form of §IX optimization 1); requires supports within
    /// `exact_support_limit`.
    pub exact_clifford: bool,
    /// Skip identically-zero Pauli assignments during recombination
    /// (paper §IX optimization 2).
    pub sparse_contraction: bool,
    /// Run fragment evaluation and recombination on worker pools (see the
    /// module docs for the threading model).
    pub parallel: bool,
    /// Worker-pool size when [`SuperSimConfig::parallel`] is set
    /// (`0` = one worker per available core). Ignored when `parallel` is
    /// `false`. Results are bit-identical for every value.
    pub threads: usize,
    /// Base RNG seed (each fragment derives its own stream).
    pub seed: u64,
    /// Build the full joint distribution only when the product of fragment
    /// supports stays below this.
    pub joint_support_limit: usize,
    /// Largest affine-support dimension enumerated in exact Clifford
    /// evaluation.
    pub exact_support_limit: usize,
    /// Stabilizer engine for noiseless Clifford fragments
    /// ([`TableauEngine::Packed`] is the word-parallel production path;
    /// [`TableauEngine::Reference`] is the frozen bit-at-a-time baseline,
    /// bit-identical in outcomes and RNG consumption — an A/B knob for
    /// parity checks and speedup measurement).
    pub tableau_engine: TableauEngine,
}

impl Default for SuperSimConfig {
    fn default() -> Self {
        SuperSimConfig {
            shots: 5000,
            exact: false,
            cut_strategy: CutStrategy::default(),
            mlft: true,
            clifford_snap: true,
            exact_clifford: false,
            sparse_contraction: true,
            parallel: false,
            threads: 0,
            seed: 0,
            joint_support_limit: 2_000_000,
            exact_support_limit: 16,
            tableau_engine: TableauEngine::default(),
        }
    }
}

/// Errors from the SuperSim pipeline.
#[derive(Debug)]
pub enum SuperSimError {
    /// The cutter could not respect the cut budget.
    Cut(CutBudgetError),
    /// A fragment could not be evaluated.
    Eval(EvalError),
    /// The MLFT correction could not normalize a fragment (its tensor
    /// would have poisoned recombination had the run continued).
    Mlft(MlftError),
}

impl fmt::Display for SuperSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperSimError::Cut(e) => write!(f, "cutting failed: {e}"),
            SuperSimError::Eval(e) => write!(f, "fragment evaluation failed: {e}"),
            SuperSimError::Mlft(e) => write!(f, "MLFT correction failed: {e}"),
        }
    }
}

impl std::error::Error for SuperSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuperSimError::Cut(e) => Some(e),
            SuperSimError::Eval(e) => Some(e),
            SuperSimError::Mlft(e) => Some(e),
        }
    }
}

impl From<CutBudgetError> for SuperSimError {
    fn from(e: CutBudgetError) -> Self {
        SuperSimError::Cut(e)
    }
}

impl From<EvalError> for SuperSimError {
    fn from(e: EvalError) -> Self {
        SuperSimError::Eval(e)
    }
}

impl From<MlftError> for SuperSimError {
    fn from(e: MlftError) -> Self {
        SuperSimError::Mlft(e)
    }
}

/// Diagnostics of one pipeline run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Number of fragments after cutting.
    pub num_fragments: usize,
    /// Number of Clifford fragments (evaluated on the stabilizer backend).
    pub clifford_fragments: usize,
    /// Number of cuts (`k` in the `4^k` reconstruction bound).
    pub num_cuts: usize,
    /// Total fragment variants executed.
    pub num_variants: usize,
    /// Wall time of the cutting stage.
    pub cut_time: Duration,
    /// Wall time of fragment evaluation (all variants).
    pub eval_time: Duration,
    /// Wall time of recombination.
    pub recombine_time: Duration,
    /// Total Frobenius movement of the MLFT correction (0 without MLFT).
    pub mlft_moved: f64,
}

/// Result of a [`SuperSim::run`] call.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Single-qubit marginals of the reconstructed distribution — always
    /// available, even for hundreds of qubits.
    pub marginals: Vec<[f64; 2]>,
    /// The full joint distribution, when the fragment supports are small
    /// enough (see [`SuperSimConfig::joint_support_limit`]).
    pub distribution: Option<Distribution>,
    /// Pipeline diagnostics.
    pub report: RunReport,
    tensors: Vec<FragmentTensor>,
    num_cuts: usize,
    n_qubits: usize,
    sparse: bool,
    /// Contraction pool size for follow-up queries (1 = sequential,
    /// 0 = one worker per core), mirroring the config this run used.
    threads: usize,
}

impl RunResult {
    /// "Strong simulation": the reconstructed probability of a specific
    /// bitstring (machine precision in exact mode).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the circuit width.
    pub fn probability_of(&self, bits: &Bits) -> f64 {
        Reconstructor::new(&self.tensors, self.num_cuts, self.n_qubits)
            .with_sparse(self.sparse)
            .with_threads(self.threads)
            .probability_of(bits)
    }

    /// The fragment tensors of this run (advanced inspection).
    pub fn tensors(&self) -> &[FragmentTensor] {
        &self.tensors
    }

    /// Draws measurement samples from the reconstructed joint distribution.
    ///
    /// Returns `None` when the joint distribution was withheld (fragment
    /// supports too large); use [`RunResult::marginals`] instead in that
    /// regime.
    pub fn sample(&self, shots: usize, rng: &mut impl rand::Rng) -> Option<Vec<Bits>> {
        self.distribution.as_ref().map(|d| d.sample(shots, rng))
    }

    /// Expectation value `⟨Π_{q∈subset} Z_q⟩` of a diagonal observable on
    /// the reconstructed distribution. Scales to hundreds of qubits (does
    /// not require the joint distribution) — the workhorse for VQE-style
    /// cost functions (paper §IV-B).
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        Reconstructor::new(&self.tensors, self.num_cuts, self.n_qubits)
            .with_sparse(self.sparse)
            .with_threads(self.threads)
            .expectation_z(subset)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fragments ({} Clifford), {} cuts, {} variants; \
             cut {:?}, eval {:?}, recombine {:?}",
            self.num_fragments,
            self.clifford_fragments,
            self.num_cuts,
            self.num_variants,
            self.cut_time,
            self.eval_time,
            self.recombine_time
        )
    }
}

/// The SuperSim framework: Clifford-based circuit cutting simulation.
#[derive(Clone, Debug, Default)]
pub struct SuperSim {
    config: SuperSimConfig,
}

impl SuperSim {
    /// Creates a framework instance with the given configuration.
    pub fn new(config: SuperSimConfig) -> Self {
        SuperSim { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SuperSimConfig {
        &self.config
    }

    /// Runs the full pipeline on a circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SuperSimError`] when cutting exceeds the cut budget or a
    /// fragment cannot be evaluated (too wide for the statevector backend,
    /// support too large for exact enumeration, noise in exact mode).
    pub fn run(&self, circuit: &Circuit) -> Result<RunResult, SuperSimError> {
        let cfg = &self.config;
        let t0 = Instant::now();
        let cut = cut_circuit(circuit, cfg.cut_strategy.clone())?;
        let cut_time = t0.elapsed();

        let eval = EvalOptions {
            mode: if cfg.exact {
                EvalMode::Exact
            } else {
                EvalMode::Sampled { shots: cfg.shots }
            },
            exact_clifford: cfg.exact_clifford,
            exact_support_limit: cfg.exact_support_limit,
            tableau_engine: cfg.tableau_engine,
        };
        let topts = TensorOptions {
            clifford_snap: cfg.clifford_snap,
        };

        let t1 = Instant::now();
        let num_variants: usize = cut.fragments.iter().map(|f| f.num_variants()).sum();
        let clifford_fragments = cut.fragments.iter().filter(|f| f.is_clifford).count();
        let mut tensors = self.evaluate_fragments(&cut.fragments, &eval, &topts)?;

        let mut mlft_moved = 0.0;
        if cfg.mlft && !cfg.exact {
            // Fragments are corrected independently on the same worker
            // pool sizing as evaluation; `mlft_moved` folds in fragment
            // order, so the diagnostic is bit-identical for any thread
            // count.
            mlft_moved =
                correct_tensors(&mut tensors, &MlftOptions::default(), self.worker_threads())?;
        }
        let eval_time = t1.elapsed();

        let t2 = Instant::now();
        let pool = if cfg.parallel { cfg.threads } else { 1 };
        let rec = Reconstructor::new(&tensors, cut.num_cuts, cut.original_qubits)
            .with_sparse(cfg.sparse_contraction)
            .with_threads(pool);
        let marginals = rec.marginals();
        let support: usize = tensors
            .iter()
            .map(|t| t.support_len().max(1))
            .fold(1usize, |a, b| a.saturating_mul(b));
        let distribution = if support <= cfg.joint_support_limit {
            let mut d = rec.joint(cfg.joint_support_limit);
            d.clip_and_normalize();
            Some(d)
        } else {
            None
        };
        let recombine_time = t2.elapsed();

        Ok(RunResult {
            marginals,
            distribution,
            report: RunReport {
                num_fragments: cut.fragments.len(),
                clifford_fragments,
                num_cuts: cut.num_cuts,
                num_variants,
                cut_time,
                eval_time,
                recombine_time,
                mlft_moved,
            },
            tensors,
            num_cuts: cut.num_cuts,
            n_qubits: cut.original_qubits,
            sparse: cfg.sparse_contraction,
            threads: pool,
        })
    }

    /// Worker-pool size shared by fragment evaluation and MLFT correction:
    /// 1 when [`SuperSimConfig::parallel`] is off, otherwise the
    /// configured thread count (`0` = one worker per available core).
    fn worker_threads(&self) -> usize {
        if self.config.parallel {
            if self.config.threads > 0 {
                self.config.threads
            } else {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
        } else {
            1
        }
    }

    fn evaluate_fragments(
        &self,
        fragments: &[cutkit::Fragment],
        eval: &EvalOptions,
        topts: &TensorOptions,
    ) -> Result<Vec<FragmentTensor>, SuperSimError> {
        let seed = self.config.seed;
        // Paper §X: per-variant simulations are embarrassingly parallel.
        // All (fragment × variant) pairs are scheduled onto one shared
        // worker pool; each fragment derives its own base seed from the
        // config seed, and each variant its own RNG stream from that, so
        // results are deterministic in `seed` regardless of thread count.
        let threads = self.worker_threads();
        let base_seeds: Vec<u64> = (0..fragments.len())
            .map(|i| {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
                rng.random()
            })
            .collect();
        Ok(cutkit::evaluate_fragment_tensors(
            fragments,
            eval,
            topts,
            &base_seeds,
            threads,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svsim::StateVec;

    fn exact_config() -> SuperSimConfig {
        SuperSimConfig {
            exact: true,
            ..SuperSimConfig::default()
        }
    }

    fn assert_matches_sv(c: &Circuit, cfg: SuperSimConfig, tol: f64, label: &str) {
        let result = SuperSim::new(cfg).run(c).unwrap();
        let sv = StateVec::run(c).unwrap();
        let dist = result.distribution.as_ref().expect("joint available");
        for x in 0..1usize << c.num_qubits() {
            let b = Bits::from_u64(x as u64, c.num_qubits());
            let got = dist.prob(&b);
            let expect = sv.probability_of_index(x);
            assert!(
                (got - expect).abs() < tol,
                "{label}: p({b}) = {got} vs sv {expect}"
            );
        }
    }

    #[test]
    fn exact_pipeline_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        assert_matches_sv(&c, exact_config(), 1e-9, "3q 1T");
    }

    #[test]
    fn exact_pipeline_two_t_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).h(1).t(1).h(0);
        assert_matches_sv(&c, exact_config(), 1e-9, "2q 2T");
    }

    #[test]
    fn sampled_pipeline_close_to_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let cfg = SuperSimConfig {
            shots: 20_000,
            seed: 7,
            ..SuperSimConfig::default()
        };
        assert_matches_sv(&c, cfg, 0.03, "sampled 3q");
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let seq = SuperSim::new(exact_config()).run(&c).unwrap();
        let par = SuperSim::new(SuperSimConfig {
            parallel: true,
            ..exact_config()
        })
        .run(&c)
        .unwrap();
        for x in 0..8u64 {
            let b = Bits::from_u64(x, 3);
            let a = seq.distribution.as_ref().unwrap().prob(&b);
            let p = par.distribution.as_ref().unwrap().prob(&b);
            assert!((a - p).abs() < 1e-9, "parallel mismatch at {b}");
        }
    }

    #[test]
    fn parallel_mlft_bit_identical_to_sequential() {
        // Sampled mode with MLFT on: the corrected pipeline must be
        // bit-identical between the sequential loop and the worker pool.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cfg = |parallel: bool, threads: usize| SuperSimConfig {
            shots: 400,
            seed: 11,
            mlft: true,
            parallel,
            threads,
            ..SuperSimConfig::default()
        };
        let seq = SuperSim::new(cfg(false, 1)).run(&c).unwrap();
        for threads in [2usize, 8] {
            let par = SuperSim::new(cfg(true, threads)).run(&c).unwrap();
            assert!(
                seq.report.mlft_moved.to_bits() == par.report.mlft_moved.to_bits(),
                "mlft_moved differs at {threads} threads"
            );
            let a = seq.distribution.as_ref().unwrap();
            let b = par.distribution.as_ref().unwrap();
            assert_eq!(a.support_len(), b.support_len());
            for ((ab, ap), (bb, bp)) in a.iter().zip(b.iter()) {
                assert_eq!(ab, bb, "support order at {threads} threads");
                assert!(
                    ap.to_bits() == bp.to_bits(),
                    "probability differs at {ab}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn report_counts_fragments_and_cuts() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1).h(1);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        assert_eq!(r.report.num_cuts, 2);
        assert_eq!(r.report.num_fragments, 3);
        assert_eq!(r.report.clifford_fragments, 2);
        // 12 variants for the middle T fragment + upstream (3) + downstream (4).
        assert_eq!(r.report.num_variants, 12 + 3 + 4);
    }

    #[test]
    fn strong_simulation_probability() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).cx(0, 1);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        for x in 0..4u64 {
            let b = Bits::from_u64(x, 2);
            assert!(
                (r.probability_of(&b) - sv.probability_of(&b)).abs() < 1e-9,
                "strong sim at {b}"
            );
        }
    }

    #[test]
    fn marginals_available_without_joint() {
        // Force the joint off via a tiny support limit.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).t(2).cx(2, 3);
        let cfg = SuperSimConfig {
            joint_support_limit: 1,
            ..exact_config()
        };
        let r = SuperSim::new(cfg).run(&c).unwrap();
        assert!(r.distribution.is_none());
        assert_eq!(r.marginals.len(), 4);
        let sv = StateVec::run(&c).unwrap();
        let sv_dist = Distribution::from_pairs(4, sv.distribution(1e-12));
        for q in 0..4 {
            let m = sv_dist.marginal(q);
            assert!(
                (r.marginals[q][0] - m[0]).abs() < 1e-9,
                "marginal q{q}: {:?} vs {m:?}",
                r.marginals[q]
            );
        }
    }

    #[test]
    fn pure_clifford_circuit_no_cut_needed() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).s(2);
        let r = SuperSim::new(exact_config()).run(&c).unwrap();
        assert_eq!(r.report.num_cuts, 0);
        assert_eq!(r.report.num_fragments, 1);
        let dist = r.distribution.unwrap();
        assert!((dist.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_clifford_optimization_gives_exact_marginals() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2);
        let cfg = SuperSimConfig {
            shots: 50,            // tiny shot budget...
            exact_clifford: true, // ...but Clifford fragments evaluated exactly
            mlft: false,
            seed: 3,
            ..SuperSimConfig::default()
        };
        let r = SuperSim::new(cfg).run(&c).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let sv_marg = Distribution::from_pairs(3, sv.distribution(1e-12));
        // Only the tiny T fragment is sampled; since it has no circuit
        // outputs of its own the marginals stay near-exact.
        for q in 0..2 {
            assert!(
                (r.marginals[q][0] - sv_marg.marginal(q)[0]).abs() < 0.05,
                "qubit {q}"
            );
        }
    }
}
