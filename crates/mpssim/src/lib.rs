//! Matrix-product-state (TEBD) simulation — the Qiskit-MPS substitute in
//! SuperSim-RS.
//!
//! The state is kept in Vidal canonical form: site tensors `Γ_i` and bond
//! singular-value vectors `λ_i`. Two-qubit gates contract the two affected
//! sites into a `2χ × 2χ` matrix, re-split it with the SVD from [`qmath`],
//! and truncate singular values below a threshold (and optionally above a
//! bond-dimension cap). Long-range gates route through swap networks.
//!
//! With no bond cap the simulation is exact, and — as the SuperSim paper's
//! Figs. 4 and 7 exploit — its cost grows exponentially with entangling
//! depth, while staying tiny on weakly-entangled circuits such as a
//! repetition-code cycle.
//!
//! ```
//! use qcir::Circuit;
//! use mpssim::{MpsConfig, MpsState};
//!
//! let mut ghz = Circuit::new(8);
//! ghz.h(0);
//! for q in 1..8 { ghz.cx(q - 1, q); }
//! let mps = MpsState::run(&ghz, &MpsConfig::default()).unwrap();
//! assert_eq!(mps.max_bond_dim(), 2); // GHZ entanglement is bond-2
//! ```

use qcir::{Bits, Circuit, Gate, OpKind, Qubit};
use qmath::{svd, CMat, C64};
use rand::Rng;
use std::fmt;

/// Configuration for the MPS engine.
#[derive(Clone, Copy, Debug)]
pub struct MpsConfig {
    /// Singular values below this (relative to the largest) are discarded.
    pub truncation_threshold: f64,
    /// Optional hard cap on the bond dimension; `None` = exact simulation.
    pub max_bond: Option<usize>,
}

impl Default for MpsConfig {
    fn default() -> Self {
        MpsConfig {
            truncation_threshold: 1e-12,
            max_bond: None,
        }
    }
}

/// Errors from the MPS engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpsError {
    /// Noise channels cannot be represented by a pure-state MPS.
    NoiseUnsupported,
}

impl fmt::Display for MpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpsError::NoiseUnsupported => {
                write!(f, "noise channels unsupported by the MPS engine")
            }
        }
    }
}

impl std::error::Error for MpsError {}

/// A rank-3 site tensor `Γ[l, s, r]` with physical dimension 2.
#[derive(Clone, Debug)]
struct Site {
    dl: usize,
    dr: usize,
    data: Vec<C64>, // index (l*2 + s)*dr + r
}

impl Site {
    fn zeros(dl: usize, dr: usize) -> Self {
        Site {
            dl,
            dr,
            data: vec![C64::ZERO; dl * 2 * dr],
        }
    }

    #[inline]
    fn get(&self, l: usize, s: usize, r: usize) -> C64 {
        self.data[(l * 2 + s) * self.dr + r]
    }

    #[inline]
    fn set(&mut self, l: usize, s: usize, r: usize, v: C64) {
        self.data[(l * 2 + s) * self.dr + r] = v;
    }
}

/// A pure quantum state in Vidal-form MPS representation.
#[derive(Clone, Debug)]
pub struct MpsState {
    n: usize,
    sites: Vec<Site>,
    bonds: Vec<Vec<f64>>, // n-1 singular-value vectors
    config: MpsConfig,
    truncation_weight: f64,
}

impl MpsState {
    /// The `|0…0⟩` state on `n` qubits.
    pub fn new(n: usize, config: MpsConfig) -> Self {
        let mut sites = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = Site::zeros(1, 1);
            t.set(0, 0, 0, C64::ONE);
            sites.push(t);
        }
        MpsState {
            n,
            sites,
            bonds: vec![vec![1.0]; n.saturating_sub(1)],
            config,
            truncation_weight: 0.0,
        }
    }

    /// Runs a noise-free circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`MpsError::NoiseUnsupported`] if the circuit contains noise
    /// channels.
    pub fn run(circuit: &Circuit, config: &MpsConfig) -> Result<Self, MpsError> {
        let mut mps = MpsState::new(circuit.num_qubits(), *config);
        for op in circuit.ops() {
            match &op.kind {
                OpKind::Gate(g) => mps.apply_gate(*g, &op.qubits),
                OpKind::Noise(_) => return Err(MpsError::NoiseUnsupported),
            }
        }
        Ok(mps)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The largest bond dimension currently in the state.
    pub fn max_bond_dim(&self) -> usize {
        self.bonds.iter().map(Vec::len).max().unwrap_or(1)
    }

    /// Total squared weight discarded by truncation so far (0 = exact).
    pub fn truncation_weight(&self) -> f64 {
        self.truncation_weight
    }

    /// Applies a unitary gate (swap-routing long-range two-qubit gates).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        match gate.arity() {
            1 => self.apply_1q(&gate.unitary(), qubits[0].index()),
            _ => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                if a < b {
                    self.apply_2q_routed(&gate.unitary(), a, b);
                } else {
                    // Reorder the matrix so the left site is the first
                    // operand: swap the two local bits.
                    let u = gate.unitary();
                    let perm = [0usize, 2, 1, 3];
                    let mut w = CMat::zeros(4, 4);
                    for r in 0..4 {
                        for c in 0..4 {
                            w[(r, c)] = u[(perm[r], perm[c])];
                        }
                    }
                    self.apply_2q_routed(&w, b, a);
                }
            }
        }
    }

    /// Applies a 2×2 unitary to site `q`.
    fn apply_1q(&mut self, u: &CMat, q: usize) {
        let t = &mut self.sites[q];
        for l in 0..t.dl {
            for r in 0..t.dr {
                let a0 = t.get(l, 0, r);
                let a1 = t.get(l, 1, r);
                t.set(l, 0, r, u[(0, 0)] * a0 + u[(0, 1)] * a1);
                t.set(l, 1, r, u[(1, 0)] * a0 + u[(1, 1)] * a1);
            }
        }
    }

    /// Applies a 4×4 unitary to sites `(a, b)` with `a < b`, swap-routing
    /// until they are adjacent.
    fn apply_2q_routed(&mut self, u: &CMat, a: usize, b: usize) {
        debug_assert!(a < b);
        let swap = Gate::Swap.unitary();
        // Bring b next to a.
        for k in ((a + 1)..b).rev() {
            self.apply_2q_adjacent(&swap, k);
        }
        self.apply_2q_adjacent(u, a);
        for k in (a + 1)..b {
            self.apply_2q_adjacent(&swap, k);
        }
    }

    /// Applies a 4×4 unitary to adjacent sites `(i, i+1)`; local basis
    /// index `2·s_i + s_{i+1}`.
    fn apply_2q_adjacent(&mut self, u: &CMat, i: usize) {
        let (dl, dm_l) = (self.sites[i].dl, self.sites[i].dr);
        let (dm_r, dr) = (self.sites[i + 1].dl, self.sites[i + 1].dr);
        debug_assert_eq!(dm_l, dm_r);
        let lam_l: Vec<f64> = if i == 0 {
            vec![1.0; dl]
        } else {
            self.bonds[i - 1].clone()
        };
        let lam_m = self.bonds[i].clone();
        let lam_r: Vec<f64> = if i + 1 == self.n - 1 {
            vec![1.0; dr]
        } else {
            self.bonds[i + 1].clone()
        };

        // Θ[a, s1, s2, c] with the surrounding λ's multiplied in.
        let mut theta = vec![C64::ZERO; dl * 4 * dr];
        for aa in 0..dl {
            for s1 in 0..2 {
                for bb in 0..dm_l {
                    let g1 = self.sites[i].get(aa, s1, bb);
                    if g1 == C64::ZERO {
                        continue;
                    }
                    let w1 = lam_l[aa] * lam_m[bb];
                    for s2 in 0..2 {
                        for cc in 0..dr {
                            let g2 = self.sites[i + 1].get(bb, s2, cc);
                            if g2 == C64::ZERO {
                                continue;
                            }
                            theta[((aa * 2 + s1) * 2 + s2) * dr + cc] += g1 * g2 * (w1 * lam_r[cc]);
                        }
                    }
                }
            }
        }
        // Apply the gate on the physical pair.
        let mut theta2 = vec![C64::ZERO; dl * 4 * dr];
        for aa in 0..dl {
            for cc in 0..dr {
                for srow in 0..4 {
                    let mut acc = C64::ZERO;
                    for scol in 0..4 {
                        let v = u[(srow, scol)];
                        if v != C64::ZERO {
                            acc += v * theta[(aa * 4 + scol) * dr + cc];
                        }
                    }
                    theta2[(aa * 4 + srow) * dr + cc] = acc;
                }
            }
        }
        // Reshape to M[(a,s1), (s2,c)] and split.
        let mut m = CMat::zeros(dl * 2, 2 * dr);
        for aa in 0..dl {
            for s1 in 0..2 {
                for s2 in 0..2 {
                    for cc in 0..dr {
                        m[(aa * 2 + s1, s2 * dr + cc)] = theta2[((aa * 2 + s1) * 2 + s2) * dr + cc];
                    }
                }
            }
        }
        let dec = svd(&m);
        let smax = dec.s.first().copied().unwrap_or(0.0).max(1e-300);
        let mut keep = dec
            .s
            .iter()
            .take_while(|&&x| x > self.config.truncation_threshold * smax)
            .count()
            .max(1);
        if let Some(cap) = self.config.max_bond {
            keep = keep.min(cap);
        }
        let kept_norm: f64 = dec.s[..keep].iter().map(|x| x * x).sum();
        let total_norm: f64 = dec.s.iter().map(|x| x * x).sum();
        self.truncation_weight += (total_norm - kept_norm).max(0.0);
        let renorm = if kept_norm > 0.0 {
            (total_norm / kept_norm).sqrt()
        } else {
            1.0
        };
        let new_lam: Vec<f64> = dec.s[..keep].iter().map(|x| x * renorm).collect();

        // Rebuild site tensors, dividing the outer λ's back out.
        let mut left = Site::zeros(dl, keep);
        for aa in 0..dl {
            let inv = if lam_l[aa] > 1e-12 {
                1.0 / lam_l[aa]
            } else {
                0.0
            };
            for s1 in 0..2 {
                for k in 0..keep {
                    left.set(aa, s1, k, dec.u[(aa * 2 + s1, k)] * inv);
                }
            }
        }
        let mut right = Site::zeros(keep, dr);
        for k in 0..keep {
            for s2 in 0..2 {
                for cc in 0..dr {
                    let inv = if lam_r[cc] > 1e-12 {
                        1.0 / lam_r[cc]
                    } else {
                        0.0
                    };
                    // V† row k, column (s2·dr + c).
                    right.set(k, s2, cc, dec.v[(s2 * dr + cc, k)].conj() * inv);
                }
            }
        }
        self.sites[i] = left;
        self.sites[i + 1] = right;
        self.bonds[i] = new_lam;
    }

    /// The amplitude `⟨x|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics on bitstring width mismatch.
    pub fn amplitude(&self, x: &Bits) -> C64 {
        assert_eq!(x.len(), self.n, "bitstring width mismatch");
        let mut v = vec![C64::ONE];
        for i in 0..self.n {
            v = self.step_vector(&v, i, x.get(i) as usize);
        }
        v[0]
    }

    /// Contracts one site into the running left vector: `v · M_i[s]` with
    /// `M_i[s] = Γ_i[s]·diag(λ_i)`.
    fn step_vector(&self, v: &[C64], i: usize, s: usize) -> Vec<C64> {
        let t = &self.sites[i];
        let mut out = vec![C64::ZERO; t.dr];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for (l, &vl) in v.iter().enumerate() {
                acc += vl * t.get(l, s, r);
            }
            let lam = if i < self.n - 1 {
                self.bonds[i][r]
            } else {
                1.0
            };
            *slot = acc * lam;
        }
        out
    }

    /// The probability of outcome `x`.
    pub fn probability(&self, x: &Bits) -> f64 {
        self.amplitude(x).norm_sqr()
    }

    /// Sequentially samples `shots` measurement outcomes (`O(n·χ²)` per
    /// shot, relying on the right-canonical structure of the Vidal form).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        (0..shots)
            .map(|_| {
                let mut v = vec![C64::ONE];
                let mut b = Bits::zeros(self.n);
                for i in 0..self.n {
                    let v0 = self.step_vector(&v, i, 0);
                    let v1 = self.step_vector(&v, i, 1);
                    let p0: f64 = v0.iter().map(|a| a.norm_sqr()).sum();
                    let p1: f64 = v1.iter().map(|a| a.norm_sqr()).sum();
                    let total = p0 + p1;
                    if total <= 0.0 {
                        break;
                    }
                    if rng.random::<f64>() * total < p0 {
                        v = v0;
                    } else {
                        b.set(i, true);
                        v = v1;
                    }
                }
                b
            })
            .collect()
    }

    /// Sparse distribution of outcomes with probability above `min_prob`
    /// via depth-first search with branch pruning.
    pub fn distribution(&self, min_prob: f64) -> Vec<(Bits, f64)> {
        let mut out = Vec::new();
        let mut prefix = Bits::zeros(self.n);
        self.dfs(&[C64::ONE], 0, &mut prefix, min_prob.max(1e-15), &mut out);
        out
    }

    fn dfs(
        &self,
        v: &[C64],
        depth: usize,
        prefix: &mut Bits,
        min_prob: f64,
        out: &mut Vec<(Bits, f64)>,
    ) {
        if depth == self.n {
            let p = v[0].norm_sqr();
            if p >= min_prob {
                out.push((prefix.clone(), p));
            }
            return;
        }
        for s in 0..2 {
            let vs = self.step_vector(v, depth, s);
            let mass: f64 = vs.iter().map(|a| a.norm_sqr()).sum();
            if mass < min_prob {
                continue;
            }
            prefix.set(depth, s == 1);
            self.dfs(&vs, depth + 1, prefix, min_prob, out);
            prefix.set(depth, false);
        }
    }

    /// Norm estimate `‖ψ‖²` from the first bond's singular values (exactly
    /// 1 for canonical states; drifts only through truncation).
    pub fn norm_sqr_estimate(&self) -> f64 {
        match self.bonds.first() {
            Some(lam) => lam.iter().map(|x| x * x).sum(),
            None => {
                // Single site: contract directly.
                let t = &self.sites[0];
                t.get(0, 0, 0).norm_sqr() + t.get(0, 1, 0).norm_sqr()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use svsim::StateVec;

    fn assert_matches_statevector(c: &Circuit, label: &str) {
        let mps = MpsState::run(c, &MpsConfig::default()).unwrap();
        let sv = StateVec::run(c).unwrap();
        for x in 0..1usize << c.num_qubits() {
            let b = Bits::from_u64(x as u64, c.num_qubits());
            let a = mps.amplitude(&b);
            let e = sv.amplitude(x);
            assert!(
                a.approx_eq(e, 1e-8),
                "{label}: amplitude {x:b}: MPS {a} vs SV {e}"
            );
        }
    }

    #[test]
    fn product_states() {
        let mut c = Circuit::new(3);
        c.x(0).h(1);
        assert_matches_statevector(&c, "product");
    }

    #[test]
    fn bell_and_ghz() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_matches_statevector(&c, "bell");
        let mut g = Circuit::new(5);
        g.h(0);
        for q in 1..5 {
            g.cx(q - 1, q);
        }
        assert_matches_statevector(&g, "ghz5");
        let mps = MpsState::run(&g, &MpsConfig::default()).unwrap();
        assert_eq!(mps.max_bond_dim(), 2);
        assert!((mps.norm_sqr_estimate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn long_range_gates_via_swaps() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).t(3).cz(3, 1);
        assert_matches_statevector(&c, "long range");
    }

    #[test]
    fn reversed_operand_order() {
        let mut c = Circuit::new(3);
        c.h(2).cx(2, 0).cz(1, 0);
        assert_matches_statevector(&c, "reversed operands");
    }

    #[test]
    fn random_circuits_match_statevector() {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        for n in 2..6usize {
            for trial in 0..10 {
                let mut c = Circuit::new(n);
                for _ in 0..25 {
                    match rng.random_range(0..7) {
                        0 => c.h(rng.random_range(0..n)),
                        1 => c.t(rng.random_range(0..n)),
                        2 => c.rx(
                            rng.random_range(0..n),
                            rng.random::<f64>() * std::f64::consts::TAU,
                        ),
                        3 => c.ry(
                            rng.random_range(0..n),
                            rng.random::<f64>() * std::f64::consts::TAU,
                        ),
                        4 => c.s(rng.random_range(0..n)),
                        _ => {
                            let a = rng.random_range(0..n);
                            let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                            if rng.random::<bool>() {
                                c.cx(a, b)
                            } else {
                                c.cz(a, b)
                            }
                        }
                    };
                }
                assert_matches_statevector(&c, &format!("random n={n} trial={trial}"));
                let mps = MpsState::run(&c, &MpsConfig::default()).unwrap();
                assert!(
                    (mps.norm_sqr_estimate() - 1.0).abs() < 1e-8,
                    "norm drift n={n} trial={trial}"
                );
                assert!(mps.truncation_weight() < 1e-12);
            }
        }
    }

    #[test]
    fn sampling_statistics() {
        let mut c = Circuit::new(3);
        c.ry(0, 1.1).cx(0, 1).cx(1, 2);
        let mps = MpsState::run(&c, &MpsConfig::default()).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let shots = 20_000;
        let samples = mps.sample(shots, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for s in samples {
            *counts.entry(s.to_u64().unwrap()).or_insert(0usize) += 1;
        }
        for x in 0..8u64 {
            let p = sv.probability_of_index(x as usize);
            let freq = *counts.get(&x).unwrap_or(&0) as f64 / shots as f64;
            assert!((p - freq).abs() < 0.02, "outcome {x:03b}: {p} vs {freq}");
        }
    }

    #[test]
    fn distribution_dfs_matches_exact() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(3).cz(2, 3);
        let mps = MpsState::run(&c, &MpsConfig::default()).unwrap();
        let sv = StateVec::run(&c).unwrap();
        let dist = mps.distribution(1e-9);
        let mut total = 0.0;
        for (b, p) in &dist {
            let e = sv.probability_of(b);
            assert!((p - e).abs() < 1e-9, "p({b})");
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bond_cap_truncates_and_records_error() {
        // Volume-law random circuit exceeds bond 2: capping must record
        // discarded weight.
        let mut c = Circuit::new(6);
        let mut rng = StdRng::seed_from_u64(1);
        use rand::Rng;
        for _ in 0..3 {
            for q in 0..6 {
                c.ry(q, rng.random::<f64>() * 3.0);
            }
            for q in 0..5 {
                c.cx(q, q + 1);
            }
            for q in (0..4).step_by(2) {
                c.cx(q + 2, q);
            }
        }
        let capped = MpsState::run(
            &c,
            &MpsConfig {
                truncation_threshold: 1e-12,
                max_bond: Some(2),
            },
        )
        .unwrap();
        assert!(capped.max_bond_dim() <= 2);
        assert!(capped.truncation_weight() > 1e-6, "should have truncated");
        let exact = MpsState::run(&c, &MpsConfig::default()).unwrap();
        assert!(exact.truncation_weight() < 1e-12);
        assert!(exact.max_bond_dim() > 2);
    }

    #[test]
    fn entanglement_growth_with_depth() {
        // The Fig. 4 mechanism: each entangling round can double the bond
        // dimension of a generic circuit.
        let mut rng = StdRng::seed_from_u64(3);
        use rand::Rng;
        let mut prev = 1;
        for rounds in 1..4 {
            let mut c = Circuit::new(8);
            for _ in 0..rounds {
                for q in 0..8 {
                    c.ry(q, rng.random::<f64>() * 3.0);
                    c.rz(q, rng.random::<f64>() * 3.0);
                }
                for q in 0..7 {
                    c.cx(q, q + 1);
                }
            }
            let mps = MpsState::run(&c, &MpsConfig::default()).unwrap();
            assert!(
                mps.max_bond_dim() >= prev,
                "bond should not shrink with depth"
            );
            prev = mps.max_bond_dim();
        }
        assert!(prev >= 4, "three rounds should entangle beyond bond 4");
    }

    #[test]
    fn noise_rejected() {
        let mut c = Circuit::new(1);
        c.add_noise(qcir::NoiseChannel::BitFlip(0.5), &[0]);
        assert!(matches!(
            MpsState::run(&c, &MpsConfig::default()),
            Err(MpsError::NoiseUnsupported)
        ));
    }
}
