//! CH-form stabilizer states: `|φ⟩ = ω · U_C · U_H · |s⟩`.
//!
//! `U_C` is a C-type Clifford ([`CType`]), `U_H` a layer of Hadamards on
//! the qubit set `v`, and `|s⟩` a computational basis state. Every
//! stabilizer state admits this form; Clifford gates update it in
//! polynomial time (the Hadamard gate via the desuperposition lemma), and
//! basis-state amplitudes are computable in `O(n²)`.

use crate::ctype::{CType, PhasedPauli};
use qcir::Bits;
use qmath::C64;

/// A stabilizer state in CH form.
#[derive(Clone, Debug)]
pub struct ChState {
    /// Scalar prefactor (may encode decomposition coefficients; zero means
    /// the state vanished).
    pub omega: C64,
    u: CType,
    /// The Hadamard-layer mask.
    v: Bits,
    /// The seed basis state.
    s: Bits,
}

impl ChState {
    /// The `|0…0⟩` state on `n` qubits.
    pub fn zero_state(n: usize) -> Self {
        ChState {
            omega: C64::ONE,
            u: CType::identity(n),
            v: Bits::zeros(n),
            s: Bits::zeros(n),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.s.len()
    }

    /// Returns `true` when the state is identically zero.
    pub fn is_zero(&self) -> bool {
        self.omega == C64::ZERO
    }

    /// Applies `S` on qubit `q`.
    pub fn apply_s(&mut self, q: usize) {
        let ph = self.u.left_s(q);
        self.omega *= C64::i_pow(ph as i64);
    }

    /// Applies `S†` on qubit `q`.
    pub fn apply_sdg(&mut self, q: usize) {
        let ph = self.u.left_sdg(q);
        self.omega *= C64::i_pow(ph as i64);
    }

    /// Applies `Z` on qubit `q`.
    pub fn apply_z(&mut self, q: usize) {
        let ph = self.u.left_z(q);
        self.omega *= C64::i_pow(ph as i64);
    }

    /// Applies `X` on qubit `q`.
    pub fn apply_x(&mut self, q: usize) {
        self.u.left_x(q);
    }

    /// Applies `Y` on qubit `q` (`Y = i·X·Z`).
    pub fn apply_y(&mut self, q: usize) {
        self.apply_z(q);
        self.apply_x(q);
        self.omega *= C64::i();
    }

    /// Applies `CX` with control `p`, target `q`.
    pub fn apply_cx(&mut self, p: usize, q: usize) {
        self.u.left_cx(p, q);
    }

    /// Applies `CZ` on `p`, `q`.
    pub fn apply_cz(&mut self, p: usize, q: usize) {
        let ph = self.u.left_cz(p, q);
        self.omega *= C64::i_pow(ph as i64);
    }

    /// Applies `H` on qubit `q` via the desuperposition lemma.
    pub fn apply_h(&mut self, q: usize) {
        if self.is_zero() {
            return;
        }
        let n = self.num_qubits();
        // H_q = (X_q + Z_q)/√2; pull each Pauli through U_C, then through
        // the H layer, then onto |s⟩.
        let px = self.u.pull_x_through(q);
        let pz = self.u.pull_z_through(q);
        let (k1, s1) = self.pauli_onto_seed(&px);
        let (k2, s2) = self.pauli_onto_seed(&pz);

        if s1 == s2 {
            // (i^{k1} + i^{k2})/√2 scalar merge.
            let beta = C64::i_pow(k1 as i64) + C64::i_pow(k2 as i64);
            self.omega *= beta * std::f64::consts::FRAC_1_SQRT_2;
            self.s = s1;
            if self.omega.abs() < 1e-300 {
                self.omega = C64::ZERO;
            }
            return;
        }

        // α1(|s1> + i^δ |s2>) with α1 = i^{k1}, δ = k2 − k1.
        let mut alpha_k = k1;
        let mut delta = (4 + k2 - k1) % 4;
        let (mut s1, mut s2) = (s1, s2);
        let mut tau = s1.clone();
        tau.xor_assign(&s2);

        // Prefer a pivot outside the H layer (case A); otherwise inside
        // (case B).
        let pivot_outside = (0..n).find(|&i| tau.get(i) && !self.v.get(i));
        let pivot = pivot_outside.unwrap_or_else(|| {
            (0..n)
                .find(|&i| tau.get(i) && self.v.get(i))
                .expect("tau is nonzero")
        });

        // Normalize so s1 has pivot bit 0.
        if s1.get(pivot) {
            std::mem::swap(&mut s1, &mut s2);
            alpha_k = (alpha_k + delta) % 4;
            delta = (4 - delta) % 4;
        }

        // V1 = Π_{j ∈ τ\{pivot}} CX_{pivot,j} below the H layer maps
        // |s2⟩ → |s1 ⊕ e_pivot⟩; conjugated through U_H it becomes C-type
        // W1, absorbed into U_C on the right.
        for j in 0..n {
            if j == pivot || !tau.get(j) {
                continue;
            }
            match (self.v.get(pivot), self.v.get(j)) {
                (false, false) => self.u.right_cx(pivot, j),
                (false, true) => self.u.right_cz(pivot, j),
                (true, true) => self.u.right_cx(j, pivot),
                (true, false) => unreachable!("case A pivot is outside the H layer"),
            }
        }

        self.omega *= C64::i_pow(alpha_k as i64) * std::f64::consts::FRAC_1_SQRT_2;
        self.s = s1;

        if !self.v.get(pivot) {
            // Case A: |s1⟩ + i^δ |s1 ⊕ e_pivot⟩ = √2 · G · H_pivot |β⟩.
            match delta {
                0 => {}
                1 => self.u.right_s(pivot),
                2 => {
                    self.s.set(pivot, true);
                }
                _ => self.u.right_sdg(pivot),
            }
            self.v.set(pivot, true);
            self.omega *= C64::real(std::f64::consts::SQRT_2);
        } else {
            // Case B: pivot already carries an H; H(|0⟩ + i^δ|1⟩) resolves.
            match delta {
                0 => {
                    // √2 |0⟩ — the pivot H cancels.
                    self.v.set(pivot, false);
                    self.s.set(pivot, false);
                    self.omega *= C64::real(std::f64::consts::SQRT_2);
                }
                2 => {
                    // √2 |1⟩.
                    self.v.set(pivot, false);
                    self.s.set(pivot, true);
                    self.omega *= C64::real(std::f64::consts::SQRT_2);
                }
                1 => {
                    // (1+i) S†_pivot H_pivot |0⟩.
                    self.u.right_sdg(pivot);
                    self.s.set(pivot, false);
                    self.omega *= C64::new(1.0, 1.0);
                }
                _ => {
                    // (1−i) S_pivot H_pivot |0⟩.
                    self.u.right_s(pivot);
                    self.s.set(pivot, false);
                    self.omega *= C64::new(1.0, -1.0);
                }
            }
        }
    }

    /// Pushes a `i^k Z^w X^u` Pauli through the H layer and applies it to
    /// the seed, returning `(phase exponent, new seed)`.
    fn pauli_onto_seed(&self, p: &PhasedPauli) -> (u8, Bits) {
        let n = self.num_qubits();
        let mut k = p.k as u32;
        let mut w = p.w.clone();
        let mut u = p.u.clone();
        // Conjugating through H on set v swaps X/Z there with a sign for Y.
        for jdx in 0..n {
            if self.v.get(jdx) {
                let (uj, wj) = (u.get(jdx), w.get(jdx));
                if uj && wj {
                    k += 2;
                }
                u.set(jdx, wj);
                w.set(jdx, uj);
            }
        }
        // (Z^w X^u)|s⟩ = (−1)^{w·(s⊕u)} |s ⊕ u⟩.
        let mut s2 = self.s.clone();
        s2.xor_assign(&u);
        if w.dot(&s2) {
            k += 2;
        }
        ((k % 4) as u8, s2)
    }

    /// The amplitude `⟨x|φ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the qubit count.
    pub fn amplitude(&self, x: &Bits) -> C64 {
        let n = self.num_qubits();
        assert_eq!(x.len(), n, "bitstring width mismatch");
        if self.is_zero() {
            return C64::ZERO;
        }
        // ⟨x| ω U_C U_H |s⟩: U_C maps |y⟩ → i^{σ(y)} |Ay ⊕ b⟩, so the
        // unique contributing y is A⁻¹(x ⊕ b); it must agree with s
        // outside v.
        let mut xb = x.clone();
        // xb ⊕ b:
        let y = {
            let b_img = self.u.image(&Bits::zeros(n)); // = b
            xb.xor_assign(&b_img);
            self.u.preimage_linear(&xb)
        };
        for q in 0..n {
            if !self.v.get(q) && y.get(q) != self.s.get(q) {
                return C64::ZERO;
            }
        }
        // H-layer amplitude: 2^{-|v|/2} (−1)^{Σ_{q∈v} s_q y_q}.
        let mut sign = 0u32;
        let mut vcount = 0u32;
        for q in 0..n {
            if self.v.get(q) {
                vcount += 1;
                if self.s.get(q) && y.get(q) {
                    sign += 1;
                }
            }
        }
        let mag = 0.5f64.powi(vcount as i32 / 2)
            * if vcount % 2 == 1 {
                std::f64::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
        self.omega * C64::i_pow(self.u.sigma(&y) as i64) * C64::i_pow(2 * sign as i64) * mag
    }

    /// The full state vector (test helper; `n ≤ 12`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 12`.
    pub fn to_statevector(&self) -> Vec<C64> {
        let n = self.num_qubits();
        assert!(n <= 12, "statevector form limited to small n");
        (0..1usize << n)
            .map(|x| self.amplitude(&Bits::from_u64(x as u64, n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::{Circuit, Gate};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use svsim::StateVec;

    /// Applies a Clifford gate to a CH state by name.
    fn apply(ch: &mut ChState, gate: Gate, qs: &[usize]) {
        match gate {
            Gate::H => ch.apply_h(qs[0]),
            Gate::S => ch.apply_s(qs[0]),
            Gate::Sdg => ch.apply_sdg(qs[0]),
            Gate::X => ch.apply_x(qs[0]),
            Gate::Y => ch.apply_y(qs[0]),
            Gate::Z => ch.apply_z(qs[0]),
            Gate::Cx => ch.apply_cx(qs[0], qs[1]),
            Gate::Cz => ch.apply_cz(qs[0], qs[1]),
            _ => panic!("unsupported in test"),
        }
    }

    fn assert_matches_statevector(circuit: &Circuit, label: &str) {
        let mut ch = ChState::zero_state(circuit.num_qubits());
        for op in circuit.ops() {
            let g = op.as_gate().unwrap();
            let qs: Vec<usize> = op.qubits.iter().map(|q| q.index()).collect();
            apply(&mut ch, g, &qs);
        }
        let sv = StateVec::run(circuit).unwrap();
        let got = ch.to_statevector();
        for (i, (a, b)) in got.iter().zip(sv.amplitudes()).enumerate() {
            assert!(
                a.approx_eq(*b, 1e-9),
                "{label}: amplitude {i} mismatch: CH {a} vs SV {b}"
            );
        }
    }

    #[test]
    fn plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert_matches_statevector(&c, "H|0>");
    }

    #[test]
    fn hh_is_identity() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert_matches_statevector(&c, "HH|0>");
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        assert_matches_statevector(&c, "Bell");
    }

    #[test]
    fn s_and_h_interleavings() {
        let mut c = Circuit::new(1);
        c.h(0).s(0).h(0);
        assert_matches_statevector(&c, "HSH");
        let mut c = Circuit::new(1);
        c.h(0).s(0).s(0).h(0);
        assert_matches_statevector(&c, "HSSH");
        let mut c = Circuit::new(1);
        c.h(0).sdg(0).h(0).s(0);
        assert_matches_statevector(&c, "S·HS†H");
    }

    #[test]
    fn ghz_and_phase_structure() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).s(2).cz(0, 2);
        assert_matches_statevector(&c, "GHZ+phases");
    }

    #[test]
    fn x_and_y_gates() {
        let mut c = Circuit::new(2);
        c.x(0).y(1).h(0).y(0);
        assert_matches_statevector(&c, "XY layer");
    }

    #[test]
    fn random_clifford_circuits_match_statevector() {
        let mut rng = StdRng::seed_from_u64(2024);
        let gates1 = [Gate::H, Gate::S, Gate::Sdg, Gate::X, Gate::Y, Gate::Z];
        for n in 2..5usize {
            for trial in 0..30 {
                let mut c = Circuit::new(n);
                for _ in 0..30 {
                    if rng.random::<f64>() < 0.6 {
                        let g = gates1[rng.random_range(0..gates1.len())];
                        c.add_gate(g, &[rng.random_range(0..n)]);
                    } else {
                        let a = rng.random_range(0..n);
                        let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                        if rng.random::<bool>() {
                            c.cx(a, b);
                        } else {
                            c.cz(a, b);
                        }
                    }
                }
                assert_matches_statevector(&c, &format!("random n={n} trial={trial}"));
            }
        }
    }

    #[test]
    fn norm_is_preserved() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let n = 4;
            let mut ch = ChState::zero_state(n);
            for _ in 0..40 {
                match rng.random_range(0..5) {
                    0 => ch.apply_h(rng.random_range(0..n)),
                    1 => ch.apply_s(rng.random_range(0..n)),
                    2 => ch.apply_x(rng.random_range(0..n)),
                    3 => {
                        let a = rng.random_range(0..n);
                        let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                        ch.apply_cx(a, b);
                    }
                    _ => {
                        let a = rng.random_range(0..n);
                        let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                        ch.apply_cz(a, b);
                    }
                }
            }
            let norm: f64 = ch.to_statevector().iter().map(|a| a.norm_sqr()).sum();
            assert!(
                (norm - 1.0).abs() < 1e-9,
                "norm drifted: {norm} (trial {trial})"
            );
        }
    }
}
