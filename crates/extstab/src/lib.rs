//! Extended stabilizer simulation via low-rank stabilizer decompositions —
//! the Qiskit-extended-stabilizer substitute in SuperSim-RS.
//!
//! The state is maintained as a sum of CH-form stabilizer states
//! (Bravyi–Browne–Calpin–Campbell–Gosset–Howard, the paper's reference 5):
//! Clifford gates act on every term in polynomial time, and each
//! non-Clifford diagonal rotation `Z^a = c₀·I + c₁·Z` *branches* the
//! decomposition, so the rank is at most `2^t` for `t` non-Clifford gates —
//! the exponential-in-T-count scaling the SuperSim paper compares against.
//!
//! Sampling uses a Metropolis chain over basis states driven by amplitude
//! ratios, mirroring Qiskit's approximate sampler — including its
//! characteristic fidelity collapse on sparse, weakly-connected
//! distributions (paper Fig. 7).
//!
//! ```
//! use qcir::Circuit;
//! use extstab::StabDecomp;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1);
//! let sim = StabDecomp::run(&c, 64).unwrap();
//! assert_eq!(sim.rank(), 2); // one T gate → two stabilizer terms
//! ```

mod chstate;
mod ctype;

pub use chstate::ChState;
pub use ctype::{CType, PhasedPauli};

use qcir::{Bits, Circuit, CliffordGate, Gate, OpKind, Qubit};
use qmath::C64;
use rand::Rng;
use std::fmt;

/// Errors from the extended stabilizer simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtStabError {
    /// The decomposition rank would exceed the configured cap.
    RankExceeded {
        /// Required rank (`2^t`).
        required: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Unsupported operation (noise channels are not representable).
    Unsupported(String),
}

impl fmt::Display for ExtStabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtStabError::RankExceeded { required, cap } => {
                write!(f, "stabilizer rank {required} exceeds cap {cap}")
            }
            ExtStabError::Unsupported(s) => write!(f, "unsupported operation: {s}"),
        }
    }
}

impl std::error::Error for ExtStabError {}

/// A quantum state as a rank-χ sum of CH-form stabilizer states.
#[derive(Clone, Debug)]
pub struct StabDecomp {
    n: usize,
    terms: Vec<ChState>,
}

impl StabDecomp {
    /// The `|0…0⟩` state.
    pub fn new(n: usize) -> Self {
        StabDecomp {
            n,
            terms: vec![ChState::zero_state(n)],
        }
    }

    /// Runs a circuit, branching at each non-Clifford gate.
    ///
    /// # Errors
    ///
    /// Returns [`ExtStabError::RankExceeded`] when the decomposition would
    /// grow beyond `rank_cap`, and [`ExtStabError::Unsupported`] for noise
    /// channels.
    pub fn run(circuit: &Circuit, rank_cap: usize) -> Result<Self, ExtStabError> {
        let mut sim = StabDecomp::new(circuit.num_qubits());
        for op in circuit.ops() {
            match &op.kind {
                OpKind::Gate(g) => sim.apply_gate(*g, &op.qubits, rank_cap)?,
                OpKind::Noise(c) => {
                    return Err(ExtStabError::Unsupported(c.name()));
                }
            }
        }
        Ok(sim)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Current decomposition rank (number of stabilizer terms, including
    /// vanished ones).
    pub fn rank(&self) -> usize {
        self.terms.len()
    }

    /// Applies a gate, branching on non-Clifford rotations.
    ///
    /// # Errors
    ///
    /// See [`StabDecomp::run`].
    pub fn apply_gate(
        &mut self,
        gate: Gate,
        qubits: &[Qubit],
        rank_cap: usize,
    ) -> Result<(), ExtStabError> {
        if let Some(c) = gate.to_clifford() {
            self.apply_clifford(c, qubits);
            return Ok(());
        }
        // Non-Clifford: reduce to diagonal Z-rotations, possibly conjugated
        // by Clifford basis changes.
        match gate {
            Gate::T => self.apply_zrot(qubits[0].index(), 0.25, rank_cap),
            Gate::Tdg => self.apply_zrot(qubits[0].index(), -0.25, rank_cap),
            Gate::ZPow(a) => self.apply_zrot(qubits[0].index(), a, rank_cap),
            Gate::Rz(theta) => {
                // Rz(θ) = e^{-iθ/2} · ZPow(θ/π): track the global phase so
                // amplitudes stay exact.
                let a = theta / std::f64::consts::PI;
                self.apply_zrot(qubits[0].index(), a, rank_cap)?;
                let phase = C64::cis(-theta / 2.0);
                for t in &mut self.terms {
                    t.omega *= phase;
                }
                Ok(())
            }
            Gate::Rx(theta) => {
                // Rx = H Rz H.
                let q = qubits[0];
                self.apply_clifford(CliffordGate::H, &[q]);
                self.apply_gate(Gate::Rz(theta), qubits, rank_cap)?;
                self.apply_clifford(CliffordGate::H, &[q]);
                Ok(())
            }
            Gate::Ry(theta) => {
                // Ry = S H Rz(θ) H S†.
                let q = qubits[0];
                self.apply_clifford(CliffordGate::Sdg, &[q]);
                self.apply_clifford(CliffordGate::H, &[q]);
                self.apply_gate(Gate::Rz(theta), qubits, rank_cap)?;
                self.apply_clifford(CliffordGate::H, &[q]);
                self.apply_clifford(CliffordGate::S, &[q]);
                Ok(())
            }
            other => Err(ExtStabError::Unsupported(other.name())),
        }
    }

    /// Applies a Clifford gate to every term.
    pub fn apply_clifford(&mut self, gate: CliffordGate, qubits: &[Qubit]) {
        use CliffordGate as G;
        for t in &mut self.terms {
            if t.is_zero() {
                continue;
            }
            match gate {
                G::I => {}
                G::X => t.apply_x(qubits[0].index()),
                G::Y => t.apply_y(qubits[0].index()),
                G::Z => t.apply_z(qubits[0].index()),
                G::H => t.apply_h(qubits[0].index()),
                G::S => t.apply_s(qubits[0].index()),
                G::Sdg => t.apply_sdg(qubits[0].index()),
                G::SqrtX => {
                    // √X = H S H exactly.
                    let q = qubits[0].index();
                    t.apply_h(q);
                    t.apply_s(q);
                    t.apply_h(q);
                }
                G::SqrtXdg => {
                    let q = qubits[0].index();
                    t.apply_h(q);
                    t.apply_sdg(q);
                    t.apply_h(q);
                }
                G::SqrtY => {
                    // √Y = e^{iπ/4}·H·Z.
                    let q = qubits[0].index();
                    t.apply_z(q);
                    t.apply_h(q);
                    t.omega *= C64::cis(std::f64::consts::FRAC_PI_4);
                }
                G::SqrtYdg => {
                    // √Y† = e^{-iπ/4}·Z·H.
                    let q = qubits[0].index();
                    t.apply_h(q);
                    t.apply_z(q);
                    t.omega *= C64::cis(-std::f64::consts::FRAC_PI_4);
                }
                G::Cx => t.apply_cx(qubits[0].index(), qubits[1].index()),
                G::Cz => t.apply_cz(qubits[0].index(), qubits[1].index()),
                G::Cy => {
                    // CY = S_t CX S†_t.
                    let (c, tq) = (qubits[0].index(), qubits[1].index());
                    t.apply_sdg(tq);
                    t.apply_cx(c, tq);
                    t.apply_s(tq);
                }
                G::Swap => {
                    let (a, b) = (qubits[0].index(), qubits[1].index());
                    t.apply_cx(a, b);
                    t.apply_cx(b, a);
                    t.apply_cx(a, b);
                }
            }
        }
    }

    /// Applies `ZPow(a) = diag(1, e^{iπa}) = c₀·I + c₁·Z`, doubling the
    /// rank unless the gate is Clifford-diagonal.
    fn apply_zrot(&mut self, q: usize, a: f64, rank_cap: usize) -> Result<(), ExtStabError> {
        let phase = C64::cis(std::f64::consts::PI * a);
        let c0 = (C64::ONE + phase) * 0.5;
        let c1 = (C64::ONE - phase) * 0.5;
        if c1.abs() < 1e-14 {
            return Ok(()); // identity
        }
        if c0.abs() < 1e-14 {
            // diag(1, e^{iπa}) with e^{iπa} = −1: plain Z, no branching.
            for t in &mut self.terms {
                t.apply_z(q);
            }
            return Ok(());
        }
        let required = self.terms.len() * 2;
        if required > rank_cap {
            return Err(ExtStabError::RankExceeded {
                required,
                cap: rank_cap,
            });
        }
        let mut branched = Vec::with_capacity(required);
        for t in &self.terms {
            if t.is_zero() {
                continue;
            }
            let mut a_term = t.clone();
            a_term.omega *= c0;
            branched.push(a_term);
            let mut b_term = t.clone();
            b_term.apply_z(q);
            b_term.omega *= c1;
            branched.push(b_term);
        }
        self.terms = branched;
        Ok(())
    }

    /// The exact amplitude `⟨x|ψ⟩ = Σ_j ⟨x|φ_j⟩`.
    ///
    /// # Panics
    ///
    /// Panics on bitstring width mismatch.
    pub fn amplitude(&self, x: &Bits) -> C64 {
        self.terms
            .iter()
            .filter(|t| !t.is_zero())
            .map(|t| t.amplitude(x))
            .sum()
    }

    /// The exact probability of outcome `x`.
    pub fn probability(&self, x: &Bits) -> f64 {
        self.amplitude(x).norm_sqr()
    }

    /// Exact sparse distribution by full enumeration (guarded to `n ≤ 22`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 22`.
    pub fn exact_distribution(&self, tol: f64) -> Vec<(Bits, f64)> {
        assert!(self.n <= 22, "exact enumeration limited to 22 qubits");
        let mut out = Vec::new();
        for x in 0..1u64 << self.n {
            let b = Bits::from_u64(x, self.n);
            let p = self.probability(&b);
            if p > tol {
                out.push((b, p));
            }
        }
        out
    }

    /// Draws exact samples by enumerating the full distribution — reliable
    /// but exponential in width (guarded to `n ≤ 22`). Useful as ground
    /// truth when characterizing the Metropolis sampler's mixing failures.
    ///
    /// # Panics
    ///
    /// Panics if `n > 22`.
    pub fn sample_exact(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        let dist = self.exact_distribution(0.0);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        (0..shots)
            .map(|_| {
                let mut u = rng.random::<f64>() * total;
                for (b, p) in &dist {
                    if u <= *p {
                        return b.clone();
                    }
                    u -= p;
                }
                dist.last().expect("non-empty distribution").0.clone()
            })
            .collect()
    }

    /// Draws samples with a Metropolis chain over single-bit flips, using
    /// exact amplitude ratios (the Qiskit extended-stabilizer sampling
    /// strategy). `mixing` steps are taken between recorded samples; the
    /// chain starts with `8·mixing` burn-in steps.
    ///
    /// This sampler is *approximate*: on distributions whose support is not
    /// connected under single-bit flips the chain mixes poorly — the
    /// behaviour behind the extended stabilizer's fidelity collapse in the
    /// paper's Fig. 7.
    pub fn sample_metropolis(&self, shots: usize, mixing: usize, rng: &mut impl Rng) -> Vec<Bits> {
        let mut x = Bits::zeros(self.n);
        let mut px = self.probability(&x);
        // If |0..0> has negligible amplitude, scan for a starting point.
        if px <= 1e-18 {
            for _ in 0..(64 * self.n.max(1)) {
                let mut cand = Bits::zeros(self.n);
                for q in 0..self.n {
                    if rng.random::<bool>() {
                        cand.set(q, true);
                    }
                }
                let pc = self.probability(&cand);
                if pc > px {
                    x = cand;
                    px = pc;
                }
                if px > 1e-6 {
                    break;
                }
            }
        }
        let mut out = Vec::with_capacity(shots);
        for i in 0..(8 * mixing + shots * mixing) {
            // Lazy chain: resting with probability 1/2 removes the parity
            // periodicity a deterministic-accept walk would alias into the
            // thinning interval.
            if rng.random::<bool>() {
                // Mostly local single-bit proposals; occasional global
                // proposals restore ergodicity when the support is
                // disconnected under bit flips. For wide circuits with
                // sparse supports the global proposal almost never lands on
                // the support, so the chain still mixes poorly there — the
                // Fig. 7 fidelity collapse.
                let mut cand = x.clone();
                if rng.random::<f64>() < 0.1 {
                    for q in 0..self.n {
                        if rng.random::<bool>() {
                            cand.flip(q);
                        }
                    }
                } else {
                    let q = rng.random_range(0..self.n.max(1));
                    cand.flip(q);
                }
                let pc = self.probability(&cand);
                let accept = if px <= 0.0 {
                    pc > 0.0
                } else {
                    rng.random::<f64>() * px <= pc
                };
                if accept {
                    x = cand;
                    px = pc;
                }
            }
            if i >= 8 * mixing && (i - 8 * mixing + 1) % mixing == 0 {
                out.push(x.clone());
            }
        }
        while out.len() < shots {
            out.push(x.clone());
        }
        out.truncate(shots);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use svsim::StateVec;

    fn assert_amplitudes_match(c: &Circuit, label: &str) {
        let sim = StabDecomp::run(c, 1 << 12).unwrap();
        let sv = StateVec::run(c).unwrap();
        for x in 0..1usize << c.num_qubits() {
            let b = Bits::from_u64(x as u64, c.num_qubits());
            let a = sim.amplitude(&b);
            let e = sv.amplitude(x);
            assert!(
                a.approx_eq(e, 1e-9),
                "{label}: amplitude {x:b}: CH {a} vs SV {e}"
            );
        }
    }

    #[test]
    fn t_gate_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        assert_amplitudes_match(&c, "TH|0>");
        let sim = StabDecomp::run(&c, 16).unwrap();
        assert_eq!(sim.rank(), 2);
    }

    #[test]
    fn t_sandwich() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        assert_amplitudes_match(&c, "HTH|0>");
    }

    #[test]
    fn multi_qubit_clifford_t_mix() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2).t(2).s(0).cz(0, 2);
        assert_amplitudes_match(&c, "3q clifford+2T");
        let sim = StabDecomp::run(&c, 16).unwrap();
        assert_eq!(sim.rank(), 4);
    }

    #[test]
    fn zpow_and_rotations_match() {
        let mut c = Circuit::new(2);
        c.h(0)
            .zpow(0, 0.3)
            .cx(0, 1)
            .rz(1, 0.9)
            .rx(0, 0.4)
            .ry(1, 1.2);
        assert_amplitudes_match(&c, "generic rotations");
    }

    #[test]
    fn sqrt_gates_match() {
        let mut c = Circuit::new(2);
        c.add_gate(Gate::SqrtX, &[0]);
        c.add_gate(Gate::SqrtY, &[1]);
        c.cx(0, 1);
        c.add_gate(Gate::SqrtXdg, &[1]);
        c.add_gate(Gate::SqrtYdg, &[0]);
        c.swap(0, 1);
        c.cy(0, 1);
        assert_amplitudes_match(&c, "sqrt/swap/cy gates");
    }

    #[test]
    fn random_clifford_t_circuits_match_statevector() {
        let mut rng = StdRng::seed_from_u64(4242);
        use rand::Rng;
        for n in 2..5usize {
            for trial in 0..15 {
                let mut c = Circuit::new(n);
                let mut ts = 0;
                for _ in 0..25 {
                    match rng.random_range(0..8) {
                        0 => c.h(rng.random_range(0..n)),
                        1 => c.s(rng.random_range(0..n)),
                        2 => c.x(rng.random_range(0..n)),
                        3 if ts < 4 => {
                            ts += 1;
                            c.t(rng.random_range(0..n))
                        }
                        4 => {
                            let a = rng.random_range(0..n);
                            let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                            c.cz(a, b)
                        }
                        _ => {
                            let a = rng.random_range(0..n);
                            let b = (a + 1 + rng.random_range(0..n - 1)) % n;
                            c.cx(a, b)
                        }
                    };
                }
                assert_amplitudes_match(&c, &format!("random n={n} trial={trial}"));
            }
        }
    }

    #[test]
    fn rank_grows_and_caps() {
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.h(0).t(0);
        }
        let sim = StabDecomp::run(&c, 64).unwrap();
        assert_eq!(sim.rank(), 32);
        let err = StabDecomp::run(&c, 16).unwrap_err();
        assert!(matches!(err, ExtStabError::RankExceeded { .. }));
    }

    #[test]
    fn probabilities_normalize() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).t(1).h(2).cz(1, 2);
        let sim = StabDecomp::run(&c, 64).unwrap();
        let total: f64 = sim.exact_distribution(0.0).iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }

    #[test]
    fn metropolis_sampling_roughly_matches_exact() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).h(1);
        let sim = StabDecomp::run(&c, 64).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let shots = 20_000;
        let samples = sim.sample_metropolis(shots, 8, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for s in &samples {
            *counts.entry(s.to_u64().unwrap()).or_insert(0usize) += 1;
        }
        for x in 0..4u64 {
            let p = sim.probability(&Bits::from_u64(x, 2));
            let freq = *counts.get(&x).unwrap_or(&0) as f64 / shots as f64;
            assert!(
                (p - freq).abs() < 0.05,
                "outcome {x:02b}: exact {p:.3} vs metropolis {freq:.3}"
            );
        }
    }

    #[test]
    fn exact_sampler_matches_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).cx(1, 2).h(2);
        let sim = StabDecomp::run(&c, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let shots = 30_000;
        let samples = sim.sample_exact(shots, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for s in &samples {
            *counts.entry(s.to_u64().unwrap()).or_insert(0usize) += 1;
        }
        for x in 0..8u64 {
            let p = sim.probability(&Bits::from_u64(x, 3));
            let freq = *counts.get(&x).unwrap_or(&0) as f64 / shots as f64;
            assert!((p - freq).abs() < 0.02, "outcome {x:03b}: {p} vs {freq}");
        }
    }

    #[test]
    fn noise_is_unsupported() {
        let mut c = Circuit::new(1);
        c.add_noise(qcir::NoiseChannel::BitFlip(0.1), &[0]);
        assert!(matches!(
            StabDecomp::run(&c, 4),
            Err(ExtStabError::Unsupported(_))
        ));
    }
}
