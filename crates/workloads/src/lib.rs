//! Benchmark circuit generators for the SuperSim evaluation (paper §VI-B).
//!
//! * [`random_clifford`] — random Clifford circuits with depth = width
//!   (Fig. 1's Stim-vs-statevector comparison);
//! * [`hwea`] — the near-Clifford hardware-efficient VQE ansatz with
//!   CAFQA-style Clifford parameterization (Figs. 3, 4, 5);
//! * [`qaoa_sk`] — one round of QAOA for MaxCut on the
//!   Sherrington–Kirkpatrick model: all-to-all ±1 couplings at Clifford
//!   angles (Fig. 6);
//! * [`phase_repetition`] — a single phase-flip repetition-code cycle in the
//!   style of SupermarQ (Fig. 7);
//! * [`inject_t_gates`] — the paper's "one randomly injected T gate"
//!   protocol, applicable to any Clifford base circuit.
//!
//! Every generator is deterministic given its seed so experiments are
//! reproducible point-by-point.

use qcir::{Circuit, CliffordGate, NoiseChannel, Operation, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated benchmark circuit plus provenance metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The circuit itself.
    pub circuit: Circuit,
    /// Human-readable benchmark name.
    pub name: String,
    /// Indices (into `circuit.ops()`) of injected non-Clifford gates.
    pub injected: Vec<usize>,
}

/// Generates a random Clifford circuit of the Fig. 1 family.
///
/// Each of `depth` layers applies a uniformly random single-qubit Clifford
/// to every qubit followed by CX gates on a random disjoint pairing.
pub fn random_clifford(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        for q in 0..n {
            let g = CliffordGate::ONE_QUBIT[rng.random_range(0..CliffordGate::ONE_QUBIT.len())];
            c.push(Operation::gate(g.into(), vec![Qubit(q)]));
        }
        // Random disjoint pairing for the entangling sublayer.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        for pair in order.chunks_exact(2) {
            c.cx(pair[0], pair[1]);
        }
    }
    c
}

/// A random Clifford angle `k·π/2`.
fn clifford_angle(rng: &mut impl Rng) -> f64 {
    std::f64::consts::FRAC_PI_2 * rng.random_range(0..4) as f64
}

/// Generates the near-Clifford hardware-efficient ansatz (HWEA) used by the
/// VQE experiments (Figs. 3–5).
///
/// Each round is a layer of single-qubit `Ry`/`Rz` rotations at Clifford
/// angles (the CAFQA discretization) followed by a linear CX entangling
/// chain; a final rotation layer closes the circuit. `t_gates` T gates are
/// then injected at random positions.
pub fn hwea(n: usize, rounds: usize, t_gates: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..rounds {
        for q in 0..n {
            c.ry(q, clifford_angle(&mut rng));
            c.rz(q, clifford_angle(&mut rng));
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.ry(q, clifford_angle(&mut rng));
        c.rz(q, clifford_angle(&mut rng));
    }
    let injected = inject_t_gates(&mut c, t_gates, &mut rng);
    Workload {
        circuit: c,
        name: format!("hwea-n{n}-r{rounds}-t{t_gates}"),
        injected,
    }
}

/// Generates one round of QAOA for MaxCut on the Sherrington–Kirkpatrick
/// model (Fig. 6).
///
/// Edge weights are drawn uniformly from {−1, +1} on the complete graph;
/// the cost layer applies `exp(-iγ w_ij Z_i Z_j)` for every pair with the
/// Clifford angle γ = π/4 (implemented as CX·Rz·CX), and the mixer applies
/// `Rx` at a Clifford angle. `t_gates` T gates are then injected.
pub fn qaoa_sk(n: usize, rounds: usize, t_gates: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..rounds {
        for i in 0..n {
            for j in (i + 1)..n {
                let w: f64 = if rng.random::<bool>() { 1.0 } else { -1.0 };
                // exp(-i γ w Z⊗Z) with γ = π/4 ⇒ Rz(2γw) = Rz(±π/2): Clifford.
                c.cx(i, j);
                c.rz(j, w * std::f64::consts::FRAC_PI_2);
                c.cx(i, j);
            }
        }
        for q in 0..n {
            c.rx(q, clifford_angle(&mut rng));
        }
    }
    let injected = inject_t_gates(&mut c, t_gates, &mut rng);
    Workload {
        circuit: c,
        name: format!("qaoa-sk-n{n}-r{rounds}-t{t_gates}"),
        injected,
    }
}

/// Configuration for [`phase_repetition`].
#[derive(Clone, Copy, Debug)]
pub struct RepetitionConfig {
    /// Number of data qubits (ancilla count is `data - 1`).
    pub data_qubits: usize,
    /// Optional phase-flip noise probability applied to each data qubit
    /// before syndrome extraction.
    pub phase_noise: Option<f64>,
    /// Number of injected T gates.
    pub t_gates: usize,
    /// RNG seed for noise placement and T injection.
    pub seed: u64,
}

/// Generates a single phase-flip repetition-code cycle (Fig. 7).
///
/// Data qubits (indices `0..data`) are prepared in `|+⟩`; each adjacent
/// pair's `X_i X_{i+1}` stabilizer is measured into an ancilla (indices
/// `data..2·data-1`) via the H–CX–CX–H construction. Total width is
/// `2·data − 1` qubits.
pub fn phase_repetition(config: RepetitionConfig) -> Workload {
    let d = config.data_qubits;
    assert!(d >= 2, "need at least two data qubits");
    let n = 2 * d - 1;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut c = Circuit::new(n);
    for q in 0..d {
        c.h(q);
    }
    if let Some(p) = config.phase_noise {
        for q in 0..d {
            c.add_noise(NoiseChannel::PhaseFlip(p), &[q]);
        }
    }
    for i in 0..d - 1 {
        let anc = d + i;
        c.h(anc);
        c.cx(anc, i);
        c.cx(anc, i + 1);
        c.h(anc);
    }
    // Rotate data back so that phase information is visible in the
    // computational-basis readout.
    for q in 0..d {
        c.h(q);
    }
    let injected = inject_t_gates(&mut c, config.t_gates, &mut rng);
    Workload {
        circuit: c,
        name: format!("phase-rep-d{d}-t{}", config.t_gates),
        injected,
    }
}

/// Generates a SupercheQ-IE fingerprint circuit (paper §IV-D).
///
/// SupercheQ's Incremental Encoding maps a file — a sequence of updates —
/// to a stabilizer state: each update appends a layer of random Clifford
/// gates determined by the update's content (here: a `u64` hash used as
/// the layer seed). Two files are equal iff their fingerprint states are
/// equal, which is checkable in polynomial time with the stabilizer
/// simulator (see `examples/fingerprinting.rs`).
pub fn supercheq_ie(n: usize, updates: &[u64]) -> Circuit {
    let mut c = Circuit::new(n);
    for &update in updates {
        let mut rng = StdRng::seed_from_u64(update);
        for q in 0..n {
            let g = CliffordGate::ONE_QUBIT[rng.random_range(0..CliffordGate::ONE_QUBIT.len())];
            c.push(Operation::gate(g.into(), vec![Qubit(q)]));
        }
        // One entangling pass per update keeps fingerprints sensitive to
        // update order.
        for q in 0..n.saturating_sub(1) {
            if rng.random::<bool>() {
                c.cz(q, q + 1);
            } else {
                c.cx(q, q + 1);
            }
        }
    }
    c
}

/// Generates a seed sweep of the HWEA: `seeds.len()` independent
/// instances of the same shape, the circuit family
/// `SuperSim::run_batch` amortizes one worker pool over (and — for a
/// fixed instance re-run under many tomography seeds —
/// `Executor::run_sweep` amortizes one cut plan over).
pub fn hwea_sweep(n: usize, rounds: usize, t_gates: usize, seeds: &[u64]) -> Vec<Workload> {
    seeds.iter().map(|&s| hwea(n, rounds, t_gates, s)).collect()
}

/// Generates a seed sweep of SK-model QAOA instances (see [`qaoa_sk`]).
pub fn qaoa_sk_sweep(n: usize, rounds: usize, t_gates: usize, seeds: &[u64]) -> Vec<Workload> {
    seeds
        .iter()
        .map(|&s| qaoa_sk(n, rounds, t_gates, s))
        .collect()
}

/// Generates a deterministic deep T-rich ladder: `layers` repetitions of
/// (per-qubit `H`·`T`, then a CX chain) on `n` qubits.
///
/// With a tight cut budget this is the cutter's worst case — hundreds of
/// Clifford/non-Clifford boundaries whose greedy merge pass dominates the
/// pipeline — while the merged fragments stay cheap to evaluate (few local
/// qubits). That cost profile is exactly what plan reuse amortizes, so
/// this is the workload behind the `batch_sweep` benchmark series.
pub fn t_ladder(n: usize, layers: usize) -> Workload {
    assert!(n >= 1, "need at least one qubit");
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.h(q);
            c.t(q);
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    Workload {
        circuit: c,
        name: format!("t-ladder-n{n}-l{layers}"),
        injected: Vec::new(),
    }
}

/// Prepares an `n`-qubit GHZ state.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    if n == 0 {
        return c;
    }
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// Prepares a Bell pair.
pub fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c
}

/// Injects `count` T gates at uniformly random positions (random qubit,
/// random point in program order), in place. Returns the op indices of the
/// injected gates.
///
/// This reproduces the paper's "one randomly injected T gate" protocol; the
/// position strongly influences SuperSim runtime (Fig. 5's non-monotonic
/// curve) because it changes how the circuit fragments.
pub fn inject_t_gates(circuit: &mut Circuit, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n = circuit.num_qubits();
    if n == 0 {
        return Vec::new();
    }
    let mut indices = Vec::with_capacity(count);
    for _ in 0..count {
        let q = rng.random_range(0..n);
        let pos = rng.random_range(0..=circuit.len());
        let mut rebuilt = Circuit::new(n);
        for (i, op) in circuit.ops().iter().enumerate() {
            if i == pos {
                rebuilt.t(q);
            }
            rebuilt.push(op.clone());
        }
        if pos == circuit.len() {
            rebuilt.t(q);
        }
        *circuit = rebuilt;
        indices.push(pos);
    }
    indices
}

/// Counts the operations a workload would feed each fragment class: the
/// number of Clifford vs non-Clifford gates. Convenience for reports.
pub fn clifford_split(circuit: &Circuit) -> (usize, usize) {
    let non = circuit.non_clifford_count();
    (circuit.len() - non, non)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_clifford_is_clifford() {
        for seed in 0..5 {
            let c = random_clifford(6, 6, seed);
            assert!(c.is_clifford(), "seed {seed} produced non-Clifford ops");
            assert_eq!(c.num_qubits(), 6);
            assert!(c.depth() >= 6, "depth should scale with layer count");
        }
    }

    #[test]
    fn random_clifford_is_reproducible() {
        assert_eq!(random_clifford(5, 5, 42), random_clifford(5, 5, 42));
        assert_ne!(random_clifford(5, 5, 42), random_clifford(5, 5, 43));
    }

    #[test]
    fn hwea_structure() {
        let w = hwea(8, 5, 1, 7);
        assert_eq!(w.circuit.num_qubits(), 8);
        assert_eq!(w.circuit.t_count(), 1);
        assert_eq!(
            w.circuit.non_clifford_count(),
            1,
            "rotations must be Clifford"
        );
        assert_eq!(w.injected.len(), 1);
        // 5 rounds × (2·8 rotations + 7 CX) + final 16 rotations + 1 T
        assert_eq!(w.circuit.len(), 5 * (16 + 7) + 16 + 1);
    }

    #[test]
    fn hwea_without_t_is_clifford() {
        let w = hwea(6, 3, 0, 1);
        assert!(w.circuit.is_clifford());
        assert!(w.injected.is_empty());
    }

    #[test]
    fn qaoa_all_to_all_connectivity() {
        let n = 5;
        let w = qaoa_sk(n, 1, 1, 3);
        assert_eq!(w.circuit.t_count(), 1);
        assert_eq!(w.circuit.non_clifford_count(), 1);
        // Every pair should appear: n(n-1)/2 ZZ interactions, 2 CX each.
        let counts = w.circuit.gate_counts();
        assert_eq!(counts["CX"], 2 * n * (n - 1) / 2);
    }

    #[test]
    fn repetition_code_width_and_cliffordness() {
        let w = phase_repetition(RepetitionConfig {
            data_qubits: 4,
            phase_noise: None,
            t_gates: 1,
            seed: 0,
        });
        assert_eq!(w.circuit.num_qubits(), 7);
        assert_eq!(w.circuit.t_count(), 1);
        let clean = phase_repetition(RepetitionConfig {
            data_qubits: 4,
            phase_noise: None,
            t_gates: 0,
            seed: 0,
        });
        assert!(clean.circuit.is_clifford());
    }

    #[test]
    fn repetition_code_certain_noise_present_in_circuit() {
        // The full syndrome-firing check (a Z error between two ancillas
        // fires both) lives in the workspace integration tests where the
        // stabilizer simulator is available; here we validate the circuit
        // shape: noise channels sit between preparation and extraction.
        let w = phase_repetition(RepetitionConfig {
            data_qubits: 3,
            phase_noise: Some(0.25),
            t_gates: 0,
            seed: 0,
        });
        assert!(w.circuit.has_noise());
        let noise_ops: Vec<usize> = w
            .circuit
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op.kind, qcir::OpKind::Noise(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(noise_ops.len(), 3, "one channel per data qubit");
        // All noise after the 3 preparation Hadamards, before extraction.
        assert!(noise_ops.iter().all(|&i| (3..3 + 3).contains(&i)));
    }

    #[test]
    fn t_injection_counts_and_positions() {
        let mut c = ghz(4);
        let before = c.len();
        let mut rng = StdRng::seed_from_u64(9);
        let injected = inject_t_gates(&mut c, 3, &mut rng);
        assert_eq!(c.len(), before + 3);
        assert_eq!(c.t_count(), 3);
        assert_eq!(injected.len(), 3);
    }

    #[test]
    fn ghz_and_bell_shapes() {
        assert_eq!(ghz(5).len(), 5);
        assert!(ghz(5).is_clifford());
        assert_eq!(bell().num_qubits(), 2);
        assert_eq!(ghz(0).len(), 0);
    }

    #[test]
    fn supercheq_fingerprints_are_clifford_and_order_sensitive() {
        let a = supercheq_ie(6, &[1, 2, 3]);
        assert!(a.is_clifford());
        let b = supercheq_ie(6, &[1, 3, 2]);
        assert_ne!(a, b, "update order must matter");
        assert_eq!(a, supercheq_ie(6, &[1, 2, 3]), "deterministic encoding");
    }

    #[test]
    fn sweep_generators_match_pointwise_generation() {
        let seeds = [3u64, 9, 27];
        let hw = hwea_sweep(5, 2, 1, &seeds);
        assert_eq!(hw.len(), 3);
        for (w, &s) in hw.iter().zip(&seeds) {
            assert_eq!(w.circuit, hwea(5, 2, 1, s).circuit);
        }
        let qa = qaoa_sk_sweep(4, 1, 1, &seeds);
        for (w, &s) in qa.iter().zip(&seeds) {
            assert_eq!(w.circuit, qaoa_sk(4, 1, 1, s).circuit);
        }
    }

    #[test]
    fn t_ladder_shape() {
        let w = t_ladder(2, 10);
        assert_eq!(w.circuit.num_qubits(), 2);
        assert_eq!(w.circuit.t_count(), 20);
        // Per layer: 2 H + 2 T + 1 CX.
        assert_eq!(w.circuit.len(), 10 * 5);
        assert_eq!(w.circuit, t_ladder(2, 10).circuit, "deterministic");
    }

    #[test]
    fn clifford_split_counts() {
        let w = hwea(4, 2, 2, 11);
        let (cliff, non) = clifford_split(&w.circuit);
        assert_eq!(non, 2);
        assert_eq!(cliff + non, w.circuit.len());
    }
}
