//! Criterion bench: the three SuperSim pipeline stages in isolation —
//! cutting, fragment evaluation, recombination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cutkit::{
    build_fragment_tensor, cut_circuit, CutStrategy, EvalMode, EvalOptions, Reconstructor,
    TensorOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pipeline_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("cutter");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 64, 128] {
        let w = workloads::hwea(n, 5, 1, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w.circuit, |b, circuit| {
            b.iter(|| black_box(cut_circuit(circuit, CutStrategy::default()).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fragment_eval_sampled");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 48] {
        let w = workloads::hwea(n, 5, 1, 11);
        let cut = cut_circuit(&w.circuit, CutStrategy::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cut, |b, cut| {
            let eval = EvalOptions {
                mode: EvalMode::Sampled { shots: 1000 },
                ..Default::default()
            };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                for f in &cut.fragments {
                    black_box(
                        build_fragment_tensor(f, &eval, &TensorOptions::default(), &mut rng)
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("recombination");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for t_count in [1usize, 2, 3] {
        let w = workloads::hwea(10, 3, t_count, 23);
        let cut = cut_circuit(&w.circuit, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let tensors: Vec<_> = cut
            .fragments
            .iter()
            .map(|f| build_fragment_tensor(f, &eval, &TensorOptions::default(), &mut rng).unwrap())
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(t_count),
            &(tensors, cut.num_cuts, cut.original_qubits),
            |b, (tensors, k, n)| {
                b.iter(|| {
                    let rec = Reconstructor::new(tensors, *k, *n);
                    black_box(rec.marginals())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pipeline_stages);
criterion_main!(benches);
