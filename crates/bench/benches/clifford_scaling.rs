//! Criterion bench: stabilizer vs statevector scaling on random Clifford
//! circuits (the Fig. 1 comparison at micro-benchmark scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn clifford_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_vs_sv");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 8, 12, 16] {
        let circuit = workloads::random_clifford(n, n, 7);
        group.bench_with_input(BenchmarkId::new("tableau", n), &circuit, |b, circuit| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let sim = stabsim::TableauSim::run(circuit, &mut rng).unwrap();
                black_box(sim.sample_all(1000, &mut rng))
            })
        });
        if n <= 16 {
            group.bench_with_input(
                BenchmarkId::new("statevector", n),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(1);
                        let sv = svsim::StateVec::run(circuit).unwrap();
                        black_box(sv.sample(1000, &mut rng))
                    })
                },
            );
        }
    }
    group.finish();

    // Bulk sampling cost at large widths (the affine-support fast path).
    let mut group = c.benchmark_group("tableau_bulk_sampling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 128, 256] {
        let circuit = workloads::random_clifford(n, 8, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circuit| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                let sim = stabsim::TableauSim::run(circuit, &mut rng).unwrap();
                black_box(sim.sample_all(5000, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, clifford_scaling);
criterion_main!(benches);
