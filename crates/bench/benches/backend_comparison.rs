//! Criterion bench: end-to-end sampler comparison on one mid-size
//! near-Clifford HWEA instance (the Fig. 3 protocol at one grid point).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use supersim::{
    ExtStabBackend, MpsBackend, Simulator, StatevectorBackend, SuperSim, SuperSimConfig,
};

fn backends(c: &mut Criterion) {
    let w = workloads::hwea(14, 5, 1, 9);
    let shots = 1000;

    let mut group = c.benchmark_group("hwea14_sampler");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("supersim", |b| {
        let sim = SuperSim::new(SuperSimConfig {
            shots,
            ..SuperSimConfig::default()
        });
        b.iter(|| black_box(sim.run_marginals(&w.circuit, shots, 3).unwrap()))
    });
    group.bench_function("statevector", |b| {
        b.iter(|| {
            black_box(
                StatevectorBackend
                    .run_marginals(&w.circuit, shots, 3)
                    .unwrap(),
            )
        })
    });
    group.bench_function("mps", |b| {
        b.iter(|| {
            black_box(
                MpsBackend::default()
                    .run_marginals(&w.circuit, shots, 3)
                    .unwrap(),
            )
        })
    });
    group.bench_function("extended_stabilizer", |b| {
        b.iter(|| {
            black_box(
                ExtStabBackend::default()
                    .run_marginals(&w.circuit, shots, 3)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, backends);
criterion_main!(benches);
