//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Each `fig*` binary in `src/bin/` regenerates one figure of the SuperSim
//! paper as a TSV series on stdout (`qubits <TAB> backend <TAB> seconds
//! <TAB> fidelity`). The harness times backends as *samplers* (the paper's
//! §VI-A protocol) and applies the paper's adaptive timeout discipline: a
//! backend that exceeds the per-point time budget is dropped from larger
//! problem sizes, mirroring the truncated curves in Figs. 3 and 6.
//!
//! Environment knobs:
//!
//! * `FULL=1` — paper-scale parameters (5000 shots, 5 repetitions, larger
//!   size grids, more generous timeouts);
//! * `SHOTS`, `REPS`, `TIMEOUT_SECS` — individual overrides.

pub mod benchjson;

use metrics::{mean_marginal_fidelity, Distribution};
use qcir::Circuit;
use std::collections::HashSet;
use std::time::Instant;
use supersim::{BackendError, Simulator};

/// Harness-wide settings, resolved from the environment.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Shots per sampled distribution (paper: 5000).
    pub shots: usize,
    /// Repetitions averaged per data point (paper: 5 for Figs. 3/6).
    pub reps: usize,
    /// Per-point time budget; larger sizes are skipped for a backend that
    /// exceeds it (paper: 30 minutes).
    pub timeout_secs: f64,
    /// Whether paper-scale grids were requested.
    pub full: bool,
}

impl HarnessConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> Self {
        let full = std::env::var("FULL").map(|v| v == "1").unwrap_or(false);
        let default_shots = if full { 5000 } else { 1000 };
        let default_reps = if full { 5 } else { 2 };
        let default_timeout = if full { 1800.0 } else { 15.0 };
        HarnessConfig {
            shots: env_usize("SHOTS", default_shots),
            reps: env_usize("REPS", default_reps),
            timeout_secs: env_f64("TIMEOUT_SECS", default_timeout),
            full,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall time in seconds (averaged over repetitions).
    pub seconds: f64,
    /// Fidelity against the exact reference, when one was computable.
    pub fidelity: Option<f64>,
}

/// Runs one backend once and returns `(seconds, marginals)`.
///
/// # Errors
///
/// Propagates the backend error.
pub fn time_marginals(
    sim: &dyn Simulator,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> Result<(f64, Vec<[f64; 2]>), BackendError> {
    let t0 = Instant::now();
    let marg = sim.run_marginals(circuit, shots, seed)?;
    Ok((t0.elapsed().as_secs_f64(), marg))
}

/// Runs one backend once and returns `(seconds, distribution)`.
///
/// # Errors
///
/// Propagates the backend error.
pub fn time_distribution(
    sim: &dyn Simulator,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> Result<(f64, Distribution), BackendError> {
    let t0 = Instant::now();
    let dist = sim.run_distribution(circuit, shots, seed)?;
    Ok((t0.elapsed().as_secs_f64(), dist))
}

/// The exact reference marginals via dense statevector simulation, when
/// the circuit is narrow enough.
pub fn reference_marginals(circuit: &Circuit) -> Option<Vec<[f64; 2]>> {
    if circuit.num_qubits() > 20 || circuit.has_noise() {
        return None;
    }
    let sv = svsim::StateVec::run(circuit).ok()?;
    let dist = Distribution::from_pairs(circuit.num_qubits(), sv.distribution(1e-14));
    Some(dist.marginals())
}

/// The exact reference distribution, when computable.
pub fn reference_distribution(circuit: &Circuit) -> Option<Distribution> {
    if circuit.num_qubits() > 20 || circuit.has_noise() {
        return None;
    }
    let sv = svsim::StateVec::run(circuit).ok()?;
    Some(Distribution::from_pairs(
        circuit.num_qubits(),
        sv.distribution(1e-14),
    ))
}

/// A sweep over problem sizes comparing several backends, with the
/// adaptive timeout discipline.
pub struct Sweep<'a> {
    config: HarnessConfig,
    backends: Vec<Box<dyn Simulator + 'a>>,
    timed_out: HashSet<usize>,
    /// Use full-distribution Hellinger fidelity (sparse metric) instead of
    /// the mean single-qubit marginal fidelity (dense metric).
    pub sparse_fidelity: bool,
}

impl<'a> Sweep<'a> {
    /// Creates a sweep over the given backends.
    pub fn new(config: HarnessConfig, backends: Vec<Box<dyn Simulator + 'a>>) -> Self {
        Sweep {
            config,
            backends,
            timed_out: HashSet::new(),
            sparse_fidelity: false,
        }
    }

    /// Prints the TSV header.
    pub fn header(&self, figure: &str, detail: &str) {
        println!("# {figure}: {detail}");
        println!(
            "# shots={} reps={} timeout={}s full={}",
            self.config.shots, self.config.reps, self.config.timeout_secs, self.config.full
        );
        println!("size\tbackend\tseconds\tfidelity");
    }

    /// Measures every backend on one problem size. `make_circuit` receives
    /// the repetition index so each rep can draw a fresh random instance
    /// (the paper averages 5 instances per point).
    pub fn point(&mut self, size: usize, make_circuit: impl Fn(usize) -> Circuit) {
        for b in 0..self.backends.len() {
            if self.timed_out.contains(&b) {
                continue;
            }
            let mut total = 0.0;
            let mut completed = 0usize;
            let mut fid_total = 0.0;
            let mut fid_count = 0usize;
            let mut failed = false;
            for rep in 0..self.config.reps {
                let circuit = make_circuit(rep);
                let seed = (size as u64) << 16 | rep as u64;
                if self.sparse_fidelity {
                    match time_distribution(
                        self.backends[b].as_ref(),
                        &circuit,
                        self.config.shots,
                        seed,
                    ) {
                        Ok((secs, dist)) => {
                            total += secs;
                            completed += 1;
                            if let Some(reference) = reference_distribution(&circuit) {
                                fid_total += reference.hellinger_fidelity(&dist);
                                fid_count += 1;
                            }
                        }
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                } else {
                    match time_marginals(
                        self.backends[b].as_ref(),
                        &circuit,
                        self.config.shots,
                        seed,
                    ) {
                        Ok((secs, marg)) => {
                            total += secs;
                            completed += 1;
                            if let Some(reference) = reference_marginals(&circuit) {
                                fid_total += mean_marginal_fidelity(&reference, &marg);
                                fid_count += 1;
                            }
                        }
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if total > self.config.timeout_secs {
                    break;
                }
            }
            let name = self.backends[b].name();
            if failed {
                println!("{size}\t{name}\tskip\t-");
                self.timed_out.insert(b);
                continue;
            }
            let avg = total / completed.max(1) as f64;
            let fid = if fid_count > 0 {
                format!("{:.4}", fid_total / fid_count as f64)
            } else {
                "-".to_string()
            };
            println!("{size}\t{name}\t{avg:.4}\t{fid}");
            if total > self.config.timeout_secs {
                self.timed_out.insert(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supersim::StatevectorBackend;

    #[test]
    fn reference_marginals_on_bell() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let m = reference_marginals(&c).unwrap();
        assert!((m[0][0] - 0.5).abs() < 1e-12);
        assert!((m[1][1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_unavailable_for_wide_circuits() {
        let c = Circuit::new(32);
        assert!(reference_marginals(&c).is_none());
    }

    #[test]
    fn timing_returns_positive_duration() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (secs, marg) = time_marginals(&StatevectorBackend, &c, 500, 1).unwrap();
        assert!(secs >= 0.0);
        assert_eq!(marg.len(), 2);
    }

    #[test]
    fn harness_config_defaults() {
        let cfg = HarnessConfig::from_env();
        assert!(cfg.shots > 0);
        assert!(cfg.reps > 0);
    }
}
