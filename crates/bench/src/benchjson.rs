//! Benchmark-report JSON utilities: a dependency-free parser for the
//! `BENCH_recombine.json` schema and the CI bench-regression gate.
//!
//! The offline build has no `serde_json`, so this module carries a minimal
//! recursive-descent JSON parser — enough for the reports `bench_json`
//! itself writes (objects, arrays, numbers, strings, booleans, null).
//!
//! The regression gate ([`check_regressions`]) compares every
//! single-threaded timing series (keys ending in `_1t_ms`) of a fresh
//! report against the committed baseline, prints a per-series delta
//! table, and flags any series that slowed down by more than the given
//! tolerance. Single-threaded series are the gated ones because they are
//! insensitive to the runner's core count; multi-threaded numbers are
//! reported but not gated.

/// A parsed JSON value. Object keys keep file order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value of an object key, when this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Multi-byte UTF-8 sequences pass through byte-wise.
                let ch_len = utf8_len(c);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid UTF-8 in string")?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Extracts every single-threaded timing series — object keys ending in
/// `_1t_ms` — with a stable label derived from the path, e.g.
/// `recombine_marginals[k=8].engine_1t_ms`. Array elements are labelled
/// by their `k` field when present, their index otherwise.
pub fn collect_1t_series(report: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk_series(report, "", &mut out);
    out
}

fn walk_series(value: &JsonValue, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        JsonValue::Obj(pairs) => {
            for (key, v) in pairs {
                let label = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                if key.ends_with("_1t_ms") {
                    if let JsonValue::Num(x) = v {
                        out.push((label, *x));
                    }
                } else {
                    walk_series(v, &label, out);
                }
            }
        }
        JsonValue::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let tag = item
                    .get("k")
                    .and_then(JsonValue::as_f64)
                    .map_or(format!("[{i}]"), |k| format!("[k={k}]"));
                walk_series(item, &format!("{prefix}{tag}"), out);
            }
        }
        _ => {}
    }
}

/// The outcome of comparing one series against the baseline.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesDelta {
    /// Present in both reports: relative change `new/old − 1`.
    Compared {
        /// Baseline milliseconds.
        baseline_ms: f64,
        /// Fresh milliseconds.
        new_ms: f64,
        /// Relative change (positive = slower).
        delta: f64,
        /// Whether the change exceeds the gate tolerance.
        regressed: bool,
    },
    /// Measured now but absent from the baseline (new series).
    NewSeries,
    /// In the baseline but not measured now (e.g. `MAX_K` trimmed it).
    NotMeasured,
}

/// Compares the `*_1t_ms` series of a fresh report against a committed
/// baseline. Returns `(label, delta)` rows in report order (baseline-only
/// series appended) — the caller renders and gates on them.
///
/// A series counts as regressed only when it is slower by more than
/// `tolerance` (relative) **and** by more than `min_delta_ms` (absolute):
/// sub-millisecond series jitter by tens of percent run to run, and the
/// absolute floor keeps that noise from tripping the gate while still
/// catching any regression large enough to matter.
///
/// # Errors
///
/// Returns a parse error description when either document is malformed.
pub fn compare_1t_series(
    baseline_json: &str,
    new_json: &str,
    tolerance: f64,
    min_delta_ms: f64,
) -> Result<Vec<(String, SeriesDelta)>, String> {
    let baseline = collect_1t_series(&parse(baseline_json).map_err(|e| format!("baseline: {e}"))?);
    let fresh = collect_1t_series(&parse(new_json).map_err(|e| format!("new report: {e}"))?);
    let mut rows = Vec::new();
    for (label, new_ms) in &fresh {
        match baseline.iter().find(|(b, _)| b == label) {
            Some((_, base_ms)) if *base_ms > 0.0 => {
                let delta = new_ms / base_ms - 1.0;
                rows.push((
                    label.clone(),
                    SeriesDelta::Compared {
                        baseline_ms: *base_ms,
                        new_ms: *new_ms,
                        delta,
                        regressed: delta > tolerance && new_ms - base_ms > min_delta_ms,
                    },
                ));
            }
            _ => rows.push((label.clone(), SeriesDelta::NewSeries)),
        }
    }
    for (label, _) in &baseline {
        if !fresh.iter().any(|(l, _)| l == label) {
            rows.push((label.clone(), SeriesDelta::NotMeasured));
        }
    }
    Ok(rows)
}

/// Runs the bench-regression gate: prints a per-series delta table and
/// returns `true` when no `*_1t_ms` series regressed beyond `tolerance`
/// (a fraction: `0.25` = 25 % slower fails) and `min_delta_ms` (the
/// absolute noise floor — see [`compare_1t_series`]).
///
/// # Errors
///
/// Returns a parse error description when either document is malformed.
pub fn check_regressions(
    baseline_json: &str,
    new_json: &str,
    tolerance: f64,
    min_delta_ms: f64,
) -> Result<bool, String> {
    let rows = compare_1t_series(baseline_json, new_json, tolerance, min_delta_ms)?;
    let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(6).max(6);
    println!(
        "bench-check: gating *_1t_ms series at +{:.0}% (noise floor {min_delta_ms} ms)",
        tolerance * 100.0
    );
    println!(
        "{:<width$}  {:>12}  {:>12}  {:>8}  status",
        "series", "baseline_ms", "new_ms", "delta"
    );
    let mut ok = true;
    for (label, delta) in &rows {
        match delta {
            SeriesDelta::Compared {
                baseline_ms,
                new_ms,
                delta,
                regressed,
            } => {
                let status = if *regressed { "REGRESSED" } else { "ok" };
                if *regressed {
                    ok = false;
                }
                println!(
                    "{label:<width$}  {baseline_ms:>12.3}  {new_ms:>12.3}  {:>+7.1}%  {status}",
                    delta * 100.0
                );
            }
            SeriesDelta::NewSeries => {
                println!(
                    "{label:<width$}  {:>12}  {:>12}  {:>8}  new (no baseline)",
                    "-", "-", "-"
                );
            }
            SeriesDelta::NotMeasured => {
                println!(
                    "{label:<width$}  {:>12}  {:>12}  {:>8}  not measured",
                    "-", "-", "-"
                );
            }
        }
    }
    if ok {
        println!("bench-check: PASS");
    } else {
        println!("bench-check: FAIL — at least one series regressed beyond the tolerance");
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "bench": "recombine",
      "schema_version": 3,
      "recombine_marginals": [
        {"k": 4, "seed_ms": 1.0, "engine_1t_ms": 0.5, "engine_mt_ms": 0.4},
        {"k": 8, "seed_ms": 10.0, "engine_1t_ms": 4.0, "engine_mt_ms": 2.0}
      ],
      "joint_reconstruction": [
        {"k": 4, "joint_1t_ms": 0.25, "bit_identical_to_baseline": true}
      ],
      "fragment_eval": {"reference_ms": 30.0, "engine_1t_ms": 20.0, "ok": null}
    }"#;

    #[test]
    fn parses_own_report_shape() {
        let v = parse(SAMPLE).unwrap();
        assert_eq!(
            v.get("schema_version").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("fragment_eval").unwrap().get("ok"),
            Some(&JsonValue::Null)
        );
        assert_eq!(
            v.get("bench"),
            Some(&JsonValue::Str("recombine".to_string()))
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn collects_1t_series_with_stable_labels() {
        let v = parse(SAMPLE).unwrap();
        let series = collect_1t_series(&v);
        let labels: Vec<&str> = series.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "recombine_marginals[k=4].engine_1t_ms",
                "recombine_marginals[k=8].engine_1t_ms",
                "joint_reconstruction[k=4].joint_1t_ms",
                "fragment_eval.engine_1t_ms",
            ]
        );
        assert_eq!(series[1].1, 4.0);
    }

    #[test]
    fn regression_gate_flags_only_series_beyond_tolerance() {
        let baseline = SAMPLE;
        let fresh = SAMPLE
            .replace("\"engine_1t_ms\": 4.0", "\"engine_1t_ms\": 5.5")
            .replace("\"engine_1t_ms\": 0.5", "\"engine_1t_ms\": 0.55");
        let rows = compare_1t_series(baseline, &fresh, 0.25, 0.1).unwrap();
        let by_label = |l: &str| {
            rows.iter()
                .find(|(label, _)| label.contains(l))
                .map(|(_, d)| d.clone())
                .unwrap()
        };
        // +10% stays under the 25% gate; +37.5% trips it.
        match by_label("[k=4].engine_1t_ms") {
            SeriesDelta::Compared { regressed, .. } => assert!(!regressed),
            other => panic!("unexpected {other:?}"),
        }
        match by_label("[k=8].engine_1t_ms") {
            SeriesDelta::Compared {
                regressed, delta, ..
            } => {
                assert!(regressed);
                assert!((delta - 0.375).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!check_regressions(baseline, &fresh, 0.25, 0.1).unwrap());
        assert!(check_regressions(baseline, baseline, 0.25, 0.1).unwrap());
    }

    #[test]
    fn noise_floor_shields_tiny_series() {
        // +100% relative but only +0.05 ms absolute: under the floor, so
        // the gate must not trip; a macroscopic series with the same
        // relative change must still fail.
        let baseline = r#"{"a": {"x_1t_ms": 0.05}, "b": {"y_1t_ms": 100.0}}"#;
        let fresh = r#"{"a": {"x_1t_ms": 0.1}, "b": {"y_1t_ms": 200.0}}"#;
        let rows = compare_1t_series(baseline, fresh, 0.25, 0.5).unwrap();
        match &rows.iter().find(|(l, _)| l == "a.x_1t_ms").unwrap().1 {
            SeriesDelta::Compared { regressed, .. } => assert!(!regressed),
            other => panic!("unexpected {other:?}"),
        }
        match &rows.iter().find(|(l, _)| l == "b.y_1t_ms").unwrap().1 {
            SeriesDelta::Compared { regressed, .. } => assert!(regressed),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!check_regressions(baseline, fresh, 0.25, 0.5).unwrap());
    }

    #[test]
    fn new_and_missing_series_do_not_gate() {
        let baseline = r#"{"a": [{"k": 4, "x_1t_ms": 1.0}, {"k": 8, "x_1t_ms": 2.0}]}"#;
        let fresh = r#"{"a": [{"k": 4, "x_1t_ms": 1.0}], "b": {"y_1t_ms": 9.0}}"#;
        let rows = compare_1t_series(baseline, fresh, 0.25, 0.1).unwrap();
        assert!(rows
            .iter()
            .any(|(l, d)| l == "b.y_1t_ms" && *d == SeriesDelta::NewSeries));
        assert!(rows
            .iter()
            .any(|(l, d)| l == "a[k=8].x_1t_ms" && *d == SeriesDelta::NotMeasured));
        assert!(check_regressions(baseline, fresh, 0.25, 0.1).unwrap());
    }
}
