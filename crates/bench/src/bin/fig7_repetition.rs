//! Figure 7: one phase-flip repetition-code cycle with 1 injected T gate,
//! across four simulators, with fidelity annotations.
//!
//! Reproduces both headline effects: (a) MPS outperforms everything because
//! the repetition-code cycle generates almost no entanglement, and (b) the
//! extended stabilizer's Metropolis sampler collapses in fidelity on this
//! sparse, weakly-connected distribution while SuperSim stays accurate.

use supersim::{
    ExtStabBackend, MpsBackend, Simulator, StatevectorBackend, SuperSim, SuperSimConfig,
};
use supersim_bench::{HarnessConfig, Sweep};
use workloads::RepetitionConfig;

fn main() {
    let config = HarnessConfig::from_env();
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(SuperSim::new(SuperSimConfig {
            shots: config.shots,
            ..SuperSimConfig::default()
        })),
        Box::new(StatevectorBackend),
        Box::new(MpsBackend::default()),
        Box::new(ExtStabBackend::default()),
    ];
    let mut sweep = Sweep::new(config, backends);
    // The paper annotates fidelity on the *complete* distribution here
    // (sparse metric), which is what exposes the extended stabilizer.
    sweep.sparse_fidelity = true;
    sweep.header(
        "fig7",
        "phase repetition code, 1 cycle, 1 T gate (size = total qubits)",
    );
    let max_data = if config.full { 16 } else { 10 };
    for d in 2..=max_data {
        let n = 2 * d - 1;
        sweep.point(n, |rep| {
            workloads::phase_repetition(RepetitionConfig {
                data_qubits: d,
                phase_noise: None,
                t_gates: 1,
                seed: (d * 17 + rep) as u64,
            })
            .circuit
        });
    }
}
