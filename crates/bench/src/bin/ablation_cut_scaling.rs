//! Ablation C: reconstruction cost vs number of injected T gates — the
//! paper's `4^k` wall (§VIII: "overall simulation cost that is exponential
//! in the number of non-Cliffords").

use std::time::Instant;
use supersim::{SuperSim, SuperSimConfig};

fn main() {
    let full = std::env::var("FULL").map(|v| v == "1").unwrap_or(false);
    let max_t = if full { 6 } else { 5 };
    println!("# ablation_cut_scaling: HWEA n=12 r=3, runtime vs injected T count");
    println!("t_gates\tcuts\tvariants\tseconds");
    for t in 1..=max_t {
        let w = workloads::hwea(12, 3, t, 31 + t as u64);
        let cfg = SuperSimConfig {
            shots: 1000,
            cut_strategy: supersim::CutStrategy::IsolateNonClifford { max_cuts: 12 },
            joint_support_limit: 0,
            ..SuperSimConfig::default()
        };
        let t0 = Instant::now();
        match SuperSim::new(cfg).run(&w.circuit) {
            Ok(r) => println!(
                "{t}\t{}\t{}\t{:.4}",
                r.report.num_cuts,
                r.report.num_variants,
                t0.elapsed().as_secs_f64()
            ),
            Err(e) => println!("{t}\t-\t-\tskip ({e})"),
        }
    }
}
