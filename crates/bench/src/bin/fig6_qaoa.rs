//! Figure 6: QAOA MaxCut on Sherrington–Kirkpatrick graphs (1 round,
//! all-to-all connectivity, 1 injected T gate) across four simulators.
//!
//! Reproduces the crossover of Fig. 6: statevector and MPS beat SuperSim at
//! small sizes but fall behind (or time out) as width grows, while
//! SuperSim's cost stays modest. The all-to-all couplings make this much
//! harder for MPS than the repetition code of Fig. 7.

use supersim::{
    ExtStabBackend, MpsBackend, Simulator, StatevectorBackend, SuperSim, SuperSimConfig,
};
use supersim_bench::{HarnessConfig, Sweep};

fn main() {
    let config = HarnessConfig::from_env();
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(SuperSim::new(SuperSimConfig {
            shots: config.shots,
            ..SuperSimConfig::default()
        })),
        Box::new(StatevectorBackend),
        Box::new(MpsBackend::default()),
        Box::new(ExtStabBackend::default()),
    ];
    let mut sweep = Sweep::new(config, backends);
    sweep.header("fig6", "QAOA SK MaxCut, 1 round, 1 non-Clifford gate");
    let sizes: Vec<usize> = if config.full {
        (3..=26).collect()
    } else {
        vec![3, 5, 7, 9, 11, 13, 15, 18, 21, 24]
    };
    for n in sizes {
        sweep.point(n, |rep| {
            workloads::qaoa_sk(n, 1, 1, (n * 31 + rep) as u64).circuit
        });
    }
}
