//! Ablation A: reconstruction fidelity vs shot budget, with and without the
//! maximum-likelihood fragment-tomography correction and with and without
//! Clifford `⟨P⟩` snapping.
//!
//! Expectation (paper §V-C and §IX): MLFT and snapping both mitigate
//! sampling error, so the corrected curves should dominate the raw one at
//! every shot budget.

use metrics::Distribution;
use qcir::Circuit;
use supersim::{SuperSim, SuperSimConfig};

fn fidelity(c: &Circuit, cfg: &SuperSimConfig, reps: usize) -> f64 {
    let sv = svsim::StateVec::run(c).expect("reference fits");
    let reference = Distribution::from_pairs(c.num_qubits(), sv.distribution(1e-14));
    let mut total = 0.0;
    for rep in 0..reps {
        let mut cfg = cfg.clone();
        cfg.seed = rep as u64 * 7919 + 1;
        let result = SuperSim::new(cfg).run(c).expect("pipeline runs");
        let dist = result.distribution.expect("joint available");
        total += reference.hellinger_fidelity(&dist);
    }
    total / reps as f64
}

fn main() {
    let full = std::env::var("FULL").map(|v| v == "1").unwrap_or(false);
    let reps = if full { 20 } else { 6 };
    let w = workloads::hwea(8, 3, 2, 42);
    println!("# ablation_mlft: HWEA n=8 r=3 t=2, Hellinger fidelity vs shots");
    println!("shots\traw\tmlft\tsnap\tmlft+snap");
    let budgets = if full {
        vec![50, 100, 200, 400, 800, 1600, 3200]
    } else {
        vec![50, 150, 400, 1200]
    };
    for shots in budgets {
        let base = SuperSimConfig {
            shots,
            mlft: false,
            clifford_snap: false,
            ..SuperSimConfig::default()
        };
        let raw = fidelity(&w.circuit, &base, reps);
        let mlft = fidelity(
            &w.circuit,
            &SuperSimConfig {
                mlft: true,
                ..base.clone()
            },
            reps,
        );
        let snap = fidelity(
            &w.circuit,
            &SuperSimConfig {
                clifford_snap: true,
                ..base.clone()
            },
            reps,
        );
        let both = fidelity(
            &w.circuit,
            &SuperSimConfig {
                mlft: true,
                clifford_snap: true,
                ..base
            },
            reps,
        );
        println!("{shots}\t{raw:.4}\t{mlft:.4}\t{snap:.4}\t{both:.4}");
    }
}
