//! Figure 1: simulation time vs qubit count for random Clifford circuits
//! (depth = width), stabilizer simulator vs dense statevector.
//!
//! Paper protocol: 10k shots, averaged over 100 random circuits, n = 2..20.
//! The quick grid uses fewer instances; `FULL=1` restores paper scale.

use supersim::{Simulator, StabilizerBackend, StatevectorBackend};
use supersim_bench::{HarnessConfig, Sweep};

fn main() {
    let mut config = HarnessConfig::from_env();
    // Fig. 1 uses 10k shots in the paper.
    if std::env::var("SHOTS").is_err() {
        config.shots = if config.full { 10_000 } else { 2000 };
    }
    let instances = if config.full { 100 } else { 10 };
    config.reps = instances;

    let backends: Vec<Box<dyn Simulator>> =
        vec![Box::new(StabilizerBackend), Box::new(StatevectorBackend)];
    let mut sweep = Sweep::new(config, backends);
    sweep.header(
        "fig1",
        "random Clifford circuits, depth = width, stabilizer vs statevector",
    );
    let max_n = if config.full { 20 } else { 16 };
    for n in (2..=max_n).step_by(2) {
        sweep.point(n, |rep| {
            workloads::random_clifford(n, n, (n * 1000 + rep) as u64)
        });
    }
}
