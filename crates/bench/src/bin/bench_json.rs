//! Perf-trajectory benchmark: parallel recombination + fragment
//! evaluation, written as `BENCH_recombine.json` at the repo root.
//!
//! Three measurements per `k` (number of cuts):
//!
//! * `seed_ms` — a faithful replica of the seed implementation's
//!   sequential `4^k` marginals loop (per-assignment prefix/suffix
//!   allocations, per-tensor `slice_max_abs` checks), timed through the
//!   same public `FragmentTensor` API it used;
//! * `engine_1t_ms` — the chunked contraction engine at one thread;
//! * `engine_mt_ms` — the engine with one worker per available core.
//!
//! A `joint_reconstruction` series compares the interned-id joint engine
//! against the frozen pre-intern baseline
//! (`cutkit::reference_joint_btreemap`: per-chunk `BTreeMap<Bits, f64>`
//! accumulation, one `Bits` clone per partial term, clone-per-merge across
//! chunks), asserting the outputs bit-identical before timing is reported.
//!
//! A `fragment_eval` series compares the interned-accumulator evaluation
//! pool against the frozen pre-intern baseline
//! (`cutkit::reference_evaluate_btreemap`: per-chunk
//! `BTreeMap<Bits, Vec<f64>>` accumulation, one ordered-map walk and key
//! clone per touch), and an `mlft` series does the same for the
//! correction stage (`cutkit::reference_correct_btreemap`). Both assert
//! the engine bit-identical to the baseline at 1, 2, and 8 threads before
//! timing is reported.
//!
//! A `tableau` series compares the word-parallel row-major tableau
//! engine ([`stabsim::TableauSim`]) against the frozen bit-at-a-time
//! column-major baseline ([`stabsim::ReferenceTableauSim`]):
//! `measure_24q` (collapse measurement sweeps), `rowsum_48q` (repeated
//! deterministic sweeps that live in the scratch-row rowsum chain), and
//! the `sampled_6q` workload end-to-end through each engine
//! (`EvalOptions::tableau_engine` — packed, sparse-gate, and reference),
//! asserting identical outcome streams / bit-identical tensors before
//! timing is reported. The reference arm pins the whole Clifford
//! pipeline to the frozen baseline (bit-at-a-time tableau plus the
//! per-shot affine sampling loop), so the end-to-end ratio measures the
//! accumulated optimization win, not just the tableau kernel swap.
//!
//! A `gate_apply` series times pure Clifford gate application on
//! gate-dense circuits at n ∈ {24, 48, 96} — the stage the column-major
//! [`stabsim::SparseGateTableauSim`] targets with its `O(n/64)`-word
//! column kernels — reference vs packed vs sparse-gate, with the
//! post-run measurement streams of all three engines asserted identical
//! before timing is reported.
//!
//! A `runtime_reuse` series runs first (while the process-global runtime
//! pool is still cold): one batch that pays the worker spawns, then warm
//! batches on the persistent pool, asserting zero new spawns and
//! bit-identical output. A `plan_cache` series times a cut-bound plan
//! rebuild against a fingerprint-keyed cache hit (same `Arc` returned).
//!
//! A `truncated_sweep` series exercises the error-budgeted recombination
//! dial (`ExecParams::with_error_budget`) on a T-ladder plan: the exact
//! sweep against three budgets, asserting the largest budget buys at
//! least 2x recombination latency and that every point's reported
//! skipped-mass bound dominates its measured L1 distance from the exact
//! distribution.
//!
//! Plus the §IX sparse-contraction ablation. Every engine result is
//! checked bit-identical between thread counts before timing is reported.
//!
//! Environment knobs: `REPS` (samples per point, default 3; the best is
//! kept), `MAX_K` (default 12), `BENCH_CHECK_TOLERANCE` (gate fraction,
//! default 0.25), `BENCH_CHECK_MIN_DELTA_MS` (absolute noise floor,
//! default 0.5).
//!
//! With `--check`, the previously committed `BENCH_recombine.json` is
//! read before being overwritten and every `*_1t_ms` series is gated
//! against it: a per-series delta table is printed and the process exits
//! nonzero when any series regressed beyond the tolerance — the CI
//! bench-regression gate.

use cutkit::{
    correct_tensors, cut_circuit, reference_correct_btreemap, reference_evaluate_btreemap,
    reference_joint_btreemap, synthetic_dense_chain, CutStrategy, EvalMode, EvalOptions,
    FragmentTensor, MlftOptions, Reconstructor, TableauEngine, TensorOptions,
};
use qcir::{Bits, Circuit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stabsim::{ReferenceTableauSim, SparseGateTableauSim, TableauSim};
use std::time::Instant;
use supersim::{ExecParams, RunResult, SuperSim, SuperSimConfig};

/// The seed implementation's marginals loop, reproduced verbatim against
/// the public tensor API: one `4^k` sweep, fresh prefix/suffix vectors per
/// assignment, `slice_max_abs` checked per tensor per assignment.
fn seed_marginals(tensors: &[FragmentTensor], num_cuts: usize, n_qubits: usize) -> Vec<[f64; 2]> {
    let nf = tensors.len();
    let tol = 1e-12;
    let mut marg = vec![[0.0f64; 2]; n_qubits];
    let mut mass = 0.0;
    let total = 1u64 << (2 * num_cuts);
    let mut indices = vec![0usize; nf];
    for kappa in 0..total {
        let digit = |cut: usize| ((kappa >> (2 * cut)) & 0b11) as usize;
        let mut skip = false;
        for (fi, t) in tensors.iter().enumerate() {
            let idx = t.pauli_index(digit);
            if t.slice_max_abs(idx) <= tol {
                skip = true;
                break;
            }
            indices[fi] = idx;
        }
        if skip {
            continue;
        }
        let mut prefix = vec![1.0; nf + 1];
        for f in 0..nf {
            prefix[f + 1] = prefix[f] * tensors[f].total(indices[f]);
        }
        let mut suffix = vec![1.0; nf + 1];
        for f in (0..nf).rev() {
            suffix[f] = suffix[f + 1] * tensors[f].total(indices[f]);
        }
        mass += prefix[nf];
        for (f, t) in tensors.iter().enumerate() {
            let excl = prefix[f] * suffix[f + 1];
            if excl == 0.0 {
                continue;
            }
            for (bit, &global) in t.output_globals().iter().enumerate() {
                for v in 0..2 {
                    marg[global][v] += excl * t.marginal(bit, v == 1, indices[f]);
                }
            }
        }
    }
    if mass.abs() > 1e-12 {
        for m in &mut marg {
            m[0] /= mass;
            m[1] /= mass;
        }
    }
    for m in &mut marg {
        m[0] = m[0].clamp(0.0, 1.0);
        m[1] = m[1].clamp(0.0, 1.0);
        let s = m[0] + m[1];
        if s > 0.0 {
            m[0] /= s;
            m[1] /= s;
        }
    }
    marg
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn max_abs_diff(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x[0] - y[0]).abs().max((x[1] - y[1]).abs()))
        .fold(0.0, f64::max)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Bit-exact tensor comparison: same support, same emission order, same
/// coefficient float bits.
fn tensors_bit_identical(a: &[FragmentTensor], b: &[FragmentTensor]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(s, p)| {
            s.support_len() == p.support_len()
                && s.iter().zip(p.iter()).all(|((sb, sv), (pb, pv))| {
                    sb == pb && sv.iter().zip(pv).all(|(x, y)| x.to_bits() == y.to_bits())
                })
        })
}

/// Times one evaluation-pool workload against the frozen `BTreeMap`
/// reference, asserting the engine bit-identical to the baseline at 1, 2,
/// and 8 threads, and returns the series as a JSON object body.
fn bench_eval_pool(
    label: &str,
    fragments: &[cutkit::Fragment],
    eval: &EvalOptions,
    opts: &TensorOptions,
    seeds: &[u64],
    reps: usize,
    cores: usize,
) -> String {
    let (ref_ms, ref_tensors) = time_best(reps, || {
        reference_evaluate_btreemap(fragments, eval, opts, seeds).unwrap()
    });
    let (one_ms, seq_tensors) = time_best(reps, || {
        cutkit::evaluate_fragment_tensors(fragments, eval, opts, seeds, 1).unwrap()
    });
    let (multi_ms, par_tensors) = time_best(reps, || {
        cutkit::evaluate_fragment_tensors(fragments, eval, opts, seeds, cores).unwrap()
    });
    let identical = tensors_bit_identical(&seq_tensors, &par_tensors);
    assert!(identical, "{label}: evaluation pool changed results");
    // Parity at 1/2/8 threads: the 1-thread result is already in hand.
    assert!(
        tensors_bit_identical(&seq_tensors, &ref_tensors),
        "{label}: fragment eval at 1 thread diverged from the BTreeMap baseline"
    );
    for threads in [2usize, 8] {
        let engine =
            cutkit::evaluate_fragment_tensors(fragments, eval, opts, seeds, threads).unwrap();
        assert!(
            tensors_bit_identical(&engine, &ref_tensors),
            "{label}: fragment eval at {threads} threads diverged from the BTreeMap baseline"
        );
    }
    let speedup_1t = ref_ms / one_ms;
    let speedup_mt = ref_ms / multi_ms;
    let variants: usize = fragments.iter().map(|f| f.num_variants()).sum();
    println!(
        "fragment eval [{label}] ({} fragments, {variants} variants): \
         reference {ref_ms:.2} ms, engine(1t) {one_ms:.2} ms ({speedup_1t:.2}x), \
         engine({cores} workers) {multi_ms:.2} ms ({speedup_mt:.2}x)",
        fragments.len(),
    );
    format!(
        "{{\"fragments\": {}, \"variants\": {variants}, \"reference_ms\": {ref_ms:.3}, \
         \"engine_1t_ms\": {one_ms:.3}, \"engine_mt_ms\": {multi_ms:.3}, \
         \"speedup_1t\": {speedup_1t:.3}, \"speedup_mt\": {speedup_mt:.3}, \
         \"bit_identical_to_baseline\": true, \"bit_identical_across_threads\": {identical}}}",
        fragments.len(),
    )
}

/// A reproducible random Clifford circuit for the tableau microbenches.
fn random_clifford_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut gen = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match gen.random_range(0..6) {
            0 => {
                c.h(gen.random_range(0..n));
            }
            1 => {
                c.s(gen.random_range(0..n));
            }
            2 => {
                c.x(gen.random_range(0..n));
            }
            _ => {
                let a = gen.random_range(0..n);
                let mut b = gen.random_range(0..n);
                if a == b {
                    b = (b + 1) % n;
                }
                c.cx(a, b);
            }
        }
    }
    c
}

/// Rolling hash of a measurement-outcome stream, so equality checks
/// cover every measured bit without storing them all.
fn fold_outcome(acc: u64, bit: bool) -> u64 {
    (acc ^ bit as u64)
        .rotate_left(5)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Times collapse sampling — clone a prepared `n`-qubit stabilizer state
/// and measure every qubit, `iters` shots per rep — on the packed engine
/// against the frozen bit-at-a-time reference, asserting identical
/// outcome streams for the same seed. State preparation (the gate-bound
/// part) happens once outside the timed region; the timed loop is the
/// measurement collapse the row-major transpose targets.
fn bench_tableau_measure(label: &str, n: usize, iters: usize, reps: usize) -> String {
    let circuit = random_clifford_circuit(n, 3 * n, 7 + n as u64);
    let mut rng = StdRng::seed_from_u64(1);
    let reference_sim = ReferenceTableauSim::run(&circuit, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let packed_sim = TableauSim::run(&circuit, &mut rng).unwrap();
    let (reference_ms, reference_fold) = time_best(reps, || {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut acc = 0u64;
        for _ in 0..iters {
            let mut sim = reference_sim.clone();
            for q in 0..n {
                acc = fold_outcome(acc, sim.measure(q, &mut rng));
            }
        }
        acc
    });
    let (packed_ms, packed_fold) = time_best(reps, || {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut acc = 0u64;
        for _ in 0..iters {
            let mut sim = packed_sim.clone();
            for q in 0..n {
                acc = fold_outcome(acc, sim.measure(q, &mut rng));
            }
        }
        acc
    });
    assert_eq!(
        packed_fold, reference_fold,
        "{label}: packed engine outcome stream diverged from the reference"
    );
    let speedup = reference_ms / packed_ms;
    println!(
        "tableau {label} (n={n}, {iters} collapse shots): \
         reference {reference_ms:.2} ms, packed {packed_ms:.2} ms ({speedup:.2}x)"
    );
    format!(
        "{{\"n\": {n}, \"iters\": {iters}, \
         \"reference_ms\": {reference_ms:.3}, \"packed_1t_ms\": {packed_ms:.3}, \
         \"speedup_1t\": {speedup:.3}, \"identical_outcomes\": true}}"
    )
}

/// Times pure rowsum chains: collapse a prepared `n`-qubit state once
/// (untimed), then repeatedly re-measure every qubit — all outcomes
/// deterministic, so each measurement is exactly one stabilizer-product
/// accumulation (`n` potential rowsums). Outcome streams are asserted
/// identical between the engines.
fn bench_tableau_rowsum(label: &str, n: usize, iters: usize, reps: usize) -> String {
    let circuit = random_clifford_circuit(n, 3 * n, 7 + n as u64);
    let mut rng = StdRng::seed_from_u64(1);
    let mut reference_sim = ReferenceTableauSim::run(&circuit, &mut rng).unwrap();
    for q in 0..n {
        reference_sim.measure(q, &mut rng);
    }
    let mut rng = StdRng::seed_from_u64(1);
    let mut packed_sim = TableauSim::run(&circuit, &mut rng).unwrap();
    for q in 0..n {
        packed_sim.measure(q, &mut rng);
    }
    // Deterministic measurements draw no randomness and do not move the
    // state, so the timed sweeps need no per-iteration reseeding.
    let mut rng = StdRng::seed_from_u64(2);
    let (reference_ms, reference_fold) = time_best(reps, || {
        let mut acc = 0u64;
        for _ in 0..iters {
            for q in 0..n {
                acc = fold_outcome(acc, reference_sim.measure(q, &mut rng));
            }
        }
        acc
    });
    let mut rng = StdRng::seed_from_u64(2);
    let (packed_ms, packed_fold) = time_best(reps, || {
        let mut acc = 0u64;
        for _ in 0..iters {
            for q in 0..n {
                acc = fold_outcome(acc, packed_sim.measure(q, &mut rng));
            }
        }
        acc
    });
    assert_eq!(
        packed_fold, reference_fold,
        "{label}: packed engine outcome stream diverged from the reference"
    );
    let speedup = reference_ms / packed_ms;
    println!(
        "tableau {label} (n={n}, {iters} deterministic sweeps): \
         reference {reference_ms:.2} ms, packed {packed_ms:.2} ms ({speedup:.2}x)"
    );
    format!(
        "{{\"n\": {n}, \"iters\": {iters}, \
         \"reference_ms\": {reference_ms:.3}, \"packed_1t_ms\": {packed_ms:.3}, \
         \"speedup_1t\": {speedup:.3}, \"identical_outcomes\": true}}"
    )
}

/// Times pure Clifford gate application — the stage the column-major
/// sparse-gate engine targets — on a gate-dense random circuit: each
/// timed iteration replays the full circuit from `|0…0⟩` (noiseless, so
/// no RNG draws land in the timed region). The three engines' post-run
/// measurement streams are folded and asserted identical outside the
/// timed region.
fn bench_gate_apply(n: usize, reps: usize) -> String {
    let gates = 40 * n;
    let circuit = random_clifford_circuit(n, gates, 21 + n as u64);
    let iters = (400 / n).max(2);
    let mut rng = StdRng::seed_from_u64(1);
    let (reference_ms, _) = time_best(reps, || {
        for _ in 0..iters {
            std::hint::black_box(ReferenceTableauSim::run(&circuit, &mut rng).unwrap());
        }
    });
    let (packed_ms, _) = time_best(reps, || {
        for _ in 0..iters {
            std::hint::black_box(TableauSim::run(&circuit, &mut rng).unwrap());
        }
    });
    let (sparse_ms, _) = time_best(reps, || {
        for _ in 0..iters {
            std::hint::black_box(SparseGateTableauSim::run(&circuit, &mut rng).unwrap());
        }
    });
    // Outcome-stream identity (untimed): measure every qubit of the
    // prepared state on each engine with the same seed and compare the
    // folded streams.
    let fold_all = |mut acc: u64, f: &mut dyn FnMut(usize, &mut StdRng) -> bool| {
        let mut mrng = StdRng::seed_from_u64(4242);
        for q in 0..n {
            acc = fold_outcome(acc, f(q, &mut mrng));
        }
        acc
    };
    let mut rng = StdRng::seed_from_u64(9);
    let mut reference_sim = ReferenceTableauSim::run(&circuit, &mut rng).unwrap();
    let reference_fold = fold_all(0, &mut |q, r| reference_sim.measure(q, r));
    let mut rng = StdRng::seed_from_u64(9);
    let mut packed_sim = TableauSim::run(&circuit, &mut rng).unwrap();
    let packed_fold = fold_all(0, &mut |q, r| packed_sim.measure(q, r));
    let mut rng = StdRng::seed_from_u64(9);
    let mut sparse_sim = SparseGateTableauSim::run(&circuit, &mut rng).unwrap();
    let sparse_fold = fold_all(0, &mut |q, r| sparse_sim.measure(q, r));
    assert_eq!(
        packed_fold, reference_fold,
        "gate_apply n={n}: packed outcome stream diverged from the reference"
    );
    assert_eq!(
        sparse_fold, reference_fold,
        "gate_apply n={n}: sparse-gate outcome stream diverged from the reference"
    );
    let speedup_vs_packed = packed_ms / sparse_ms;
    let speedup_vs_reference = reference_ms / sparse_ms;
    println!(
        "gate_apply (n={n}, {gates} gates x {iters} replays): \
         reference {reference_ms:.2} ms, packed {packed_ms:.2} ms, \
         sparse-gate {sparse_ms:.2} ms ({speedup_vs_packed:.2}x vs packed)"
    );
    format!(
        "{{\"n\": {n}, \"gates\": {gates}, \"iters\": {iters}, \
         \"reference_ms\": {reference_ms:.3}, \"packed_ms\": {packed_ms:.3}, \
         \"sparse_gate_1t_ms\": {sparse_ms:.3}, \
         \"speedup_vs_packed\": {speedup_vs_packed:.3}, \
         \"speedup_vs_reference\": {speedup_vs_reference:.3}, \
         \"identical_outcomes\": true}}"
    )
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recombine.json");
    // Snapshot the committed baseline before this run overwrites it.
    let committed = if check {
        std::fs::read_to_string(path).ok()
    } else {
        None
    };
    let cores = runtime::default_workers();
    let reps = env_usize("REPS", 3);
    let max_k = env_usize("MAX_K", 12);

    // --- Runtime pool reuse: cold spawn vs warm persistent pool --------
    // This series must run FIRST: the cold measurement relies on the
    // process-global runtime pool never having been touched, so it pays
    // the worker spawns that every warm batch — and every later section
    // of this benchmark — gets for free.
    let pool_circuits: Vec<Circuit> = vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6),
        workloads::hwea(4, 1, 2, 44).circuit,
    ];
    // Plan caching off: this series isolates worker reuse.
    let pool_cfg = SuperSimConfig::builder()
        .shots(300)
        .seed(23)
        .mlft(true)
        .parallel(true)
        .threads(8)
        .plan_cache_capacity(0)
        .build()
        .unwrap();
    let pool_sim = SuperSim::new(pool_cfg.clone());
    assert_eq!(
        pool_sim.stats().pool.spawned_total,
        0,
        "runtime_reuse must be the first pool user"
    );
    let t_cold = Instant::now();
    let cold_runs = pool_sim.run_batch(&pool_circuits);
    let cold_mt_ms = t_cold.elapsed().as_secs_f64() * 1e3;
    let spawned_cold = pool_sim.stats().pool.spawned_total;
    let (warm_mt_ms, warm_runs) = time_best(reps, || pool_sim.run_batch(&pool_circuits));
    let spawned_warm = pool_sim.stats().pool.spawned_total;
    assert_eq!(
        spawned_cold, spawned_warm,
        "runtime_reuse: warm batches must reuse the live workers"
    );
    let (pool_1t_ms, pool_seq_runs) = time_best(reps, || {
        SuperSim::new(
            pool_cfg
                .clone()
                .into_builder()
                .parallel(false)
                .threads(0)
                .build()
                .unwrap(),
        )
        .run_batch(&pool_circuits)
    });
    let pool_identical = cold_runs
        .iter()
        .zip(&warm_runs)
        .chain(pool_seq_runs.iter().zip(&warm_runs))
        .all(|(a, b)| a.as_ref().unwrap().bit_identical_to(b.as_ref().unwrap()));
    assert!(
        pool_identical,
        "runtime_reuse: cold/warm/sequential batches diverged"
    );
    println!(
        "runtime_reuse ({} jobs, 8 workers): cold {cold_mt_ms:.2} ms \
         ({spawned_cold} spawns), warm {warm_mt_ms:.2} ms (0 new spawns), \
         sequential {pool_1t_ms:.2} ms",
        pool_circuits.len(),
    );
    let runtime_reuse_row = format!(
        "{{\"jobs\": {}, \"cold_mt_ms\": {cold_mt_ms:.3}, \
         \"warm_mt_ms\": {warm_mt_ms:.3}, \"batch_1t_ms\": {pool_1t_ms:.3}, \
         \"workers_spawned_cold\": {spawned_cold}, \
         \"workers_spawned_warm_delta\": 0, \"bit_identical\": {pool_identical}}}",
        pool_circuits.len(),
    );

    // --- Plan cache: fingerprint-keyed hit vs rebuild ------------------
    // The cut-bound t_ladder under a tight budget: the greedy merge pass
    // dominates planning, which is exactly the cost a cache hit elides.
    let cache_ladder = workloads::t_ladder(2, 150);
    let cache_cfg = SuperSimConfig::builder()
        .cut_strategy(CutStrategy::IsolateNonClifford { max_cuts: 4 })
        .build()
        .unwrap();
    let miss_sim = SuperSim::new(
        cache_cfg
            .clone()
            .into_builder()
            .plan_cache_capacity(0)
            .build()
            .unwrap(),
    );
    let (plan_miss_1t_ms, _) = time_best(reps, || miss_sim.plan(&cache_ladder.circuit).unwrap());
    let hit_sim = SuperSim::new(cache_cfg.clone());
    let seeded_plan = hit_sim.plan(&cache_ladder.circuit).unwrap();
    let (plan_hit_1t_ms, hit_plan) =
        time_best(reps, || hit_sim.plan(&cache_ladder.circuit).unwrap());
    assert!(
        std::sync::Arc::ptr_eq(&seeded_plan, &hit_plan),
        "plan_cache: hit must return the cached plan"
    );
    let cache_stats = hit_sim.stats().plan_cache;
    assert_eq!(
        cache_stats.misses, 1,
        "plan_cache: only the seed plan misses"
    );
    let plan_cache_speedup = plan_miss_1t_ms / plan_hit_1t_ms.max(1e-6);
    println!(
        "plan_cache (t_ladder {} ops, k={}): rebuild {plan_miss_1t_ms:.2} ms, \
         hit {plan_hit_1t_ms:.4} ms ({plan_cache_speedup:.0}x), {} hits",
        cache_ladder.circuit.len(),
        seeded_plan.num_cuts(),
        cache_stats.hits,
    );
    let plan_cache_row = format!(
        "{{\"ops\": {}, \"cuts\": {}, \"miss_1t_ms\": {plan_miss_1t_ms:.3}, \
         \"hit_1t_ms\": {plan_hit_1t_ms:.4}, \"speedup\": {plan_cache_speedup:.1}, \
         \"hits\": {}, \"arc_identity\": true}}",
        cache_ladder.circuit.len(),
        seeded_plan.num_cuts(),
        cache_stats.hits,
    );

    // --- Recombination: marginals at k = 4 / 8 / 12 ------------------
    let mut recombine_rows = Vec::new();
    for k in [4usize, 8, 12] {
        if k > max_k {
            continue;
        }
        let point_reps = if k >= 12 { 1 } else { reps };
        let (tensors, n_qubits) = synthetic_dense_chain(k, 1);
        let (seed_ms, seed_marg) = time_best(point_reps, || seed_marginals(&tensors, k, n_qubits));
        let (one_ms, one_marg) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(1)
                .marginals()
        });
        let (multi_ms, multi_marg) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(0)
                .marginals()
        });
        let identical = one_marg == multi_marg;
        let seed_diff = max_abs_diff(&seed_marg, &one_marg);
        assert!(identical, "k={k}: parallel result differs from sequential");
        assert!(
            seed_diff < 1e-9,
            "k={k}: engine diverged from seed algorithm"
        );
        let speedup_1t = seed_ms / one_ms;
        let speedup_mt = seed_ms / multi_ms;
        println!(
            "recombine k={k}: seed {seed_ms:.2} ms, engine(1t) {one_ms:.2} ms \
             ({speedup_1t:.2}x), engine({cores} workers) {multi_ms:.2} ms ({speedup_mt:.2}x)"
        );
        recombine_rows.push(format!(
            "    {{\"k\": {k}, \"seed_ms\": {seed_ms:.3}, \"engine_1t_ms\": {one_ms:.3}, \
             \"engine_mt_ms\": {multi_ms:.3}, \"speedup_1t\": {speedup_1t:.3}, \
             \"speedup_mt\": {speedup_mt:.3}, \"bit_identical_across_threads\": {identical}, \
             \"max_abs_diff_vs_seed\": {seed_diff:e}}}"
        ));
    }

    // --- Joint reconstruction: interned-id engine vs BTreeMap baseline
    let mut joint_rows = Vec::new();
    for k in [4usize, 6, 8] {
        if k > max_k {
            continue;
        }
        let point_reps = if k >= 8 { 1.max(reps / 3) } else { reps };
        let (tensors, n_qubits) = synthetic_dense_chain(k, 1);
        let support: usize = tensors.iter().map(|t| t.support_len().max(1)).product();
        let (seed_ms, seed_pairs) = time_best(point_reps, || {
            reference_joint_btreemap(&tensors, k, n_qubits, true)
        });
        let (one_ms, one_dist) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(1)
                .joint(usize::MAX)
        });
        let (multi_ms, multi_dist) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(0)
                .joint(usize::MAX)
        });
        let one_pairs: Vec<(Bits, f64)> = one_dist.iter().map(|(b, p)| (b.clone(), p)).collect();
        let multi_pairs: Vec<(Bits, f64)> =
            multi_dist.iter().map(|(b, p)| (b.clone(), p)).collect();
        let identical = one_pairs == multi_pairs;
        assert!(identical, "k={k}: parallel joint differs from sequential");
        assert_eq!(
            one_pairs.len(),
            seed_pairs.len(),
            "k={k}: joint support diverged from baseline"
        );
        for ((gb, gw), (eb, ew)) in one_pairs.iter().zip(&seed_pairs) {
            assert!(
                gb == eb && gw.to_bits() == ew.to_bits(),
                "k={k}: joint diverged from BTreeMap baseline at {gb}"
            );
        }
        let speedup_1t = seed_ms / one_ms;
        let speedup_mt = seed_ms / multi_ms;
        println!(
            "joint k={k} (support {support}): seed {seed_ms:.2} ms, \
             engine(1t) {one_ms:.2} ms ({speedup_1t:.2}x), \
             engine({cores} workers) {multi_ms:.2} ms ({speedup_mt:.2}x)"
        );
        joint_rows.push(format!(
            "    {{\"k\": {k}, \"support\": {support}, \"seed_joint_ms\": {seed_ms:.3}, \
             \"joint_1t_ms\": {one_ms:.3}, \"joint_mt_ms\": {multi_ms:.3}, \
             \"speedup_1t\": {speedup_1t:.3}, \"speedup_mt\": {speedup_mt:.3}, \
             \"bit_identical_to_baseline\": true, \
             \"bit_identical_across_threads\": {identical}}}"
        ));
    }

    // --- Fragment evaluation: shared (fragment × variant) pool -------
    // Two workloads: a realistic sampled circuit (simulation-bound, shows
    // the end-to-end effect) and a wide exact-Clifford fragment whose
    // variants enumerate thousands of outcomes (accumulation-bound — the
    // stage the interned rewrite targets).
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 1..6 {
        circuit.cx(q - 1, q);
    }
    for q in [1usize, 3, 5] {
        circuit.t(q);
    }
    for q in 0..6 {
        circuit.h(q);
    }
    let cut = cut_circuit(&circuit, CutStrategy::default()).unwrap();
    let eval = EvalOptions {
        mode: EvalMode::Sampled { shots: 4000 },
        ..Default::default()
    };
    let opts = TensorOptions::default();
    let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 77 + i).collect();
    let sampled_row = bench_eval_pool(
        "sampled_6q",
        &cut.fragments,
        &eval,
        &opts,
        &seeds,
        reps,
        cores,
    );

    // Wide workload: a 15-qubit line graph state (full-rank 2^15 output
    // support, one connected Clifford fragment) with one T forcing a cut.
    // Each variant enumerates the whole support, so per-outcome
    // accumulator touches dominate the stage.
    let mut wide = Circuit::new(15);
    for q in 0..15 {
        wide.h(q);
    }
    for q in 1..15 {
        wide.cz(q - 1, q);
    }
    wide.t(14);
    let wide_cut = cut_circuit(&wide, CutStrategy::default()).unwrap();
    let wide_eval = EvalOptions {
        mode: EvalMode::Exact,
        ..Default::default()
    };
    let wide_seeds: Vec<u64> = (0..wide_cut.fragments.len() as u64)
        .map(|i| 313 + i)
        .collect();
    let wide_row = bench_eval_pool(
        "wide_exact",
        &wide_cut.fragments,
        &wide_eval,
        &opts,
        &wide_seeds,
        reps,
        cores,
    );

    // --- Tableau engine: packed row-major vs frozen bit-at-a-time ------
    // Two microbenches (collapse sampling at 24 qubits; all-deterministic
    // stabilizer-product sweeps at 48 qubits, i.e. pure rowsum chains)
    // plus the existing sampled_6q workload run end-to-end through each
    // engine via `EvalOptions::tableau_engine`.
    let measure_row = bench_tableau_measure("measure_24q", 24, 600, reps);
    let rowsum_row = bench_tableau_rowsum("rowsum_48q", 48, 300, reps);
    let (tab_ref_ms, tab_ref_tensors) = time_best(reps, || {
        let reference_eval = EvalOptions {
            tableau_engine: TableauEngine::Reference,
            ..eval.clone()
        };
        cutkit::evaluate_fragment_tensors(&cut.fragments, &reference_eval, &opts, &seeds, 1)
            .unwrap()
    });
    let (tab_1t_ms, tab_tensors) = time_best(reps, || {
        cutkit::evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, 1).unwrap()
    });
    let (tab_sparse_ms, tab_sparse_tensors) = time_best(reps, || {
        let sparse_eval = EvalOptions {
            tableau_engine: TableauEngine::SparseGate,
            ..eval.clone()
        };
        cutkit::evaluate_fragment_tensors(&cut.fragments, &sparse_eval, &opts, &seeds, 1).unwrap()
    });
    assert!(
        tensors_bit_identical(&tab_tensors, &tab_ref_tensors),
        "sampled_6q: packed tableau engine diverged from the frozen reference"
    );
    assert!(
        tensors_bit_identical(&tab_sparse_tensors, &tab_ref_tensors),
        "sampled_6q: sparse-gate tableau engine diverged from the frozen reference"
    );
    let tab_speedup = tab_ref_ms / tab_1t_ms;
    let tab_sparse_speedup = tab_ref_ms / tab_sparse_ms;
    println!(
        "tableau sampled_6q end-to-end: reference engine {tab_ref_ms:.2} ms, \
         packed engine {tab_1t_ms:.2} ms ({tab_speedup:.2}x), \
         sparse-gate engine {tab_sparse_ms:.2} ms ({tab_sparse_speedup:.2}x)"
    );
    let tableau_sampled_row = format!(
        "{{\"reference_ms\": {tab_ref_ms:.3}, \"packed_1t_ms\": {tab_1t_ms:.3}, \
         \"speedup_1t\": {tab_speedup:.3}, \
         \"sparse_gate_1t_ms\": {tab_sparse_ms:.3}, \
         \"sparse_speedup_1t\": {tab_sparse_speedup:.3}, \
         \"bit_identical_to_reference\": true}}"
    );

    // --- Gate application: reference vs packed vs sparse-gate ----------
    let gate_apply_24 = bench_gate_apply(24, reps);
    let gate_apply_48 = bench_gate_apply(48, reps);
    let gate_apply_96 = bench_gate_apply(96, reps);

    // --- MLFT correction: interned in-place path vs BTreeMap baseline -
    // Raw (unsnapped) sampled tensors with a tight negativity tolerance,
    // so the PSD projection fires on realistically noisy blocks. The
    // fragment set is tiled so the measured stage is well above the
    // timer's noise floor.
    let raw_opts = TensorOptions {
        clifford_snap: false,
    };
    let base_raw =
        cutkit::evaluate_fragment_tensors(&cut.fragments, &eval, &raw_opts, &seeds, 1).unwrap();
    let raw_tensors: Vec<FragmentTensor> = std::iter::repeat_with(|| base_raw.clone())
        .take(16)
        .flatten()
        .collect();
    let mlft_opts = MlftOptions {
        negativity_tolerance: 1e-6,
        ..MlftOptions::default()
    };
    let (mlft_ref_ms, (mlft_ref_tensors, mlft_ref_moved)) = time_best(reps, || {
        let mut ts = raw_tensors.clone();
        let mut moved = 0.0;
        for t in ts.iter_mut() {
            moved += reference_correct_btreemap(t, &mlft_opts).unwrap();
        }
        (ts, moved)
    });
    let (mlft_1t_ms, (mlft_seq, mlft_seq_moved)) = time_best(reps, || {
        let mut ts = raw_tensors.clone();
        let moved = correct_tensors(&mut ts, &mlft_opts, 1).unwrap();
        (ts, moved)
    });
    let (mlft_mt_ms, (mlft_par, _)) = time_best(reps, || {
        let mut ts = raw_tensors.clone();
        let moved = correct_tensors(&mut ts, &mlft_opts, cores).unwrap();
        (ts, moved)
    });
    let mlft_identical = tensors_bit_identical(&mlft_seq, &mlft_par);
    assert!(mlft_identical, "MLFT pool changed results");
    assert!(
        mlft_seq_moved.to_bits() == mlft_ref_moved.to_bits(),
        "mlft_moved diverged from the BTreeMap baseline"
    );
    // Parity at 1/2/8 threads: the 1-thread result is already in hand.
    assert!(
        tensors_bit_identical(&mlft_seq, &mlft_ref_tensors),
        "MLFT at 1 thread diverged from the BTreeMap baseline"
    );
    for threads in [2usize, 8] {
        let mut ts = raw_tensors.clone();
        correct_tensors(&mut ts, &mlft_opts, threads).unwrap();
        assert!(
            tensors_bit_identical(&ts, &mlft_ref_tensors),
            "MLFT at {threads} threads diverged from the BTreeMap baseline"
        );
    }
    let mlft_speedup_1t = mlft_ref_ms / mlft_1t_ms;
    let mlft_speedup_mt = mlft_ref_ms / mlft_mt_ms;
    println!(
        "mlft ({} fragments): reference {mlft_ref_ms:.2} ms, \
         engine(1t) {mlft_1t_ms:.2} ms ({mlft_speedup_1t:.2}x), \
         engine({cores} workers) {mlft_mt_ms:.2} ms ({mlft_speedup_mt:.2}x)",
        raw_tensors.len(),
    );

    // --- Batch sweep: plan-reuse vs re-cut-per-point baseline ----------
    // A deep T-rich ladder under a tight cut budget: the greedy merge
    // pass dominates each run, which is exactly the cost plan reuse
    // amortizes. The baseline re-cuts per sweep point (one SuperSim::run
    // each); the engine plans once and drives every point through
    // Executor::run_sweep on one shared pool. Output is asserted
    // bit-identical to the sequential per-point runs at 1, 2, and 8
    // worker threads before timing is reported.
    let ladder = workloads::t_ladder(2, 150);
    let sweep_cfg = SuperSimConfig::builder()
        .shots(400)
        .cut_strategy(CutStrategy::IsolateNonClifford { max_cuts: 4 })
        .build()
        .unwrap();
    let points: Vec<ExecParams> = (0..8u64)
        .map(|i| ExecParams::seeded(1000 + i).with_shots(400))
        .collect();
    let (recut_ms, baseline_runs) = time_best(reps, || {
        points
            .iter()
            .map(|p| {
                SuperSim::new(
                    sweep_cfg
                        .clone()
                        .into_builder()
                        .seed(p.seed)
                        .shots(p.shots)
                        .build()
                        .unwrap(),
                )
                .run(&ladder.circuit)
                .unwrap()
            })
            .collect::<Vec<_>>()
    });
    let run_sweep_at = |threads: usize| -> Vec<RunResult> {
        let sim = SuperSim::new(
            sweep_cfg
                .clone()
                .into_builder()
                .parallel(threads != 1)
                .threads(if threads != 1 { threads } else { 0 })
                .build()
                .unwrap(),
        );
        let plan = sim.plan(&ladder.circuit).unwrap();
        sim.executor()
            .run_sweep(&plan, &points)
            .into_iter()
            .map(Result::unwrap)
            .collect()
    };
    let (sweep_1t_ms, sweep_runs) = time_best(reps, || run_sweep_at(1));
    let (sweep_mt_ms, _) = time_best(reps, || run_sweep_at(0));
    // Two distinct parity claims, collected separately and asserted after
    // each comparison: the 1-thread sweep against the sequential re-cut
    // baseline, and the 2/8-thread sweeps against the 1-thread sweep.
    let sweep_vs_sequential = baseline_runs
        .iter()
        .zip(&sweep_runs)
        .all(|(b, e)| b.bit_identical_to(e));
    assert!(
        sweep_vs_sequential,
        "batch_sweep: plan-reuse sweep diverged from the sequential per-point runs"
    );
    let sweep_across_threads = [2usize, 8].iter().all(|&threads| {
        run_sweep_at(threads)
            .iter()
            .zip(&sweep_runs)
            .all(|(e, one)| e.bit_identical_to(one))
    });
    assert!(
        sweep_across_threads,
        "batch_sweep: sweep output changed with the worker count"
    );
    let sweep_speedup_1t = recut_ms / sweep_1t_ms;
    let sweep_speedup_mt = recut_ms / sweep_mt_ms;
    println!(
        "batch_sweep ({} points, {} ops, {} T gates, k={}): \
         re-cut baseline {recut_ms:.2} ms, plan-reuse(1t) {sweep_1t_ms:.2} ms \
         ({sweep_speedup_1t:.2}x), plan-reuse({cores} workers) {sweep_mt_ms:.2} ms \
         ({sweep_speedup_mt:.2}x)",
        points.len(),
        ladder.circuit.len(),
        ladder.circuit.t_count(),
        baseline_runs[0].report.num_cuts,
    );
    let batch_sweep_row = format!(
        "{{\"points\": {}, \"ops\": {}, \"t_gates\": {}, \"cuts\": {}, \
         \"recut_1t_ms\": {recut_ms:.3}, \"sweep_1t_ms\": {sweep_1t_ms:.3}, \
         \"sweep_mt_ms\": {sweep_mt_ms:.3}, \"speedup_1t\": {sweep_speedup_1t:.3}, \
         \"speedup_mt\": {sweep_speedup_mt:.3}, \
         \"bit_identical_to_sequential\": {sweep_vs_sequential}, \
         \"bit_identical_across_threads\": {sweep_across_threads}}}",
        points.len(),
        ladder.circuit.len(),
        ladder.circuit.t_count(),
        baseline_runs[0].report.num_cuts,
    );

    // --- Error-budgeted recombination: the accuracy/latency dial -------
    // One plan of a 3-qubit T ladder recombined exactly and under three
    // error budgets (`ExecParams::with_error_budget`). The budget must
    // buy recombination latency — at least 2x at the largest budget —
    // and the reported skipped-mass bound must dominate the measured L1
    // distance from the exact distribution, or the dial is lying about
    // one of its two axes.
    let trunc_ladder = workloads::t_ladder(3, 40);
    let trunc_sim = SuperSim::new(
        SuperSimConfig::builder()
            .shots(400)
            .cut_strategy(CutStrategy::IsolateNonClifford { max_cuts: 8 })
            .build()
            .unwrap(),
    );
    let trunc_plan = trunc_sim.plan(&trunc_ladder.circuit).unwrap();
    // Best recombination time across reps (the series gates on the
    // recombine stage, not eval, which the budget does not touch).
    let best_recombine = |params: ExecParams| -> (f64, RunResult) {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let r = trunc_sim.executor().run_with(&trunc_plan, params).unwrap();
            best = best.min(r.report.recombine_time.as_secs_f64() * 1e3);
            out = Some(r);
        }
        (best, out.unwrap())
    };
    let (trunc_exact_ms, trunc_exact) = best_recombine(ExecParams::seeded(7));
    assert_eq!(
        trunc_exact.report.assignments_skipped, 0,
        "truncated_sweep: the zero-budget run must not skip anything"
    );
    let exact_dist: std::collections::HashMap<Bits, f64> = trunc_exact
        .distribution
        .as_ref()
        .unwrap()
        .iter()
        .map(|(b, p)| (b.clone(), p))
        .collect();
    let mut trunc_rows = Vec::new();
    let mut trunc_last_speedup = 0.0;
    for budget in [0.05f64, 0.25, 1.0] {
        let (ms, run) = best_recombine(ExecParams::seeded(7).with_error_budget(budget));
        let bound = run.report.recombine_error_bound;
        let mut rest = exact_dist.clone();
        let mut l1 = 0.0;
        for (b, p) in run.distribution.as_ref().unwrap().iter() {
            l1 += (p - rest.remove(b).unwrap_or(0.0)).abs();
        }
        l1 += rest.values().map(|v| v.abs()).sum::<f64>();
        assert!(
            bound <= budget + 1e-12,
            "truncated_sweep: realized bound {bound} exceeds the budget {budget}"
        );
        assert!(
            l1 <= bound,
            "truncated_sweep: measured L1 {l1} above the reported bound {bound}"
        );
        let speedup = trunc_exact_ms / ms;
        trunc_last_speedup = speedup;
        println!(
            "truncated_sweep budget={budget}: visited {} of {} ({} skipped), \
             bound {bound:.4}, l1 {l1:.5}, recombine {ms:.2} ms ({speedup:.2}x)",
            run.report.visited_assignments,
            trunc_exact.report.visited_assignments,
            run.report.assignments_skipped,
        );
        trunc_rows.push(format!(
            "    {{\"budget\": {budget}, \"recombine_1t_ms\": {ms:.3}, \
             \"speedup\": {speedup:.3}, \"visited\": {}, \"skipped\": {}, \
             \"error_bound\": {bound:.6}, \"l1_vs_exact\": {l1:.6}, \
             \"bound_dominates_l1\": true}}",
            run.report.visited_assignments, run.report.assignments_skipped,
        ));
    }
    assert!(
        trunc_last_speedup >= 2.0,
        "truncated_sweep: largest budget bought only {trunc_last_speedup:.2}x"
    );
    let truncated_sweep_row = format!(
        "{{\"ops\": {}, \"t_gates\": {}, \"cuts\": {}, \
         \"exact_recombine_1t_ms\": {trunc_exact_ms:.3}, \
         \"exact_visited\": {}, \"points\": [\n{}\n  ]}}",
        trunc_ladder.circuit.len(),
        trunc_ladder.circuit.t_count(),
        trunc_exact.report.num_cuts,
        trunc_exact.report.visited_assignments,
        trunc_rows.join(",\n"),
    );

    // --- Supervised batch: isolation overhead --------------------------
    // A mixed batch timed clean, then with one job killed by an injected
    // panic (`faultkit::FaultPlan`): the supervision layer must keep the
    // survivors bit-identical to the clean batch — the panic costs only
    // the dead job's work, never the pool or its neighbours' results.
    {
        // Silence the default panic hook for the injected panic below;
        // it is deliberate and would otherwise spray a backtrace into
        // the bench log.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                default_hook(info);
            }
        }));
    }
    let super_circuits: Vec<Circuit> = vec![
        workloads::hwea(5, 2, 1, 41).circuit,
        workloads::qaoa_sk(4, 1, 1, 43).circuit,
        workloads::ghz(6),
        workloads::hwea(4, 1, 2, 44).circuit,
    ];
    let super_cfg = SuperSimConfig::builder()
        .shots(300)
        .seed(17)
        .mlft(true)
        .parallel(true)
        .threads(0)
        .build()
        .unwrap();
    let (super_clean_1t_ms, clean_1t) = time_best(reps, || {
        SuperSim::new(
            super_cfg
                .clone()
                .into_builder()
                .parallel(false)
                .build()
                .unwrap(),
        )
        .run_batch(&super_circuits)
    });
    let (super_clean_mt_ms, clean_mt) = time_best(reps, || {
        SuperSim::new(super_cfg.clone()).run_batch(&super_circuits)
    });
    let faulted_cfg = super_cfg
        .clone()
        .into_builder()
        .faults(std::sync::Arc::new(supersim::FaultPlan::new().inject(
            0,
            supersim::Stage::Eval,
            0,
            supersim::FaultKind::Panic,
        )))
        .build()
        .unwrap();
    let (super_faulted_ms, faulted) = time_best(reps, || {
        SuperSim::new(faulted_cfg.clone()).run_batch(&super_circuits)
    });
    let clean_across_threads = clean_1t
        .iter()
        .zip(&clean_mt)
        .all(|(a, b)| a.as_ref().unwrap().bit_identical_to(b.as_ref().unwrap()));
    assert!(
        clean_across_threads,
        "supervised_batch: clean batch differs across thread counts"
    );
    assert!(
        matches!(
            faulted[0].as_ref().unwrap_err().root(),
            supersim::SuperSimError::Panicked { .. }
        ),
        "supervised_batch: injected panic not reported"
    );
    let survivors_identical = clean_mt
        .iter()
        .zip(&faulted)
        .skip(1)
        .all(|(a, b)| a.as_ref().unwrap().bit_identical_to(b.as_ref().unwrap()));
    assert!(
        survivors_identical,
        "supervised_batch: a panicking job perturbed its neighbours"
    );
    println!(
        "supervised_batch ({} jobs): clean(1t) {super_clean_1t_ms:.2} ms, \
         clean({cores} workers) {super_clean_mt_ms:.2} ms, \
         one job panicked {super_faulted_ms:.2} ms",
        super_circuits.len(),
    );
    let supervised_row = format!(
        "{{\"jobs\": {}, \"clean_1t_ms\": {super_clean_1t_ms:.3}, \
         \"clean_mt_ms\": {super_clean_mt_ms:.3}, \
         \"faulted_mt_ms\": {super_faulted_ms:.3}, \
         \"bit_identical_across_threads\": {clean_across_threads}, \
         \"survivors_bit_identical\": {survivors_identical}}}",
        super_circuits.len(),
    );

    // --- Resilient batch: retry + salvage overhead ---------------------
    // The resilience driver on the same mixed batch: a clean pass (the
    // wrapper's bookkeeping cost), a pass where one job needs a transient
    // retry (`FailNTimes(1)`), and a full salvage cycle (fail under a
    // 1-attempt budget, then `resume` re-runs only the failed job). All
    // recovered results must stay bit-identical to the clean batch.
    let resilient_policy = || {
        supersim::ResiliencePolicy::new().with_retry(
            supersim::RetryPolicy::default()
                .with_max_attempts(3)
                .without_backoff(),
        )
    };
    let (resil_clean_ms, resil_clean) = time_best(reps, || {
        SuperSim::new(super_cfg.clone())
            .run_batch_resilient(&super_circuits, resilient_policy())
            .into_results()
    });
    let transient_cfg = super_cfg
        .clone()
        .into_builder()
        .faults(std::sync::Arc::new(supersim::FaultPlan::new().inject(
            0,
            supersim::Stage::Eval,
            0,
            supersim::FaultKind::FailNTimes(1),
        )))
        .build()
        .unwrap();
    let (resil_transient_ms, resil_transient) = time_best(reps, || {
        let outcome = SuperSim::new(transient_cfg.clone())
            .run_batch_resilient(&super_circuits, resilient_policy());
        (outcome.statuses(), outcome.into_results())
    });
    let (resil_salvage_ms, resil_salvaged) = time_best(reps, || {
        let mut outcome = SuperSim::new(transient_cfg.clone()).run_batch_resilient(
            &super_circuits,
            resilient_policy().with_retry(
                supersim::RetryPolicy::default()
                    .with_max_attempts(1)
                    .without_backoff(),
            ),
        );
        let salvaged = outcome.resume();
        (salvaged, outcome.into_results())
    });
    let (resil_statuses, resil_transient) = resil_transient;
    let (resil_salvage_count, resil_salvaged) = resil_salvaged;
    assert_eq!(
        resil_statuses[0],
        supersim::JobStatus::Ok { attempts: 2 },
        "resilient_batch: the flaky job must recover on attempt 2"
    );
    assert_eq!(
        resil_salvage_count, 1,
        "resilient_batch: resume must salvage exactly the failed job"
    );
    let resil_identical = clean_mt
        .iter()
        .zip(&resil_clean)
        .zip(&resil_transient)
        .zip(&resil_salvaged)
        .all(|(((base, c), t), s)| {
            let base = base.as_ref().unwrap();
            base.bit_identical_to(c.as_ref().unwrap())
                && base.bit_identical_to(t.as_ref().unwrap())
                && base.bit_identical_to(s.as_ref().unwrap())
        });
    assert!(
        resil_identical,
        "resilient_batch: retried/salvaged results diverged from the clean batch"
    );
    println!(
        "resilient_batch ({} jobs): clean {resil_clean_ms:.2} ms, \
         one transient retry {resil_transient_ms:.2} ms, \
         salvage cycle {resil_salvage_ms:.2} ms",
        super_circuits.len(),
    );
    let resilient_row = format!(
        "{{\"jobs\": {}, \"clean_mt_ms\": {resil_clean_ms:.3}, \
         \"transient_mt_ms\": {resil_transient_ms:.3}, \
         \"salvage_cycle_mt_ms\": {resil_salvage_ms:.3}, \
         \"retried_job_attempts\": 2, \
         \"recovered_bit_identical\": {resil_identical}}}",
        super_circuits.len(),
    );

    // --- §IX sparse-contraction ablation ------------------------------
    let mut ghz_t = Circuit::new(4);
    ghz_t.h(0);
    for q in 1..4 {
        ghz_t.cx(q - 1, q);
    }
    ghz_t.t(3).h(3);
    let sparse_cut = cut_circuit(&ghz_t, CutStrategy::default()).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let sparse_tensors: Vec<FragmentTensor> = sparse_cut
        .fragments
        .iter()
        .map(|f| {
            cutkit::build_fragment_tensor(
                f,
                &EvalOptions {
                    mode: EvalMode::Exact,
                    ..Default::default()
                },
                &opts,
                &mut rng,
            )
            .unwrap()
        })
        .collect();
    let rec = Reconstructor::new(
        &sparse_tensors,
        sparse_cut.num_cuts,
        sparse_cut.original_qubits,
    );
    let visited_sparse = rec.visited_assignments();
    let visited_dense = rec.clone().with_sparse(false).visited_assignments();
    println!(
        "sparse ablation (k={}): visited {visited_sparse} of {visited_dense}",
        sparse_cut.num_cuts
    );

    // --- JSON report ---------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"recombine\",\n  \"schema_version\": 9,\n  \
         \"threads_available\": {cores},\n  \"reps\": {reps},\n  \
         \"runtime_reuse\": {runtime_reuse_row},\n  \
         \"plan_cache\": {plan_cache_row},\n  \
         \"recombine_marginals\": [\n{}\n  ],\n  \
         \"joint_reconstruction\": [\n{}\n  ],\n  \
         \"fragment_eval\": {{\n    \"sampled_6q\": {sampled_row},\n    \
         \"wide_exact\": {wide_row}\n  }},\n  \
         \"tableau\": {{\n    \"measure_24q\": {measure_row},\n    \
         \"rowsum_48q\": {rowsum_row},\n    \
         \"sampled_6q\": {tableau_sampled_row}\n  }},\n  \
         \"gate_apply\": {{\n    \"n24\": {gate_apply_24},\n    \
         \"n48\": {gate_apply_48},\n    \
         \"n96\": {gate_apply_96}\n  }},\n  \
         \"batch_sweep\": {batch_sweep_row},\n  \
         \"truncated_sweep\": {truncated_sweep_row},\n  \
         \"supervised_batch\": {supervised_row},\n  \
         \"resilient_batch\": {resilient_row},\n  \
         \"mlft\": {{\"fragments\": {}, \
         \"reference_ms\": {mlft_ref_ms:.3}, \
         \"engine_1t_ms\": {mlft_1t_ms:.3}, \"engine_mt_ms\": {mlft_mt_ms:.3}, \
         \"speedup_1t\": {mlft_speedup_1t:.3}, \"speedup_mt\": {mlft_speedup_mt:.3}, \
         \"bit_identical_to_baseline\": true, \
         \"bit_identical_across_threads\": {mlft_identical}}},\n  \
         \"sparse_contraction\": {{\"k\": {}, \"visited_sparse\": {visited_sparse}, \
         \"visited_dense\": {visited_dense}}}\n}}\n",
        recombine_rows.join(",\n"),
        joint_rows.join(",\n"),
        raw_tensors.len(),
        sparse_cut.num_cuts,
    );
    std::fs::write(path, &json).expect("write BENCH_recombine.json");
    println!("wrote {path}");

    // --- Bench-regression gate (--check) -------------------------------
    if check {
        let tolerance = std::env::var("BENCH_CHECK_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.25);
        let min_delta_ms = std::env::var("BENCH_CHECK_MIN_DELTA_MS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.5);
        match committed {
            Some(baseline) => {
                let ok = supersim_bench::benchjson::check_regressions(
                    &baseline,
                    &json,
                    tolerance,
                    min_delta_ms,
                )
                .expect("baseline/report JSON must parse");
                if !ok {
                    std::process::exit(1);
                }
            }
            None => println!("bench-check: no committed baseline found; gate skipped"),
        }
    }
}
