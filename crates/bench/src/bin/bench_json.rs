//! Perf-trajectory benchmark: parallel recombination + fragment
//! evaluation, written as `BENCH_recombine.json` at the repo root.
//!
//! Three measurements per `k` (number of cuts):
//!
//! * `seed_ms` — a faithful replica of the seed implementation's
//!   sequential `4^k` marginals loop (per-assignment prefix/suffix
//!   allocations, per-tensor `slice_max_abs` checks), timed through the
//!   same public `FragmentTensor` API it used;
//! * `engine_1t_ms` — the chunked contraction engine at one thread;
//! * `engine_mt_ms` — the engine with one worker per available core.
//!
//! A `joint_reconstruction` series compares the interned-id joint engine
//! against the frozen pre-intern baseline
//! (`cutkit::reference_joint_btreemap`: per-chunk `BTreeMap<Bits, f64>`
//! accumulation, one `Bits` clone per partial term, clone-per-merge across
//! chunks), asserting the outputs bit-identical before timing is reported.
//!
//! Plus a (fragment × variant) evaluation-pool comparison and the §IX
//! sparse-contraction ablation. Every engine result is checked
//! bit-identical between thread counts before timing is reported.
//!
//! Environment knobs: `REPS` (samples per point, default 3; the best is
//! kept), `MAX_K` (default 12).

use cutkit::{
    cut_circuit, reference_joint_btreemap, synthetic_dense_chain, CutStrategy, EvalMode,
    EvalOptions, FragmentTensor, Reconstructor, TensorOptions,
};
use qcir::{Bits, Circuit};
use std::time::Instant;

/// The seed implementation's marginals loop, reproduced verbatim against
/// the public tensor API: one `4^k` sweep, fresh prefix/suffix vectors per
/// assignment, `slice_max_abs` checked per tensor per assignment.
fn seed_marginals(tensors: &[FragmentTensor], num_cuts: usize, n_qubits: usize) -> Vec<[f64; 2]> {
    let nf = tensors.len();
    let tol = 1e-12;
    let mut marg = vec![[0.0f64; 2]; n_qubits];
    let mut mass = 0.0;
    let total = 1u64 << (2 * num_cuts);
    let mut indices = vec![0usize; nf];
    for kappa in 0..total {
        let digit = |cut: usize| ((kappa >> (2 * cut)) & 0b11) as usize;
        let mut skip = false;
        for (fi, t) in tensors.iter().enumerate() {
            let idx = t.pauli_index(digit);
            if t.slice_max_abs(idx) <= tol {
                skip = true;
                break;
            }
            indices[fi] = idx;
        }
        if skip {
            continue;
        }
        let mut prefix = vec![1.0; nf + 1];
        for f in 0..nf {
            prefix[f + 1] = prefix[f] * tensors[f].total(indices[f]);
        }
        let mut suffix = vec![1.0; nf + 1];
        for f in (0..nf).rev() {
            suffix[f] = suffix[f + 1] * tensors[f].total(indices[f]);
        }
        mass += prefix[nf];
        for (f, t) in tensors.iter().enumerate() {
            let excl = prefix[f] * suffix[f + 1];
            if excl == 0.0 {
                continue;
            }
            for (bit, &global) in t.output_globals().iter().enumerate() {
                for v in 0..2 {
                    marg[global][v] += excl * t.marginal(bit, v == 1, indices[f]);
                }
            }
        }
    }
    if mass.abs() > 1e-12 {
        for m in &mut marg {
            m[0] /= mass;
            m[1] /= mass;
        }
    }
    for m in &mut marg {
        m[0] = m[0].clamp(0.0, 1.0);
        m[1] = m[1].clamp(0.0, 1.0);
        let s = m[0] + m[1];
        if s > 0.0 {
            m[0] /= s;
            m[1] /= s;
        }
    }
    marg
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn max_abs_diff(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x[0] - y[0]).abs().max((x[1] - y[1]).abs()))
        .fold(0.0, f64::max)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = env_usize("REPS", 3);
    let max_k = env_usize("MAX_K", 12);

    // --- Recombination: marginals at k = 4 / 8 / 12 ------------------
    let mut recombine_rows = Vec::new();
    for k in [4usize, 8, 12] {
        if k > max_k {
            continue;
        }
        let point_reps = if k >= 12 { 1 } else { reps };
        let (tensors, n_qubits) = synthetic_dense_chain(k, 1);
        let (seed_ms, seed_marg) = time_best(point_reps, || seed_marginals(&tensors, k, n_qubits));
        let (one_ms, one_marg) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(1)
                .marginals()
        });
        let (multi_ms, multi_marg) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(0)
                .marginals()
        });
        let identical = one_marg == multi_marg;
        let seed_diff = max_abs_diff(&seed_marg, &one_marg);
        assert!(identical, "k={k}: parallel result differs from sequential");
        assert!(
            seed_diff < 1e-9,
            "k={k}: engine diverged from seed algorithm"
        );
        let speedup_1t = seed_ms / one_ms;
        let speedup_mt = seed_ms / multi_ms;
        println!(
            "recombine k={k}: seed {seed_ms:.2} ms, engine(1t) {one_ms:.2} ms \
             ({speedup_1t:.2}x), engine({cores} workers) {multi_ms:.2} ms ({speedup_mt:.2}x)"
        );
        recombine_rows.push(format!(
            "    {{\"k\": {k}, \"seed_ms\": {seed_ms:.3}, \"engine_1t_ms\": {one_ms:.3}, \
             \"engine_mt_ms\": {multi_ms:.3}, \"speedup_1t\": {speedup_1t:.3}, \
             \"speedup_mt\": {speedup_mt:.3}, \"bit_identical_across_threads\": {identical}, \
             \"max_abs_diff_vs_seed\": {seed_diff:e}}}"
        ));
    }

    // --- Joint reconstruction: interned-id engine vs BTreeMap baseline
    let mut joint_rows = Vec::new();
    for k in [4usize, 6, 8] {
        if k > max_k {
            continue;
        }
        let point_reps = if k >= 8 { 1.max(reps / 3) } else { reps };
        let (tensors, n_qubits) = synthetic_dense_chain(k, 1);
        let support: usize = tensors.iter().map(|t| t.support_len().max(1)).product();
        let (seed_ms, seed_pairs) = time_best(point_reps, || {
            reference_joint_btreemap(&tensors, k, n_qubits, true)
        });
        let (one_ms, one_dist) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(1)
                .joint(usize::MAX)
        });
        let (multi_ms, multi_dist) = time_best(point_reps, || {
            Reconstructor::new(&tensors, k, n_qubits)
                .with_threads(0)
                .joint(usize::MAX)
        });
        let one_pairs: Vec<(Bits, f64)> = one_dist.iter().map(|(b, p)| (b.clone(), p)).collect();
        let multi_pairs: Vec<(Bits, f64)> =
            multi_dist.iter().map(|(b, p)| (b.clone(), p)).collect();
        let identical = one_pairs == multi_pairs;
        assert!(identical, "k={k}: parallel joint differs from sequential");
        assert_eq!(
            one_pairs.len(),
            seed_pairs.len(),
            "k={k}: joint support diverged from baseline"
        );
        for ((gb, gw), (eb, ew)) in one_pairs.iter().zip(&seed_pairs) {
            assert!(
                gb == eb && gw.to_bits() == ew.to_bits(),
                "k={k}: joint diverged from BTreeMap baseline at {gb}"
            );
        }
        let speedup_1t = seed_ms / one_ms;
        let speedup_mt = seed_ms / multi_ms;
        println!(
            "joint k={k} (support {support}): seed {seed_ms:.2} ms, \
             engine(1t) {one_ms:.2} ms ({speedup_1t:.2}x), \
             engine({cores} workers) {multi_ms:.2} ms ({speedup_mt:.2}x)"
        );
        joint_rows.push(format!(
            "    {{\"k\": {k}, \"support\": {support}, \"seed_joint_ms\": {seed_ms:.3}, \
             \"joint_1t_ms\": {one_ms:.3}, \"joint_mt_ms\": {multi_ms:.3}, \
             \"speedup_1t\": {speedup_1t:.3}, \"speedup_mt\": {speedup_mt:.3}, \
             \"bit_identical_to_baseline\": true, \
             \"bit_identical_across_threads\": {identical}}}"
        ));
    }

    // --- Fragment evaluation: shared (fragment × variant) pool -------
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 1..6 {
        circuit.cx(q - 1, q);
    }
    for q in [1usize, 3, 5] {
        circuit.t(q);
    }
    for q in 0..6 {
        circuit.h(q);
    }
    let cut = cut_circuit(&circuit, CutStrategy::default()).unwrap();
    let eval = EvalOptions {
        mode: EvalMode::Sampled { shots: 4000 },
        ..Default::default()
    };
    let opts = TensorOptions::default();
    let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 77 + i).collect();
    let (eval_1t_ms, seq_tensors) = time_best(reps, || {
        cutkit::evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, 1).unwrap()
    });
    let (eval_mt_ms, par_tensors) = time_best(reps, || {
        cutkit::evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, cores).unwrap()
    });
    let eval_identical = seq_tensors.iter().zip(&par_tensors).all(|(s, p)| {
        s.iter()
            .all(|(b, v)| v.iter().enumerate().all(|(i, &x)| p.value(b, i) == x))
    });
    assert!(eval_identical, "evaluation pool changed results");
    let eval_speedup = eval_1t_ms / eval_mt_ms;
    println!(
        "fragment eval ({} fragments, {} variants): 1t {eval_1t_ms:.2} ms, \
         {cores} workers {eval_mt_ms:.2} ms ({eval_speedup:.2}x)",
        cut.fragments.len(),
        cut.fragments
            .iter()
            .map(|f| f.num_variants())
            .sum::<usize>(),
    );

    // --- §IX sparse-contraction ablation ------------------------------
    let mut ghz_t = Circuit::new(4);
    ghz_t.h(0);
    for q in 1..4 {
        ghz_t.cx(q - 1, q);
    }
    ghz_t.t(3).h(3);
    let sparse_cut = cut_circuit(&ghz_t, CutStrategy::default()).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let sparse_tensors: Vec<FragmentTensor> = sparse_cut
        .fragments
        .iter()
        .map(|f| {
            cutkit::build_fragment_tensor(
                f,
                &EvalOptions {
                    mode: EvalMode::Exact,
                    ..Default::default()
                },
                &opts,
                &mut rng,
            )
            .unwrap()
        })
        .collect();
    let rec = Reconstructor::new(
        &sparse_tensors,
        sparse_cut.num_cuts,
        sparse_cut.original_qubits,
    );
    let visited_sparse = rec.visited_assignments();
    let visited_dense = rec.clone().with_sparse(false).visited_assignments();
    println!(
        "sparse ablation (k={}): visited {visited_sparse} of {visited_dense}",
        sparse_cut.num_cuts
    );

    // --- JSON report ---------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"recombine\",\n  \"schema_version\": 2,\n  \
         \"threads_available\": {cores},\n  \"reps\": {reps},\n  \
         \"recombine_marginals\": [\n{}\n  ],\n  \
         \"joint_reconstruction\": [\n{}\n  ],\n  \
         \"fragment_eval\": {{\"fragments\": {}, \"variants\": {}, \
         \"engine_1t_ms\": {eval_1t_ms:.3}, \"engine_mt_ms\": {eval_mt_ms:.3}, \
         \"speedup_mt\": {eval_speedup:.3}, \"bit_identical_across_threads\": {eval_identical}}},\n  \
         \"sparse_contraction\": {{\"k\": {}, \"visited_sparse\": {visited_sparse}, \
         \"visited_dense\": {visited_dense}}}\n}}\n",
        recombine_rows.join(",\n"),
        joint_rows.join(",\n"),
        cut.fragments.len(),
        cut.fragments.iter().map(|f| f.num_variants()).sum::<usize>(),
        sparse_cut.num_cuts,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recombine.json");
    std::fs::write(path, &json).expect("write BENCH_recombine.json");
    println!("wrote {path}");
}
