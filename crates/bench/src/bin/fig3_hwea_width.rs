//! Figure 3: simulation time vs qubit count for the VQE HWEA benchmark
//! (5 rounds, 1 randomly injected T gate) across four simulators.
//!
//! Reproduces the paper's headline crossover: the statevector simulator
//! hits its exponential wall in the mid-20s of qubits while SuperSim's
//! Clifford-cut runtime stays flat; the extended stabilizer tracks SV-like
//! costs; MPS wins at low entanglement but loses past the crossover.

use supersim::{
    ExtStabBackend, MpsBackend, Simulator, StatevectorBackend, SuperSim, SuperSimConfig,
};
use supersim_bench::{HarnessConfig, Sweep};

fn main() {
    let config = HarnessConfig::from_env();
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(SuperSim::new(SuperSimConfig {
            shots: config.shots,
            ..SuperSimConfig::default()
        })),
        Box::new(StatevectorBackend),
        Box::new(MpsBackend::default()),
        Box::new(ExtStabBackend::default()),
    ];
    let mut sweep = Sweep::new(config, backends);
    sweep.header("fig3", "VQE HWEA, 5 rounds, 1 non-Clifford gate");
    let sizes: Vec<usize> = if config.full {
        (2..=38).step_by(2).collect()
    } else {
        vec![2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 28]
    };
    for n in sizes {
        sweep.point(n, |rep| {
            workloads::hwea(n, 5, 1, (n * 100 + rep) as u64).circuit
        });
    }
}
