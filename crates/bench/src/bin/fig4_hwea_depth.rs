//! Figure 4: simulation time vs HWEA rounds at fixed width (20 qubits,
//! 1 injected T gate), SuperSim vs MPS.
//!
//! Reproduces the depth/entanglement story: exact MPS cost grows
//! exponentially with entangling rounds, while SuperSim's runtime is
//! insensitive to rounds (it is dominated by fragment postprocessing).

use supersim::{MpsBackend, Simulator, SuperSim, SuperSimConfig};
use supersim_bench::{HarnessConfig, Sweep};

fn main() {
    let config = HarnessConfig::from_env();
    let n = 20;
    let backends: Vec<Box<dyn Simulator>> = vec![
        Box::new(SuperSim::new(SuperSimConfig {
            shots: config.shots,
            ..SuperSimConfig::default()
        })),
        Box::new(MpsBackend::default()),
    ];
    let mut sweep = Sweep::new(config, backends);
    sweep.header("fig4", "20-qubit Clifford HWEA, 1 T gate, depth sweep");
    let max_rounds = if config.full { 10 } else { 8 };
    for rounds in 1..=max_rounds {
        sweep.point(rounds, |rep| {
            workloads::hwea(n, rounds, 1, (rounds * 57 + rep) as u64).circuit
        });
    }
}
