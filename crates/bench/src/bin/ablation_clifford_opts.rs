//! Ablation B: the paper's §IX Clifford-specific optimizations.
//!
//! 1. *Fewer stitching calculations*: the sparse contraction skips cut
//!    assignments whose Pauli slice is identically zero in some stabilizer
//!    fragment — we report visited/total `4^k` terms.
//! 2. *Fewer shots*: exact zero-shot Clifford fragment evaluation vs
//!    sampling, comparing runtime at equal accuracy targets.

use cutkit::{
    build_fragment_tensor, cut_circuit, CutStrategy, EvalMode, EvalOptions, Reconstructor,
    TensorOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use supersim::{SuperSim, SuperSimConfig};

fn main() {
    let full = std::env::var("FULL").map(|v| v == "1").unwrap_or(false);
    let max_t = if full { 5 } else { 4 };

    println!("# ablation_clifford_opts part 1: sparse contraction pruning");
    println!("t_gates\tcuts\ttotal_4^k\tvisited\tdense_secs\tsparse_secs");
    for t in 1..=max_t {
        let w = workloads::hwea(12, 3, t, 1000 + t as u64);
        let cut = cut_circuit(&w.circuit, CutStrategy::default()).expect("cut fits");
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let tensors: Vec<_> = cut
            .fragments
            .iter()
            .map(|f| {
                build_fragment_tensor(f, &eval, &TensorOptions::default(), &mut rng)
                    .expect("fragments evaluate")
            })
            .collect();
        let total = 1u64 << (2 * cut.num_cuts);
        let sparse = Reconstructor::new(&tensors, cut.num_cuts, cut.original_qubits);
        let dense =
            Reconstructor::new(&tensors, cut.num_cuts, cut.original_qubits).with_sparse(false);
        let visited = sparse.visited_assignments();
        let t0 = Instant::now();
        let _ = dense.marginals();
        let dense_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let _ = sparse.marginals();
        let sparse_secs = t1.elapsed().as_secs_f64();
        println!(
            "{t}\t{}\t{total}\t{visited}\t{dense_secs:.4}\t{sparse_secs:.4}",
            cut.num_cuts
        );
    }

    println!();
    println!("# ablation_clifford_opts part 2: sampled vs zero-shot Clifford fragments");
    println!("qubits\tmode\tseconds");
    let sizes: &[usize] = if full {
        &[10, 14, 18, 22, 26, 30]
    } else {
        &[10, 14, 18]
    };
    for &n in sizes {
        let w = workloads::hwea(n, 3, 1, 77 + n as u64);
        for (label, exact_clifford) in [("sampled", false), ("zero-shot", true)] {
            let cfg = SuperSimConfig {
                shots: 2000,
                exact_clifford,
                joint_support_limit: 0, // marginals only: isolate evaluation cost
                ..SuperSimConfig::default()
            };
            let t0 = Instant::now();
            match SuperSim::new(cfg).run(&w.circuit) {
                Ok(_) => println!("{n}\t{label}\t{:.4}", t0.elapsed().as_secs_f64()),
                Err(e) => println!("{n}\t{label}\tskip ({e})"),
            }
        }
    }
}
