//! Figure 5: SuperSim runtime up to 300 qubits (HWEA, 5 rounds, 1 T gate).
//!
//! Each point is a single random instance (as in the paper), so the curve
//! is intentionally noisy: the position of the injected T gate changes how
//! the circuit fragments and therefore the postprocessing cost.

use supersim::{Simulator, SuperSim, SuperSimConfig};
use supersim_bench::{HarnessConfig, Sweep};

fn main() {
    let mut config = HarnessConfig::from_env();
    config.reps = 1; // single instance per point, as in the paper
    let backends: Vec<Box<dyn Simulator>> = vec![Box::new(SuperSim::new(SuperSimConfig {
        shots: config.shots,
        ..SuperSimConfig::default()
    }))];
    let mut sweep = Sweep::new(config, backends);
    sweep.header("fig5", "Clifford HWEA, 1 T gate, up to 300 qubits");
    let step = if config.full { 10 } else { 25 };
    let mut n = step.max(10);
    while n <= 300 {
        sweep.point(n, |_| workloads::hwea(n, 5, 1, n as u64).circuit);
        n += step;
    }
}
