//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use qmath::{eigh, psd_project_with_trace, svd, CMat, C64};

/// Strategy: a complex matrix with entries in [-1, 1]².
fn cmat(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), rows * cols).prop_map(move |entries| {
        CMat::from_vec(
            rows,
            cols,
            entries
                .into_iter()
                .map(|(re, im)| C64::new(re, im))
                .collect(),
        )
    })
}

/// Strategy: a Hermitian matrix.
fn hermitian(n: usize) -> impl Strategy<Value = CMat> {
    cmat(n, n).prop_map(|a| a.add(&a.adjoint()).scale(C64::real(0.5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn svd_reconstructs(a in cmat(5, 3)) {
        let dec = svd(&a);
        prop_assert!(dec.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_reconstructs_wide(a in cmat(2, 6)) {
        let dec = svd(&a);
        prop_assert!(dec.reconstruct().approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_factors_are_isometries(a in cmat(4, 4)) {
        let dec = svd(&a);
        let k = dec.s.len();
        prop_assert!(dec.u.adjoint().mul(&dec.u).approx_eq(&CMat::identity(k), 1e-8));
        prop_assert!(dec.v.adjoint().mul(&dec.v).approx_eq(&CMat::identity(k), 1e-8));
        for w in dec.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_singular_values_match_gram_eigenvalues(a in cmat(4, 4)) {
        // σ_i² are the eigenvalues of A†A.
        let dec = svd(&a);
        let gram = a.adjoint().mul(&a);
        let eig = eigh(&gram);
        let mut sv_sq: Vec<f64> = dec.s.iter().map(|x| x * x).collect();
        sv_sq.reverse(); // ascending to match eigh
        for (s2, l) in sv_sq.iter().zip(&eig.values) {
            prop_assert!((s2 - l).abs() < 1e-7, "σ² {} vs λ {}", s2, l);
        }
    }

    #[test]
    fn eigh_reconstructs_and_is_real(a in hermitian(5)) {
        let dec = eigh(&a);
        prop_assert!(dec.reconstruct().approx_eq(&a, 1e-8));
        prop_assert!(dec.vectors.is_unitary(1e-8));
        // Trace preserved by the spectrum.
        let spectral_trace: f64 = dec.values.iter().sum();
        prop_assert!((spectral_trace - a.trace().re).abs() < 1e-8);
    }

    #[test]
    fn psd_trace_projection_invariants(a in hermitian(4), t in 0.0f64..3.0) {
        let p = psd_project_with_trace(&a, t);
        let dec = eigh(&p);
        prop_assert!(dec.values.iter().all(|&l| l >= -1e-9), "not PSD");
        prop_assert!((p.trace().re - t).abs() < 1e-8, "trace not matched");
        // Projection is idempotent.
        let pp = psd_project_with_trace(&p, t);
        prop_assert!(pp.approx_eq(&p, 1e-7));
    }

    #[test]
    fn kron_mixed_product(a in cmat(2, 2), b in cmat(2, 2), c in cmat(2, 2), d in cmat(2, 2)) {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let lhs = a.kron(&b).mul(&c.kron(&d));
        let rhs = a.mul(&c).kron(&b.mul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn adjoint_is_involution(a in cmat(3, 4)) {
        prop_assert!(a.adjoint().adjoint().approx_eq(&a, 1e-12));
    }

    #[test]
    fn frobenius_norm_unitary_invariance(a in hermitian(3)) {
        // ‖U†AU‖_F = ‖A‖_F for the eigenvector unitary.
        let dec = eigh(&a);
        let rotated = dec.vectors.adjoint().mul(&a).mul(&dec.vectors);
        prop_assert!((rotated.frobenius_norm() - a.frobenius_norm()).abs() < 1e-8);
    }
}
