//! A minimal `f64` complex number.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// ```
/// use qmath::C64;
/// let z = C64::new(1.0, 2.0) * C64::i();
/// assert_eq!(z, C64::new(-2.0, 1.0));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = ZERO;
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = ONE;

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        C64 { re: 0.0, im: 1.0 }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}` (a unit-modulus complex number).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Returns `i^k` for any integer `k` (the fourth roots of unity).
    #[inline]
    pub fn i_pow(k: i64) -> Self {
        match k.rem_euclid(4) {
            0 => C64::new(1.0, 0.0),
            1 => C64::new(0.0, 1.0),
            2 => C64::new(-1.0, 0.0),
            _ => C64::new(0.0, -1.0),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns a non-finite value when `self` is zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Component-wise approximate equality within `eps`.
    #[inline]
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.recip()).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn modulus_and_conjugate() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z * z.conj()).approx_eq(C64::real(25.0), 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn i_pow_cycles() {
        assert_eq!(C64::i_pow(0), C64::ONE);
        assert_eq!(C64::i_pow(1), C64::i());
        assert_eq!(C64::i_pow(2), -C64::ONE);
        assert_eq!(C64::i_pow(3), -C64::i());
        assert_eq!(C64::i_pow(5), C64::i());
        assert_eq!(C64::i_pow(-1), -C64::i());
    }

    #[test]
    fn sqrt_squares() {
        let z = C64::new(-1.0, 0.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-12));
        assert!(r.im > 0.0, "principal branch");
    }

    #[test]
    fn division() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert!((a / b * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(C64::i_pow).sum();
        assert!(total.approx_eq(C64::ZERO, 1e-12));
    }
}
