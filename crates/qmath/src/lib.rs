//! Self-contained complex linear algebra for SuperSim-RS.
//!
//! No external linear-algebra crates are available in the offline build
//! environment, so this crate implements the small amount of numerics the
//! quantum simulators need:
//!
//! * [`C64`] — a `f64` complex number with the usual arithmetic;
//! * [`CMat`] — a dense, row-major complex matrix;
//! * [`eigh`] — Hermitian eigendecomposition (cyclic Jacobi);
//! * [`svd`] — complex singular value decomposition (one-sided Jacobi);
//! * [`psd_project`] — projection of a Hermitian matrix onto the positive
//!   semidefinite cone, used by the maximum-likelihood fragment-tomography
//!   correction.
//!
//! The implementations favour robustness and simplicity over peak
//! performance: the matrices handled here are small (fragment Choi matrices,
//! MPS bond tensors), so `O(n³)` Jacobi methods are more than fast enough.
//!
//! ```
//! use qmath::{CMat, C64, svd};
//!
//! let a = CMat::from_fn(3, 2, |i, j| C64::new((i + j) as f64, i as f64 - j as f64));
//! let dec = svd(&a);
//! assert!(dec.reconstruct().approx_eq(&a, 1e-10));
//! ```

mod complex;
mod eig;
mod matrix;
mod svd;

pub use complex::C64;
pub use eig::{eigh, psd_project, psd_project_with_trace, EigH};
pub use matrix::CMat;
pub use svd::{svd, Svd};
