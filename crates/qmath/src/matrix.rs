//! Dense row-major complex matrices.

use crate::C64;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major complex matrix.
///
/// The simulators only ever manipulate small matrices (gate unitaries,
/// fragment Choi matrices, MPS bond blocks), so the representation favours
/// simplicity: a flat `Vec<C64>` with explicit dimensions.
///
/// ```
/// use qmath::{CMat, C64};
/// let x = CMat::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.mul(&x).approx_eq(&CMat::identity(2), 1e-12));
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut m = CMat::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            for (j, &v) in r.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Creates a matrix that owns `data` interpreted in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        CMat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[C64]) -> Vec<C64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![C64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = C64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Entry-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        CMat::from_vec(self.rows, self.cols, data)
    }

    /// Entry-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        CMat::from_vec(self.rows, self.cols, data)
    }

    /// Scales every entry by the complex factor `s`.
    pub fn scale(&self, s: C64) -> CMat {
        let data = self.data.iter().map(|&a| a * s).collect();
        CMat::from_vec(self.rows, self.cols, data)
    }

    /// Conjugate transpose (dagger).
    pub fn adjoint(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> CMat {
        let data = self.data.iter().map(|a| a.conj()).collect();
        CMat::from_vec(self.rows, self.cols, data)
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == C64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns `true` if the matrix is Hermitian within `eps`.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the matrix is unitary within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.adjoint()
            .mul(self)
            .approx_eq(&CMat::identity(self.rows), eps)
    }

    /// Entry-wise approximate equality within `eps`.
    pub fn approx_eq(&self, other: &CMat, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| a.approx_eq(b, eps))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMat {
        CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> CMat {
        CMat::from_rows(&[&[C64::ZERO, -C64::i()], &[C64::i(), C64::ZERO]])
    }

    fn pauli_z() -> CMat {
        CMat::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]])
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.mul(&y).approx_eq(&z.scale(C64::i()), 1e-12));
        // X² = I
        assert!(x.mul(&x).approx_eq(&CMat::identity(2), 1e-12));
        assert!(x.is_hermitian(1e-12) && y.is_hermitian(1e-12));
        assert!(y.is_unitary(1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!((xz.rows(), xz.cols()), (4, 4));
        assert_eq!(xz[(0, 2)], C64::ONE);
        assert_eq!(xz[(1, 3)], -C64::ONE);
        assert_eq!(xz[(0, 0)], C64::ZERO);
        // (X⊗Z)(X⊗Z) = I₄
        assert!(xz.mul(&xz).approx_eq(&CMat::identity(4), 1e-12));
    }

    #[test]
    fn trace_and_norm() {
        let z = pauli_z();
        assert!(z.trace().approx_eq(C64::ZERO, 1e-12));
        assert!((z.frobenius_norm() - 2f64.sqrt()).abs() < 1e-12);
        assert!(CMat::identity(3).trace().approx_eq(C64::real(3.0), 1e-12));
    }

    #[test]
    fn adjoint_reverses_product() {
        let a = CMat::from_fn(3, 3, |i, j| C64::new(i as f64, j as f64 * 0.5));
        let b = CMat::from_fn(3, 3, |i, j| C64::new(j as f64 - i as f64, 1.0));
        let lhs = a.mul(&b).adjoint();
        let rhs = b.adjoint().mul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn matvec_matches_mul() {
        let a = CMat::from_fn(2, 3, |i, j| C64::new((i * 3 + j) as f64, 0.0));
        let v = vec![C64::real(1.0), C64::real(-1.0), C64::real(2.0)];
        let got = a.matvec(&v);
        assert!(got[0].approx_eq(C64::real(0.0 - 1.0 + 4.0), 1e-12));
        assert!(got[1].approx_eq(C64::real(3.0 - 4.0 + 10.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mul_shape_mismatch_panics() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
