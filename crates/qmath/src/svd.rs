//! Complex singular value decomposition via one-sided Jacobi.

use crate::{CMat, C64};

/// Result of a singular value decomposition `A = U · diag(s) · V†`.
///
/// With `A` of shape `m × n` and `k = min(m, n)`:
/// `u` is `m × k` with orthonormal columns, `s` has `k` non-negative entries
/// in descending order, and `v` is `n × k` with orthonormal columns.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: CMat,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors (columns); `A = U diag(s) V†`.
    pub v: CMat,
}

impl Svd {
    /// Rebuilds `U · diag(s) · V†`.
    pub fn reconstruct(&self) -> CMat {
        let k = self.s.len();
        let mut d = CMat::zeros(k, k);
        for i in 0..k {
            d[(i, i)] = C64::real(self.s[i]);
        }
        self.u.mul(&d).mul(&self.v.adjoint())
    }

    /// Number of singular values above `threshold`.
    pub fn rank(&self, threshold: f64) -> usize {
        self.s.iter().filter(|&&x| x > threshold).count()
    }
}

/// Computes the SVD of a complex matrix with the one-sided Jacobi method.
///
/// One-sided Jacobi orthogonalizes pairs of columns of `A` with unitary
/// rotations accumulated into `V`; on convergence the column norms are the
/// singular values and the normalized columns form `U`. It is slower than
/// Golub–Kahan but numerically robust and simple — appropriate for the small
/// MPS bond matrices this workspace decomposes.
pub fn svd(a: &CMat) -> Svd {
    if a.rows() < a.cols() {
        // Work on the adjoint so that m >= n, then swap factors:
        // A† = U' S V'† ⇒ A = V' S U'†.
        let dec = svd(&a.adjoint());
        return Svd {
            u: dec.v,
            s: dec.s,
            v: dec.u,
        };
    }

    let m = a.rows();
    let n = a.cols();
    let mut w = a.clone(); // columns get orthogonalized in place
    let mut v = CMat::identity(n);

    let scale = a.frobenius_norm().max(1e-300);
    let tol = 1e-15 * scale * scale;

    for _sweep in 0..60 {
        let mut rotated = false;
        for i in 0..n {
            for j in (i + 1)..n {
                // Gram entries for the column pair.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = C64::ZERO;
                for k in 0..m {
                    let wi = w[(k, i)];
                    let wj = w[(k, j)];
                    alpha += wi.norm_sqr();
                    beta += wj.norm_sqr();
                    gamma += wi.conj() * wj;
                }
                if gamma.abs() <= tol.max(1e-15 * (alpha * beta).sqrt()) {
                    continue;
                }
                rotated = true;
                // Diagonalize the Hermitian 2×2 Gram block
                // [[alpha, gamma], [gamma*, beta]].
                let phi = gamma.arg();
                let g = gamma.abs();
                let theta = 0.5 * (2.0 * g).atan2(alpha - beta);
                let c = theta.cos();
                let s = theta.sin();
                let e_pos = C64::cis(phi);
                let e_neg = e_pos.conj();
                // Columns := columns · U with U = [[c, -s e^{iφ}],[s e^{-iφ}, c]].
                for k in 0..m {
                    let wi = w[(k, i)];
                    let wj = w[(k, j)];
                    w[(k, i)] = wi * c + wj * (s * e_neg);
                    w[(k, j)] = wj * c - wi * (s * e_pos);
                }
                for k in 0..n {
                    let vi = v[(k, i)];
                    let vj = v[(k, j)];
                    v[(k, i)] = vi * c + vj * (s * e_neg);
                    v[(k, j)] = vj * c - vi * (s * e_pos);
                }
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and left vectors.
    let mut entries: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm: f64 = (0..m).map(|k| w[(k, j)].norm_sqr()).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    entries.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let k = n; // == min(m, n) because m >= n here
    let mut u = CMat::zeros(m, k);
    let mut s = Vec::with_capacity(k);
    let mut vs = CMat::zeros(n, k);
    for (col, &(norm, j)) in entries.iter().enumerate() {
        s.push(norm);
        if norm > 1e-300 {
            for r in 0..m {
                u[(r, col)] = w[(r, j)] / norm;
            }
        }
        for r in 0..n {
            vs[(r, col)] = v[(r, j)];
        }
    }
    Svd { u, s, v: vs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_mat(m: usize, n: usize, seed: u64) -> CMat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        CMat::from_fn(m, n, |_, _| C64::new(next(), next()))
    }

    #[test]
    fn reconstructs_tall_matrix() {
        let a = random_mat(6, 4, 3);
        let dec = svd(&a);
        assert!(dec.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn reconstructs_wide_matrix() {
        let a = random_mat(3, 7, 11);
        let dec = svd(&a);
        assert_eq!(dec.s.len(), 3);
        assert!(dec.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn factors_are_isometries() {
        let a = random_mat(5, 5, 21);
        let dec = svd(&a);
        let k = dec.s.len();
        assert!(dec
            .u
            .adjoint()
            .mul(&dec.u)
            .approx_eq(&CMat::identity(k), 1e-9));
        assert!(dec
            .v
            .adjoint()
            .mul(&dec.v)
            .approx_eq(&CMat::identity(k), 1e-9));
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = random_mat(8, 5, 5);
        let dec = svd(&a);
        for w in dec.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(dec.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_detects_low_rank() {
        // Outer product: rank 1.
        let u = random_mat(6, 1, 9);
        let vt = random_mat(1, 6, 13);
        let a = u.mul(&vt);
        let dec = svd(&a);
        assert_eq!(dec.rank(1e-10), 1);
        assert!(dec.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn identity_svd() {
        let a = CMat::identity(4);
        let dec = svd(&a);
        for &x in &dec.s {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_matrix() {
        let a = CMat::zeros(3, 3);
        let dec = svd(&a);
        assert!(dec.s.iter().all(|&x| x == 0.0));
        assert!(dec.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn frobenius_matches_singular_values() {
        let a = random_mat(5, 4, 77);
        let dec = svd(&a);
        let fro = a.frobenius_norm();
        let ssum: f64 = dec.s.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((fro - ssum).abs() < 1e-9);
    }
}
