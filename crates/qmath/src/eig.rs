//! Hermitian eigendecomposition via the cyclic Jacobi method.

use crate::{CMat, C64};

/// Result of a Hermitian eigendecomposition.
///
/// Satisfies `A · v_k = λ_k · v_k` where `v_k` is the `k`-th column of
/// [`EigH::vectors`] and `λ_k = values[k]`. Eigenvalues are sorted in
/// ascending order.
#[derive(Clone, Debug)]
pub struct EigH {
    /// Eigenvalues in ascending order (real, since the input is Hermitian).
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMat,
}

impl EigH {
    /// Rebuilds `V · diag(λ) · V†`; useful for testing and for spectral
    /// filtering such as [`psd_project`].
    pub fn reconstruct(&self) -> CMat {
        let n = self.values.len();
        let mut d = CMat::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = C64::real(self.values[i]);
        }
        self.vectors.mul(&d).mul(&self.vectors.adjoint())
    }
}

/// Computes the eigendecomposition of a Hermitian matrix with the cyclic
/// Jacobi method.
///
/// The method applies two-sided unitary rotations that zero out one
/// off-diagonal pair at a time; for Hermitian input it converges
/// quadratically and is unconditionally stable, which matters more here than
/// speed (the matrices are small fragment Choi matrices).
///
/// # Panics
///
/// Panics if `a` is not square. The Hermitian property is assumed; only the
/// lower triangle influences the result in a non-Hermitian input.
pub fn eigh(a: &CMat) -> EigH {
    assert_eq!(a.rows(), a.cols(), "eigh requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = CMat::identity(n);

    // Convergence threshold relative to the matrix scale.
    let scale = m.frobenius_norm().max(1e-300);
    let tol = 1e-14 * scale;

    for _sweep in 0..100 {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                // Absorb the phase of the off-diagonal entry, then pick the
                // classic real Jacobi rotation angle.
                let phi = apq.arg();
                let g = apq.abs();
                let theta = 0.5 * (2.0 * g).atan2(app - aqq);
                let c = theta.cos();
                let s = theta.sin();
                // Unitary 2×2: U = [[c, -s·e^{iφ}], [s·e^{-iφ}, c]]
                let e_pos = C64::cis(phi);
                let e_neg = e_pos.conj();

                // A := U† A U, applied as column then row updates.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = akp * c + akq * (s * e_neg);
                    m[(k, q)] = akq * c - akp * (s * e_pos);
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = apk * c + aqk * (s * e_pos);
                    m[(q, k)] = aqk * c - apk * (s * e_neg);
                }
                // V := V U
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * c + vkq * (s * e_neg);
                    v[(k, q)] = vkq * c - vkp * (s * e_pos);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    order.sort_by(|&i, &j| values_raw[i].partial_cmp(&values_raw[j]).unwrap());

    let values = order.iter().map(|&i| values_raw[i]).collect();
    let vectors = CMat::from_fn(n, n, |i, j| v[(i, order[j])]);
    EigH { values, vectors }
}

/// Projects a Hermitian matrix onto the positive semidefinite cone by
/// clipping negative eigenvalues to zero.
///
/// Note that plain clipping *increases* the trace; when the trace carries
/// meaning (probability mass), prefer [`psd_project_with_trace`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn psd_project(a: &CMat) -> CMat {
    let dec = eigh(a);
    let n = dec.values.len();
    let mut d = CMat::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = C64::real(dec.values[i].max(0.0));
    }
    dec.vectors.mul(&d).mul(&dec.vectors.adjoint())
}

/// The Frobenius-closest positive semidefinite matrix with a fixed trace
/// (Smolin–Gambetta–Smith water-filling).
///
/// Solves `min ‖M − A‖_F` over `M ⪰ 0` with `tr M = target_trace` by
/// shifting the eigenvalue spectrum: `μ_i = max(λ_i + ν, 0)` with `ν`
/// chosen so the kept eigenvalues sum to the target. This is the
/// physicality-restoring step of maximum-likelihood fragment tomography:
/// finite-shot Choi blocks keep their (unbiased) probability mass while
/// shedding negative eigenvalues.
///
/// # Panics
///
/// Panics if `a` is not square or `target_trace < 0`.
pub fn psd_project_with_trace(a: &CMat, target_trace: f64) -> CMat {
    assert!(target_trace >= 0.0, "trace target must be non-negative");
    let dec = eigh(a);
    let n = dec.values.len();
    // Eigenvalues ascending; scan the suffix kept alive by the shift.
    let mut mu = vec![0.0; n];
    let mut kept = 0usize;
    let mut nu = 0.0;
    let mut suffix_sum = 0.0;
    for k in (0..n).rev() {
        suffix_sum += dec.values[k];
        let count = n - k;
        let candidate_nu = (target_trace - suffix_sum) / count as f64;
        if dec.values[k] + candidate_nu > 0.0 {
            kept = count;
            nu = candidate_nu;
        } else {
            break;
        }
    }
    for k in (n - kept)..n {
        mu[k] = (dec.values[k] + nu).max(0.0);
    }
    let mut d = CMat::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = C64::real(mu[i]);
    }
    dec.vectors.mul(&d).mul(&dec.vectors.adjoint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hermitian_from_seed(n: usize, seed: u64) -> CMat {
        // Small deterministic pseudo-random Hermitian matrix.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let g = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        g.add(&g.adjoint()).scale(C64::real(0.5))
    }

    #[test]
    fn diagonalizes_pauli_z() {
        let z = CMat::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]]);
        let dec = eigh(&z);
        assert!((dec.values[0] + 1.0).abs() < 1e-12);
        assert!((dec.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_random_hermitian() {
        for seed in 1..6 {
            let a = hermitian_from_seed(6, seed);
            let dec = eigh(&a);
            assert!(
                dec.reconstruct().approx_eq(&a, 1e-9),
                "seed {seed} failed reconstruction"
            );
            assert!(dec.vectors.is_unitary(1e-9));
            // Sorted ascending.
            for w in dec.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn eigenvector_residuals_small() {
        let a = hermitian_from_seed(5, 42);
        let dec = eigh(&a);
        for k in 0..5 {
            let v: Vec<C64> = (0..5).map(|i| dec.vectors[(i, k)]).collect();
            let av = a.matvec(&v);
            for i in 0..5 {
                let expected = v[i] * dec.values[k];
                assert!(
                    av[i].approx_eq(expected, 1e-9),
                    "residual too large at ({i},{k})"
                );
            }
        }
    }

    #[test]
    fn psd_projection_removes_negative_part() {
        let a = CMat::from_rows(&[&[C64::real(1.0), C64::ZERO], &[C64::ZERO, C64::real(-0.5)]]);
        let p = psd_project(&a);
        let dec = eigh(&p);
        assert!(dec.values.iter().all(|&l| l >= -1e-12));
        assert!(p[(0, 0)].approx_eq(C64::ONE, 1e-10));
        assert!(p[(1, 1)].approx_eq(C64::ZERO, 1e-10));
    }

    #[test]
    fn psd_projection_fixes_psd_input() {
        let a = hermitian_from_seed(4, 7);
        let spectrum_shifted = {
            // Make it comfortably PSD by adding a multiple of the identity.
            let shift = CMat::identity(4).scale(C64::real(10.0));
            a.add(&shift)
        };
        let p = psd_project(&spectrum_shifted);
        assert!(p.approx_eq(&spectrum_shifted, 1e-8));
    }

    #[test]
    fn trace_preserving_projection_keeps_trace() {
        let a = CMat::from_rows(&[&[C64::real(1.2), C64::ZERO], &[C64::ZERO, C64::real(-0.2)]]);
        let p = psd_project_with_trace(&a, 1.0);
        assert!((p.trace().re - 1.0).abs() < 1e-10, "trace preserved");
        let dec = eigh(&p);
        assert!(dec.values.iter().all(|&l| l >= -1e-12));
        // The negative part is shifted, not just clipped: both eigenvalues
        // move by the same ν where still positive.
        assert!((dec.values[1] - 1.0).abs() < 1e-9, "{:?}", dec.values);
    }

    #[test]
    fn trace_preserving_projection_is_identity_on_physical_input() {
        let a = CMat::from_rows(&[
            &[C64::real(0.6), C64::new(0.1, 0.05)],
            &[C64::new(0.1, -0.05), C64::real(0.4)],
        ]);
        let p = psd_project_with_trace(&a, a.trace().re);
        assert!(p.approx_eq(&a, 1e-9));
    }

    #[test]
    fn trace_zero_projection_vanishes() {
        let a = hermitian_from_seed(3, 9);
        let p = psd_project_with_trace(&a, 0.0);
        assert!(p.frobenius_norm() < 1e-9);
    }

    #[test]
    fn handles_degenerate_eigenvalues() {
        let a = CMat::identity(4).scale(C64::real(2.5));
        let dec = eigh(&a);
        for &l in &dec.values {
            assert!((l - 2.5).abs() < 1e-12);
        }
        assert!(dec.reconstruct().approx_eq(&a, 1e-10));
    }
}
