//! Recombination: contracting fragment tensors into output distributions.
//!
//! The distribution builder (paper §V-C) evaluates
//!
//! ```text
//! p(b) = Σ_{κ ∈ {I,X,Y,Z}^k}  Π_f  T_f[b_f, κ_f]
//! ```
//!
//! — a tensor-network contraction with one 4-valued edge per cut, hence the
//! `O(4^k)` reconstruction cost the paper analyzes. Three query shapes are
//! supported:
//!
//! * [`Reconstructor::joint`] — the full sparse joint distribution
//!   (feasible when fragment supports are modest);
//! * [`Reconstructor::marginals`] — all single-qubit marginals, the
//!   scalable path used for the paper's 300-qubit runs (its dense-metric
//!   fidelity is defined on marginals);
//! * [`Reconstructor::probability_of`] — "strong simulation" of one
//!   bitstring to machine precision.
//!
//! The Clifford-specific "fewer stitching calculations" optimization
//! (paper §IX) skips every `κ` containing a Pauli with identically-zero
//! fragment weight, which prunes most of the `4^k` terms for stabilizer
//! fragments.

use crate::tensor::FragmentTensor;
use metrics::Distribution;
use qcir::Bits;

/// Hard cap on cuts for dense `4^k` contraction.
pub const MAX_CONTRACTION_CUTS: usize = 13;

/// Contracts a set of fragment tensors over their shared cuts.
#[derive(Clone, Debug)]
pub struct Reconstructor<'a> {
    tensors: &'a [FragmentTensor],
    num_cuts: usize,
    n_qubits: usize,
    sparse: bool,
    tol: f64,
}

impl<'a> Reconstructor<'a> {
    /// Creates a reconstructor over `tensors` joined by `num_cuts` cuts in
    /// an `n_qubits`-wide original circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_cuts` exceeds [`MAX_CONTRACTION_CUTS`].
    pub fn new(tensors: &'a [FragmentTensor], num_cuts: usize, n_qubits: usize) -> Self {
        assert!(
            num_cuts <= MAX_CONTRACTION_CUTS,
            "contraction over {num_cuts} cuts exceeds the 4^k budget"
        );
        Reconstructor {
            tensors,
            num_cuts,
            n_qubits,
            sparse: true,
            tol: 1e-12,
        }
    }

    /// Enables or disables the sparse (zero-Pauli-skipping) contraction.
    pub fn with_sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }

    /// Iterates over all `4^k` cut assignments, calling `f` with the
    /// per-fragment Pauli indices. Skips zero-weight assignments when the
    /// sparse optimization is active. Returns the number of assignments
    /// actually visited.
    fn for_each_assignment(&self, mut f: impl FnMut(&[usize])) -> usize {
        let k = self.num_cuts;
        let total = 1u64 << (2 * k);
        let mut indices = vec![0usize; self.tensors.len()];
        let mut visited = 0;
        for kappa in 0..total {
            let digit = |cut: usize| ((kappa >> (2 * cut)) & 0b11) as usize;
            let mut skip = false;
            for (fi, t) in self.tensors.iter().enumerate() {
                let idx = t.pauli_index(digit);
                // Exact skip: a zero slice maximum means every term of this
                // assignment vanishes (stabilizer fragments hit this for
                // most multi-qubit Paulis — paper §IX optimization 2).
                if self.sparse && t.slice_max_abs(idx) <= self.tol {
                    skip = true;
                    break;
                }
                indices[fi] = idx;
            }
            if skip {
                continue;
            }
            visited += 1;
            f(&indices);
        }
        visited
    }

    /// Total reconstructed probability mass `Σ_b p(b)`; 1 up to sampling
    /// error.
    pub fn total_mass(&self) -> f64 {
        let mut mass = 0.0;
        self.for_each_assignment(|indices| {
            let mut prod = 1.0;
            for (t, &idx) in self.tensors.iter().zip(indices) {
                prod *= t.total(idx);
            }
            mass += prod;
        });
        mass
    }

    /// Builds the full joint distribution over the original circuit's
    /// qubits.
    ///
    /// # Panics
    ///
    /// Panics if the product of fragment supports exceeds
    /// `max_support` — use [`Reconstructor::marginals`] for wide circuits.
    pub fn joint(&self, max_support: usize) -> Distribution {
        let support: usize = self
            .tensors
            .iter()
            .map(|t| t.support_len().max(1))
            .product();
        assert!(
            support <= max_support,
            "joint support {support} exceeds limit {max_support}"
        );
        let mut dist = Distribution::new(self.n_qubits);
        self.for_each_assignment(|indices| {
            // Outer product of the fragments' b-slices.
            let mut partial: Vec<(Bits, f64)> = vec![(Bits::zeros(self.n_qubits), 1.0)];
            for (t, &idx) in self.tensors.iter().zip(indices) {
                if t.support_len() == 0 {
                    continue;
                }
                let mut next = Vec::with_capacity(partial.len() * t.support_len());
                for (b, coeffs) in t.iter() {
                    let v = coeffs[idx];
                    if v == 0.0 {
                        continue;
                    }
                    for (gb, w) in &partial {
                        let mut gb2 = gb.clone();
                        b.scatter_into(t.output_globals(), &mut gb2);
                        next.push((gb2, w * v));
                    }
                }
                partial = next;
            }
            for (b, w) in partial {
                if w != 0.0 {
                    dist.add(b, w);
                }
            }
        });
        dist
    }

    /// All single-qubit marginals of the reconstructed distribution,
    /// normalized to unit mass. Scales to hundreds of qubits: cost is
    /// `O(4^k · n)` independent of fragment support sizes.
    pub fn marginals(&self) -> Vec<[f64; 2]> {
        let nf = self.tensors.len();
        let mut marg = vec![[0.0f64; 2]; self.n_qubits];
        let mut mass = 0.0;
        self.for_each_assignment(|indices| {
            // Prefix/suffix products of fragment totals.
            let mut prefix = vec![1.0; nf + 1];
            for f in 0..nf {
                prefix[f + 1] = prefix[f] * self.tensors[f].total(indices[f]);
            }
            let mut suffix = vec![1.0; nf + 1];
            for f in (0..nf).rev() {
                suffix[f] = suffix[f + 1] * self.tensors[f].total(indices[f]);
            }
            mass += prefix[nf];
            for (f, t) in self.tensors.iter().enumerate() {
                let excl = prefix[f] * suffix[f + 1];
                if excl == 0.0 {
                    continue;
                }
                for (bit, &global) in t.output_globals().iter().enumerate() {
                    for v in 0..2 {
                        marg[global][v] += excl * t.marginal(bit, v == 1, indices[f]);
                    }
                }
            }
        });
        if mass.abs() > 1e-12 {
            for m in &mut marg {
                m[0] /= mass;
                m[1] /= mass;
            }
        }
        // Repair small quasi-probability artifacts.
        for m in &mut marg {
            m[0] = m[0].clamp(0.0, 1.0);
            m[1] = m[1].clamp(0.0, 1.0);
            let s = m[0] + m[1];
            if s > 0.0 {
                m[0] /= s;
                m[1] /= s;
            }
        }
        marg
    }

    /// "Strong simulation": the probability of one specific global
    /// bitstring, to machine precision in exact mode.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the original qubit count.
    pub fn probability_of(&self, bits: &Bits) -> f64 {
        assert_eq!(bits.len(), self.n_qubits, "bitstring width mismatch");
        let frag_bits: Vec<Bits> = self
            .tensors
            .iter()
            .map(|t| bits.extract(t.output_globals()))
            .collect();
        let mut p = 0.0;
        self.for_each_assignment(|indices| {
            let mut prod = 1.0;
            for ((t, &idx), fb) in self.tensors.iter().zip(indices).zip(&frag_bits) {
                prod *= t.value(fb, idx);
                if prod == 0.0 {
                    break;
                }
            }
            p += prod;
        });
        p
    }

    /// Number of `4^k` terms the sparse contraction actually visits —
    /// exposed for the §IX ablation benchmark.
    pub fn visited_assignments(&self) -> usize {
        self.for_each_assignment(|_| {})
    }

    /// Expectation value of a Z-string observable `⟨Π_{q∈subset} Z_q⟩` on
    /// the reconstructed distribution, normalized by the total mass.
    ///
    /// Unlike going through [`Reconstructor::joint`], this works at any
    /// width: each fragment contributes a signed total per cut assignment,
    /// `Σ_b T[b,κ]·(−1)^{parity(b over subset)}`, so the cost is
    /// `O(4^k · Σ_f support_f)` — the scalable path for VQE-style
    /// diagonal observables on hundreds of qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        for &q in subset {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        let member: Vec<bool> = {
            let mut m = vec![false; self.n_qubits];
            for &q in subset {
                m[q] = true;
            }
            m
        };
        // Signed totals per fragment, computed lazily per assignment would
        // repeat work; precompute per fragment as dense vectors instead.
        let signed: Vec<Vec<f64>> = self
            .tensors
            .iter()
            .map(|t| {
                let mut out = vec![0.0; t.pauli_dim()];
                for (b, coeffs) in t.iter() {
                    let parity = t
                        .output_globals()
                        .iter()
                        .enumerate()
                        .filter(|(bit, &g)| member[g] && b.get(*bit))
                        .count()
                        % 2;
                    let sign = if parity == 1 { -1.0 } else { 1.0 };
                    for (i, &x) in coeffs.iter().enumerate() {
                        out[i] += sign * x;
                    }
                }
                out
            })
            .collect();
        let mut num = 0.0;
        let mut mass = 0.0;
        self.for_each_assignment(|indices| {
            let mut sprod = 1.0;
            let mut tprod = 1.0;
            for (f, &idx) in indices.iter().enumerate() {
                sprod *= signed[f][idx];
                tprod *= self.tensors[f].total(idx);
            }
            num += sprod;
            mass += tprod;
        });
        if mass.abs() > 1e-12 {
            (num / mass).clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use crate::evaluate::{EvalMode, EvalOptions};
    use crate::tensor::{build_fragment_tensor, TensorOptions};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct_exact(c: &Circuit) -> (Vec<FragmentTensor>, usize, usize) {
        let cut = cut_circuit(c, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tensors: Vec<FragmentTensor> = cut
            .fragments
            .iter()
            .map(|f| {
                build_fragment_tensor(f, &eval, &TensorOptions::default(), &mut rng).unwrap()
            })
            .collect();
        (tensors, cut.num_cuts, cut.original_qubits)
    }

    #[test]
    fn identity_cut_reconstructs_zero_state() {
        let mut c = Circuit::new(1);
        c.add_gate(qcir::Gate::I, &[0]).t(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        assert!((dist.prob(&Bits::parse("0").unwrap()) - 1.0).abs() < 1e-10);
        assert!(dist.prob(&Bits::parse("1").unwrap()).abs() < 1e-10);
        assert!((r.total_mass() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn h_t_h_matches_statevector() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 2);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        let sv = svsim::StateVec::run(&c).unwrap();
        for (idx, bstr) in [(0usize, "0"), (1usize, "1")] {
            let expect = sv.probability_of_index(idx);
            let got = dist.prob(&Bits::parse(bstr).unwrap());
            assert!(
                (expect - got).abs() < 1e-9,
                "p({bstr}): sv={expect} cut={got}"
            );
            assert!((r.probability_of(&Bits::parse(bstr).unwrap()) - expect).abs() < 1e-9);
        }
        let marg = r.marginals();
        assert!((marg[0][0] - sv.probability_of_index(0)).abs() < 1e-9);
    }

    #[test]
    fn two_qubit_loop_cut_matches_statevector() {
        // CX - T - CX creates a fragment loop (2 cuts to the same
        // Clifford fragment).
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).cx(0, 1).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 2);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(100_000);
        let sv = svsim::StateVec::run(&c).unwrap();
        for idx in 0..4usize {
            let b = Bits::from_u64(idx as u64, 2);
            assert!(
                (dist.prob(&b) - sv.probability_of_index(idx)).abs() < 1e-9,
                "p({b})"
            );
        }
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marginals_match_joint() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let (tensors, k, n) = reconstruct_exact(&c);
        let r = Reconstructor::new(&tensors, k, n);
        let joint = r.joint(100_000);
        let marg = r.marginals();
        for q in 0..3 {
            let jm = joint.marginal(q);
            assert!(
                (jm[0] - marg[q][0]).abs() < 1e-9 && (jm[1] - marg[q][1]).abs() < 1e-9,
                "qubit {q}: joint {jm:?} vs marginal {:?}",
                marg[q]
            );
        }
    }

    #[test]
    fn sparse_contraction_matches_dense_and_prunes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        let sparse = Reconstructor::new(&tensors, k, n);
        let dense = Reconstructor::new(&tensors, k, n).with_sparse(false);
        let b = Bits::parse("00").unwrap();
        assert!((sparse.probability_of(&b) - dense.probability_of(&b)).abs() < 1e-12);
        let visited_sparse = sparse.visited_assignments();
        let visited_dense = dense.visited_assignments();
        assert!(visited_sparse < visited_dense, "sparse must prune stabilizer zeros");
        assert_eq!(visited_dense, 1 << (2 * k));
    }

    #[test]
    fn no_cut_clifford_circuit_reconstructs_directly() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 0);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        assert!((dist.prob(&Bits::parse("00").unwrap()) - 0.5).abs() < 1e-12);
        assert!((dist.prob(&Bits::parse("11").unwrap()) - 0.5).abs() < 1e-12);
    }
}
