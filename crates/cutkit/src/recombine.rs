//! Recombination: contracting fragment tensors into output distributions.
//!
//! The distribution builder (paper §V-C) evaluates
//!
//! ```text
//! p(b) = Σ_{κ ∈ {I,X,Y,Z}^k}  Π_f  T_f[b_f, κ_f]
//! ```
//!
//! — a tensor-network contraction with one 4-valued edge per cut, hence the
//! `O(4^k)` reconstruction cost the paper analyzes. Three query shapes are
//! supported:
//!
//! * [`Reconstructor::joint`] — the full sparse joint distribution
//!   (feasible when fragment supports are modest);
//! * [`Reconstructor::marginals`] — all single-qubit marginals, the
//!   scalable path used for the paper's 300-qubit runs (its dense-metric
//!   fidelity is defined on marginals);
//! * [`Reconstructor::probability_of`] — "strong simulation" of one
//!   bitstring to machine precision.
//!
//! The Clifford-specific "fewer stitching calculations" optimization
//! (paper §IX) skips every `κ` containing a Pauli with identically-zero
//! fragment weight, which prunes most of the `4^k` terms for stabilizer
//! fragments.
//!
//! # Parallel contraction
//!
//! The `4^k` assignment range is split into fixed-size chunks
//! ([`ASSIGNMENTS_PER_CHUNK`]), each contracted into its own accumulator;
//! accumulators are merged in chunk order. Because the chunking is
//! independent of the worker count, every query is **bit-identical for any
//! thread count** (including the sequential path, which runs the same
//! chunks in the same merge order). Configure workers with
//! [`Reconstructor::with_threads`].
//!
//! Sparse skipping precomputes one bitmask of non-vanishing Pauli slices
//! per tensor, turning the per-assignment check into a single bit test.
//!
//! # Error-budgeted truncation
//!
//! [`Reconstructor::with_error_budget`] turns accuracy into a latency
//! knob: each cut assignment carries a cheap weight bound — the product
//! of its fragments' per-slice L1 masses
//! ([`FragmentTensor::slice_abs_sum`]), which upper-bounds the total
//! probability mass the assignment can contribute — and the sweep skips
//! assignments greedily while the accumulated bound of everything skipped
//! stays within the budget. The budget is split evenly across the fixed
//! chunks and skip decisions are made sequentially within each chunk, so
//! they are a pure function of the chunk (never of the thread count or
//! schedule): truncated results stay **bit-identical for any
//! parallelism**, and `budget = 0` (the default) runs the exact sweep
//! unchanged, bit for bit. Every query reports what it skipped via
//! [`SweepStats`] (see [`Reconstructor::try_joint_with_stats`] /
//! [`Reconstructor::try_marginals_with_stats`]): the accumulated
//! `skipped_bound` upper-bounds the L1 distance between the truncated and
//! the exact unnormalized joint distribution, by the triangle inequality.
//! Skip decisions depend only on the assignment's indices — never on the
//! query — so marginals, joint, and strong-simulation queries of one
//! reconstructor all truncate the identical assignment set and stay
//! mutually consistent.
//!
//! # Interned-id joint accumulation
//!
//! [`Reconstructor::joint`]'s outer product addresses outcomes by dense
//! mixed-radix ids over fragment entry indices: partial terms carry
//! `(id, weight)` pairs instead of cloned bitstrings, per-chunk
//! accumulators are flat id-indexed vectors, and chunk merges are vector
//! adds. Bitstrings are decoded from ids exactly once, into the final
//! [`Distribution`] (itself keyed by interned ids — see
//! `metrics::intern`). Output stays bit-identical to ordered-map
//! accumulation because every read path emits in sorted key order.

use crate::tensor::FragmentTensor;
use faultkit::{into_inner_or_recover, lock_or_recover, Fault, Stage, Supervisor};
use metrics::Distribution;
use qcir::{Bits, IndexPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hard cap on cuts for dense `4^k` contraction.
pub const MAX_CONTRACTION_CUTS: usize = 13;

/// Assignments contracted per work chunk. Fixed (not derived from the
/// thread count) so that results are bit-identical for any parallelism;
/// `4096 = 4^6` keeps single-chunk contractions (k ≤ 6) on the zero-overhead
/// sequential path while giving enough chunks at k ≥ 8 to balance load.
pub const ASSIGNMENTS_PER_CHUNK: u64 = 4096;

/// Base-4 digits spanned by one chunk: cut digits at positions ≥ this are
/// constant within an aligned chunk, which is what the chunk-level caches
/// (constant-mask prefilter, constant prefix/suffix product hoists) key on.
const CHUNK_CUT_DIGITS: usize = 6;
const _: () = assert!(ASSIGNMENTS_PER_CHUNK == 1 << (2 * CHUNK_CUT_DIGITS));

/// Per-tensor bitmask of Pauli indices whose slice is not identically zero.
#[derive(Clone, Debug)]
struct NonzeroMask {
    words: Vec<u64>,
}

impl NonzeroMask {
    fn build(tensor: &FragmentTensor, tol: f64) -> Self {
        let dim = tensor.pauli_dim();
        let mut words = vec![0u64; dim.div_ceil(64)];
        for idx in 0..dim {
            if tensor.slice_max_abs(idx) > tol {
                words[idx >> 6] |= 1u64 << (idx & 63);
            }
        }
        NonzeroMask { words }
    }

    #[inline]
    fn test(&self, idx: usize) -> bool {
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }
}

/// Contracts a set of fragment tensors over their shared cuts.
#[derive(Clone, Debug)]
pub struct Reconstructor<'a> {
    tensors: &'a [FragmentTensor],
    num_cuts: usize,
    n_qubits: usize,
    sparse: bool,
    /// Worker threads for the chunked contraction (0 = all available).
    threads: usize,
    /// Precomputed sparse-skip masks, one per tensor.
    nonzero: Vec<NonzeroMask>,
    /// For each cut, the `(tensor, base-4 place value)` pairs its digit
    /// contributes to — the incremental-update table of the assignment
    /// sweep (each cut has exactly one upstream and one downstream end).
    cut_tensors: Vec<Vec<(usize, usize)>>,
    /// Whether a tensor's every incident cut has id ≥ [`CHUNK_CUT_DIGITS`]:
    /// its composite Pauli index is then constant within an aligned chunk,
    /// so its sparse-mask test and its prefix/suffix product factors are
    /// hoisted to once per chunk instead of once per assignment.
    chunk_constant: Vec<bool>,
    /// Tensors with at least one low (< [`CHUNK_CUT_DIGITS`]) cut — the
    /// only ones whose index moves within a chunk, and therefore the only
    /// ones the per-assignment sparse test must consult.
    varying: Vec<usize>,
    /// Length of the maximal leading run of chunk-constant tensors.
    const_prefix: usize,
    /// Start of the maximal trailing run of chunk-constant tensors.
    const_suffix: usize,
    /// Prebuilt circuit-output scatter plans (one per tensor, mapping the
    /// fragment's output bits into the global bitstring), shared from a
    /// session-level plan so repeated joint reconstructions skip rebuilding
    /// them.
    output_plans: Option<&'a [IndexPlan]>,
    /// Supervision context, consulted once per contraction chunk on both
    /// the sequential and the parallel path (see
    /// [`Reconstructor::with_supervisor`]).
    supervisor: Supervisor,
    /// Accumulated-skip L1 budget for the truncated sweep (0 = exact; see
    /// [`Reconstructor::with_error_budget`]).
    error_budget: f64,
    /// Lazily-built record of a budgeted sweep's visited set. Skip
    /// decisions are a pure function of the tensors and the budget —
    /// never of the query — so the first budgeted query's sweep is
    /// recorded and every later query of this reconstructor replays it
    /// body-only, skipping the `4^k` iteration entirely. `None` inside
    /// the cell means the set was measured too large to retain. Purely a
    /// performance cache: replayed queries reproduce the recorded sweep's
    /// exact call sequence, so results are bit-identical with or without
    /// it. Clones share the cache (it depends only on shared state);
    /// setters that change the skip set ([`Reconstructor::with_sparse`],
    /// [`Reconstructor::with_error_budget`]) swap in a fresh cell.
    skip_cache: Arc<OnceLock<Option<Vec<ChunkRecord>>>>,
}

/// One chunk of a recorded budgeted sweep: which assignments the chunk
/// contracted (as offsets into the chunk) and the stats it reported.
/// Every chunk gets a record so replay reproduces the fresh sweep's merge
/// sequence exactly — including chunks the constant-mask sparse test
/// skipped outright, whose empty accumulator still merges but whose
/// `chunk_start` hook never ran (`masked`).
#[derive(Clone, Debug)]
struct ChunkRecord {
    chunk: u64,
    /// Whether the constant-mask test skipped the whole chunk before
    /// `chunk_start` (replay then merges an untouched accumulator).
    masked: bool,
    /// Offsets of body-visited assignments ([`ASSIGNMENTS_PER_CHUNK`] is
    /// 4096, so `u16` always fits).
    visited: Vec<u16>,
    stats: SweepStats,
}

/// Cap on the total number of recorded visited offsets: a budgeted sweep
/// that still visits more than this replays no faster than it re-iterates,
/// so the cache is dropped rather than grown past ~8 MiB.
const SKIP_CACHE_MAX_VISITED: usize = 1 << 22;

/// Per-worker scratch for the assignment sweep.
struct SweepScratch {
    /// Current composite Pauli index per tensor.
    indices: Vec<usize>,
    /// Current base-4 digit per cut.
    digits: Vec<u8>,
}

/// What one contraction sweep visited and skipped (see the module docs on
/// error-budgeted truncation).
///
/// `skipped_bound` is the accumulated per-assignment weight bound of every
/// budget-skipped assignment — each bound is the product of the
/// assignment's per-fragment slice L1 masses, which equals the total
/// probability mass that assignment contributes to the unnormalized joint
/// in absolute value — so `skipped_bound` upper-bounds the L1 distance
/// between the truncated and the exact unnormalized joint distribution.
/// With an error budget of zero (the default) the sweep is exact:
/// `skipped == 0` and `skipped_bound == 0.0`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Assignments whose contraction body actually ran — after both the
    /// sparse zero-slice skip and the budget truncation.
    pub visited: u64,
    /// Assignments skipped by the error budget. Sparse-skipped assignments
    /// are exact zeros and are counted by neither field.
    pub skipped: u64,
    /// Accumulated weight bound of the budget-skipped assignments — the
    /// guaranteed cap on the L1 error introduced by truncation.
    pub skipped_bound: f64,
}

impl SweepStats {
    /// Folds another chunk's stats into `self`. Always applied in chunk
    /// order (the float `skipped_bound` sum rides the same ordered merge
    /// as the accumulators), so totals are thread-count independent.
    fn absorb(&mut self, other: SweepStats) {
        self.visited += other.visited;
        self.skipped += other.skipped;
        self.skipped_bound += other.skipped_bound;
    }
}

impl<'a> Reconstructor<'a> {
    /// Creates a reconstructor over `tensors` joined by `num_cuts` cuts in
    /// an `n_qubits`-wide original circuit.
    ///
    /// # Panics
    ///
    /// Panics if `num_cuts` exceeds [`MAX_CONTRACTION_CUTS`].
    pub fn new(tensors: &'a [FragmentTensor], num_cuts: usize, n_qubits: usize) -> Self {
        assert!(
            num_cuts <= MAX_CONTRACTION_CUTS,
            "contraction over {num_cuts} cuts exceeds the 4^k budget"
        );
        let tol = 1e-12;
        let nonzero = tensors.iter().map(|t| NonzeroMask::build(t, tol)).collect();
        let mut cut_tensors: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_cuts];
        let mut chunk_constant = vec![true; tensors.len()];
        for (fi, t) in tensors.iter().enumerate() {
            let axes: Vec<usize> = t
                .input_cuts()
                .iter()
                .chain(t.output_cuts())
                .copied()
                .collect();
            let m = axes.len();
            for (j, &c) in axes.iter().enumerate() {
                cut_tensors[c].push((fi, 1usize << (2 * (m - 1 - j))));
                if c < CHUNK_CUT_DIGITS {
                    chunk_constant[fi] = false;
                }
            }
        }
        let varying: Vec<usize> = (0..tensors.len())
            .filter(|&fi| !chunk_constant[fi])
            .collect();
        let const_prefix = chunk_constant.iter().take_while(|&&c| c).count();
        let const_suffix = tensors.len()
            - chunk_constant
                .iter()
                .rev()
                .take_while(|&&c| c)
                .count()
                .min(tensors.len() - const_prefix);
        Reconstructor {
            tensors,
            num_cuts,
            n_qubits,
            sparse: true,
            threads: 1,
            nonzero,
            cut_tensors,
            chunk_constant,
            varying,
            const_prefix,
            const_suffix,
            output_plans: None,
            supervisor: Supervisor::new(),
            error_budget: 0.0,
            skip_cache: Arc::new(OnceLock::new()),
        }
    }

    /// Enables or disables the sparse (zero-Pauli-skipping) contraction.
    pub fn with_sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self.skip_cache = Arc::new(OnceLock::new());
        self
    }

    /// Sets the number of contraction worker threads (`0` = one per
    /// available core). Results are bit-identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the error budget of the truncated sweep: the contraction may
    /// skip cut assignments as long as the accumulated weight bound of
    /// everything skipped stays within `budget` (see the module docs). The
    /// realized bound is reported per query via [`SweepStats`]; it caps
    /// the L1 distance to the exact unnormalized joint. `0.0` (the
    /// default) disables truncation entirely — the exact sweep runs
    /// unchanged, bit for bit — and any fixed budget is bit-identical for
    /// every thread count.
    ///
    /// Repeated queries of one budgeted reconstructor share the work of
    /// deciding what to skip: the first query records which assignments
    /// survived and every later query replays that set body-only, without
    /// re-walking the `4^k` range (the skip set is query-independent, so
    /// this is exact, and replay reproduces the recorded call sequence
    /// bit for bit).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not finite or is negative.
    pub fn with_error_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "error budget must be finite and non-negative, got {budget}"
        );
        self.error_budget = budget;
        self.skip_cache = Arc::new(OnceLock::new());
        self
    }

    /// Attaches a supervision context, checked once per contraction chunk
    /// in the `4^k` assignment sweep (the recombination analogue of the
    /// evaluation-stage checkpoints). Supervised callers use the fallible
    /// queries ([`Reconstructor::try_marginals`],
    /// [`Reconstructor::try_joint`]); the infallible queries panic if an
    /// attached supervisor interrupts them. Checkpoint results never
    /// change any numeric output — surviving runs stay bit-identical.
    pub fn with_supervisor(mut self, supervisor: Supervisor) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Shares prebuilt circuit-output scatter plans (one per tensor, in
    /// tensor order, each mapping that fragment's output bits into the
    /// `n_qubits`-wide global bitstring). Session-level plans build these
    /// once; [`Reconstructor::joint`] and
    /// [`Reconstructor::probability_of`] then skip rebuilding them per
    /// query. Purely a caching hint — results are bit-identical with or
    /// without it.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the tensor count.
    pub fn with_output_plans(mut self, plans: &'a [IndexPlan]) -> Self {
        assert_eq!(plans.len(), self.tensors.len(), "one plan per tensor");
        self.output_plans = Some(plans);
        self
    }

    /// Number of fixed-size chunks the `4^k` assignment range splits into.
    fn num_chunks(&self) -> u64 {
        (1u64 << (2 * self.num_cuts)).div_ceil(ASSIGNMENTS_PER_CHUNK)
    }

    /// Resolved worker count for a contraction over `num_chunks` chunks
    /// (the shared heuristic: 0 = auto, clamped to the chunk count).
    fn effective_threads(&self, num_chunks: u64) -> usize {
        runtime::worker_count(self.threads, num_chunks.min(usize::MAX as u64) as usize)
    }

    /// Contracts one chunk of the assignment range into `acc`, returning
    /// the chunk's [`SweepStats`].
    ///
    /// `chunk_budget` is this chunk's even share of the error budget
    /// (`error_budget / num_chunks`, or 0 when truncation is off): skip
    /// decisions consult only the chunk's own assignments and its fixed
    /// share, never global state, so they are a pure function of the
    /// chunk — identical for any thread count or schedule.
    ///
    /// Tensor indices are maintained incrementally: advancing `κ` changes
    /// an amortized 4/3 base-4 digits, and each changed cut digit touches
    /// only the two tensor ends of that cut — instead of recomputing every
    /// tensor's composite index per assignment.
    /// When `record` is provided (the sequential path's first budgeted
    /// sweep), the chunk's visited offsets and stats are appended as a
    /// [`ChunkRecord`] — unless the constant-mask test skipped the chunk
    /// outright, which replay mirrors by having no record at all.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk<A>(
        &self,
        chunk: u64,
        chunk_budget: f64,
        acc: &mut A,
        chunk_start: &(impl Fn(&mut A, &[usize]) + Sync),
        body: &(impl Fn(&mut A, &[usize]) + Sync),
        scratch: &mut SweepScratch,
        record: Option<&mut Vec<ChunkRecord>>,
    ) -> SweepStats {
        let k = self.num_cuts;
        let total = 1u64 << (2 * k);
        let start = chunk * ASSIGNMENTS_PER_CHUNK;
        let end = (start + ASSIGNMENTS_PER_CHUNK).min(total);
        let SweepScratch { indices, digits } = scratch;
        for (c, d) in digits.iter_mut().enumerate() {
            *d = ((start >> (2 * c)) & 0b11) as u8;
        }
        for (fi, t) in self.tensors.iter().enumerate() {
            indices[fi] = t.pauli_index(|c| digits[c] as usize);
        }
        // Chunk-constant tensors (every incident cut ≥ 6) keep one
        // composite index across the whole aligned 4^6 chunk, so their
        // sparse-mask tests run once here instead of once per assignment.
        // A failing constant mask vanishes every assignment in the chunk
        // — skip it outright, which visits exactly the same (empty)
        // surviving set the per-assignment test would.
        if self.sparse
            && self
                .chunk_constant
                .iter()
                .zip(self.nonzero.iter())
                .zip(indices.iter())
                .any(|((&constant, mask), &idx)| constant && !mask.test(idx))
        {
            if let Some(records) = record {
                records.push(ChunkRecord {
                    chunk,
                    masked: true,
                    visited: Vec::new(),
                    stats: SweepStats::default(),
                });
            }
            return SweepStats::default();
        }
        chunk_start(acc, indices);
        let mut stats = SweepStats::default();
        let budgeted = chunk_budget > 0.0;
        let mut visited_offsets = record.as_ref().map(|_| Vec::new());
        let mut kappa = start;
        loop {
            // Exact skip: a zero slice maximum means every term of this
            // assignment vanishes (stabilizer fragments hit this for most
            // multi-qubit Paulis — paper §IX optimization 2). The
            // precomputed mask makes this a single bit test per tensor,
            // and only the tensors whose index moves within the chunk
            // (`varying`) need testing — the constant ones passed above.
            // It runs before the budget check: exact zeros are free and
            // must never consume budget.
            let surviving = !self.sparse
                || self
                    .varying
                    .iter()
                    .all(|&f| self.nonzero[f].test(indices[f]));
            if surviving {
                // Budget skip: greedily drop the assignment if its weight
                // bound — the product of per-fragment slice L1 masses,
                // exactly the mass it contributes to the unnormalized
                // joint — still fits in this chunk's remaining share.
                // Gated on `budgeted` so a zero budget runs the exact
                // sweep untouched.
                let truncated = budgeted && {
                    let mut bound = 1.0;
                    for (t, &idx) in self.tensors.iter().zip(indices.iter()) {
                        bound *= t.slice_abs_sum(idx);
                    }
                    stats.skipped_bound + bound <= chunk_budget && {
                        stats.skipped_bound += bound;
                        stats.skipped += 1;
                        true
                    }
                };
                if !truncated {
                    stats.visited += 1;
                    if let Some(offsets) = visited_offsets.as_mut() {
                        offsets.push((kappa - start) as u16);
                    }
                    body(acc, indices);
                }
            }
            kappa += 1;
            if kappa >= end {
                break;
            }
            // Base-4 increment with incremental tensor-index updates.
            let mut c = 0;
            loop {
                if digits[c] == 3 {
                    digits[c] = 0;
                    for &(f, w) in &self.cut_tensors[c] {
                        indices[f] -= 3 * w;
                    }
                    c += 1;
                } else {
                    digits[c] += 1;
                    for &(f, w) in &self.cut_tensors[c] {
                        indices[f] += w;
                    }
                    break;
                }
            }
        }
        if let (Some(records), Some(visited)) = (record, visited_offsets) {
            records.push(ChunkRecord {
                chunk,
                masked: false,
                visited,
                stats,
            });
        }
        stats
    }

    /// The chunked contraction driver: runs `body` over every surviving
    /// assignment, accumulating into per-chunk accumulators created by
    /// `init` and merged in chunk order by `merge`. Returns the final
    /// accumulator and the sweep's [`SweepStats`].
    ///
    /// The sequential path (one worker) uses the identical chunk/merge
    /// structure, so results are bit-identical regardless of thread count.
    fn run_contraction<A: Send>(
        &self,
        init: impl Fn() -> A + Sync,
        body: impl Fn(&mut A, &[usize]) + Sync,
        merge: impl FnMut(&mut A, A) + Send,
    ) -> Result<(A, SweepStats), Fault> {
        self.run_contraction_full(init, |_, _| {}, body, |_| {}, merge)
    }

    /// [`Reconstructor::run_contraction`] with a chunk-start hook: called
    /// once per chunk, after the chunk's first assignment indices are in
    /// place and before any `body` call, on both the sequential and the
    /// parallel path. Accumulators use it to precompute values that are
    /// constant within the chunk (the constant prefix/suffix product
    /// hoists of the marginal sweeps) without changing any per-assignment
    /// float association — results stay bit-identical.
    fn run_contraction_hoisted<A: Send>(
        &self,
        init: impl Fn() -> A + Sync,
        chunk_start: impl Fn(&mut A, &[usize]) + Sync,
        body: impl Fn(&mut A, &[usize]) + Sync,
        merge: impl FnMut(&mut A, A) + Send,
    ) -> Result<(A, SweepStats), Fault> {
        self.run_contraction_full(init, chunk_start, body, |_| {}, merge)
    }

    /// [`Reconstructor::run_contraction`] with a per-chunk `finish` hook:
    /// runs on each chunk accumulator right after its chunk completes (on
    /// both paths) — the hook that lets accumulators drop per-chunk
    /// scratch before entering the ordered merge. Used by queries whose
    /// per-chunk accumulators are large; the streaming merge bounds how
    /// many of them are ever retained (see
    /// [`run_contraction_full`](Reconstructor::run_contraction_full)), so
    /// no worker cap is needed any more.
    fn run_contraction_finished<A: Send>(
        &self,
        init: impl Fn() -> A + Sync,
        body: impl Fn(&mut A, &[usize]) + Sync,
        finish: impl Fn(&mut A) + Sync,
        merge: impl FnMut(&mut A, A) + Send,
    ) -> Result<(A, SweepStats), Fault> {
        self.run_contraction_full(init, |_, _| {}, body, finish, merge)
    }

    /// The fully-general chunked contraction driver: chunk-start hook,
    /// per-chunk finish hook, streaming ordered merge on the persistent
    /// worker pool.
    ///
    /// The parallel path streams finished chunk accumulators into one
    /// central [`runtime::OrderedMerger`] that folds them **in chunk
    /// order** — the identical float association to the sequential loop —
    /// while retaining at most a merge-window's worth of accumulators at
    /// a time, so memory no longer scales with `num_chunks ×
    /// accumulator size` and no query needs a worker cap.
    ///
    /// The attached [`Supervisor`] is consulted once per chunk, before the
    /// chunk's sweep. On an interrupt the driver reports the fault of the
    /// *lowest-indexed* faulting chunk: the parallel path records faults
    /// under a monotone failure floor (`fetch_min` over chunk indices), so
    /// a chunk below the true minimum faulting index can never be skipped
    /// and the reported fault is schedule-independent for deterministic
    /// fault sources (injection, pre-set cancellation).
    fn run_contraction_full<A: Send>(
        &self,
        init: impl Fn() -> A + Sync,
        chunk_start: impl Fn(&mut A, &[usize]) + Sync,
        body: impl Fn(&mut A, &[usize]) + Sync,
        finish: impl Fn(&mut A) + Sync,
        mut merge: impl FnMut(&mut A, A) + Send,
    ) -> Result<(A, SweepStats), Fault> {
        let num_chunks = self.num_chunks();
        let threads = self.effective_threads(num_chunks);
        // Each chunk gets an even, fixed share of the error budget; the
        // share depends only on `k` and the budget, never on the worker
        // count, which is what keeps truncated results bit-identical for
        // any parallelism.
        let chunk_budget = if self.error_budget > 0.0 {
            self.error_budget / num_chunks as f64
        } else {
            0.0
        };
        let new_scratch = || SweepScratch {
            indices: vec![0usize; self.tensors.len()],
            digits: vec![0u8; self.num_cuts],
        };
        let acc = init();
        if threads <= 1 {
            let mut acc = acc;
            let mut stats = SweepStats::default();
            let mut scratch = new_scratch();
            if chunk_budget > 0.0 {
                // Replay a previously recorded budgeted sweep: body-only,
                // no `4^k` re-iteration. The recorded call sequence is
                // exactly the fresh sweep's, so results are bit-identical.
                if let Some(Some(records)) = self.skip_cache.get() {
                    return self.replay_records(
                        records,
                        acc,
                        init,
                        chunk_start,
                        body,
                        finish,
                        merge,
                    );
                }
            }
            // Record the visited set on the first budgeted sweep so later
            // queries of this reconstructor can replay it.
            let mut records = if chunk_budget > 0.0 && self.skip_cache.get().is_none() {
                Some(Vec::new())
            } else {
                None
            };
            for chunk in 0..num_chunks {
                self.supervisor.check(Stage::Recombine, chunk as usize)?;
                let mut chunk_acc = init();
                stats.absorb(self.run_chunk(
                    chunk,
                    chunk_budget,
                    &mut chunk_acc,
                    &chunk_start,
                    &body,
                    &mut scratch,
                    records.as_mut(),
                ));
                finish(&mut chunk_acc);
                merge(&mut acc, chunk_acc);
            }
            if let Some(records) = records {
                let total: usize = records.iter().map(|r| r.visited.len()).sum();
                let _ = self
                    .skip_cache
                    .set((total <= SKIP_CACHE_MAX_VISITED).then_some(records));
            }
            Ok((acc, stats))
        } else {
            let next = AtomicU64::new(0);
            // Lowest chunk index that hit a supervision fault; chunks above
            // the floor are skipped, chunks at or below it still run, so
            // the floor only ever tightens toward the true minimum.
            let fail_floor = AtomicU64::new(u64::MAX);
            let first_fault: Mutex<Option<(u64, Fault)>> = Mutex::new(None);
            // The chunk stats ride the ordered merge alongside the chunk
            // accumulators, so the float `skipped_bound` folds in strict
            // chunk order — an atomic counter would make the truncation
            // bound schedule-dependent.
            let mut merge_with_stats = |central: &mut (A, SweepStats), chunk: (A, SweepStats)| {
                merge(&mut central.0, chunk.0);
                central.1.absorb(chunk.1);
            };
            let merger = runtime::OrderedMerger::new(
                threads,
                (acc, SweepStats::default()),
                &mut merge_with_stats,
            );
            enum ChunkOutcome<A> {
                Done(A, SweepStats),
                Fault(Fault),
            }
            runtime::Pool::global().run(threads, |_| {
                let mut scratch = new_scratch();
                loop {
                    let chunk = next.fetch_add(1, Ordering::Relaxed);
                    if chunk >= num_chunks {
                        break;
                    }
                    if chunk > fail_floor.load(Ordering::Relaxed) {
                        // Skipped by the early exit: the claimed index
                        // still must be resolved so the ordered merge can
                        // drain past it. Claims from `next` are monotone,
                        // so every later claim sits above the floor too —
                        // stop this worker here.
                        merger.skip(chunk);
                        break;
                    }
                    // Everything that can fault *or panic* (injected
                    // faults fire inside the supervisor check) runs under
                    // `catch_unwind` so the claimed index is resolved
                    // before any unwind — sibling workers blocked on the
                    // merge window must never be stranded.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if let Err(fault) = self.supervisor.check(Stage::Recombine, chunk as usize)
                        {
                            return ChunkOutcome::Fault(fault);
                        }
                        let mut chunk_acc = init();
                        let stats = self.run_chunk(
                            chunk,
                            chunk_budget,
                            &mut chunk_acc,
                            &chunk_start,
                            &body,
                            &mut scratch,
                            None,
                        );
                        finish(&mut chunk_acc);
                        ChunkOutcome::Done(chunk_acc, stats)
                    }));
                    match outcome {
                        Ok(ChunkOutcome::Done(chunk_acc, stats)) => {
                            merger.submit(chunk, (chunk_acc, stats));
                        }
                        Ok(ChunkOutcome::Fault(fault)) => {
                            fail_floor.fetch_min(chunk, Ordering::Relaxed);
                            let mut slot = lock_or_recover(&first_fault);
                            if slot.as_ref().is_none_or(|(c, _)| chunk < *c) {
                                *slot = Some((chunk, fault));
                            }
                            merger.skip(chunk);
                            break;
                        }
                        Err(payload) => {
                            merger.skip(chunk);
                            // The pool re-raises the payload on the
                            // calling thread once the job completes.
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            });
            if let Some((_, fault)) = into_inner_or_recover(first_fault) {
                return Err(fault);
            }
            Ok(merger.finish())
        }
    }

    /// Replays a recorded budgeted sweep: the identical chunk-start /
    /// body / finish / merge call sequence as the recording run — same
    /// chunks (constant-mask-skipped ones carry no record and stay
    /// skipped), same assignments, same order, so every float folds
    /// identically — but touching only the recorded assignments instead
    /// of walking the full `4^k` range. Supervision checkpoints still run
    /// per replayed chunk, under the chunk's original index.
    #[allow(clippy::too_many_arguments)]
    fn replay_records<A>(
        &self,
        records: &[ChunkRecord],
        mut acc: A,
        init: impl Fn() -> A,
        chunk_start: impl Fn(&mut A, &[usize]),
        body: impl Fn(&mut A, &[usize]),
        finish: impl Fn(&mut A),
        mut merge: impl FnMut(&mut A, A),
    ) -> Result<(A, SweepStats), Fault> {
        let mut stats = SweepStats::default();
        let mut indices = vec![0usize; self.tensors.len()];
        for rec in records {
            self.supervisor
                .check(Stage::Recombine, rec.chunk as usize)?;
            let mut chunk_acc = init();
            if !rec.masked {
                let start = rec.chunk * ASSIGNMENTS_PER_CHUNK;
                for (fi, t) in self.tensors.iter().enumerate() {
                    indices[fi] = t.pauli_index(|c| ((start >> (2 * c)) & 0b11) as usize);
                }
                chunk_start(&mut chunk_acc, &indices);
                for &offset in &rec.visited {
                    let kappa = start + offset as u64;
                    for (fi, t) in self.tensors.iter().enumerate() {
                        indices[fi] = t.pauli_index(|c| ((kappa >> (2 * c)) & 0b11) as usize);
                    }
                    body(&mut chunk_acc, &indices);
                }
            }
            finish(&mut chunk_acc);
            merge(&mut acc, chunk_acc);
            stats.absorb(rec.stats);
        }
        Ok((acc, stats))
    }

    /// Total reconstructed probability mass `Σ_b p(b)`; 1 up to sampling
    /// error.
    pub fn total_mass(&self) -> f64 {
        let totals: Vec<&[f64]> = self.tensors.iter().map(|t| t.totals()).collect();
        let (mass, _) = expect_unsupervised(self.run_contraction(
            || 0.0f64,
            |mass, indices| {
                let mut prod = 1.0;
                for (t, &idx) in totals.iter().zip(indices) {
                    prod *= t[idx];
                }
                *mass += prod;
            },
            |mass, chunk| *mass += chunk,
        ));
        mass
    }

    /// Builds the full joint distribution over the original circuit's
    /// qubits.
    ///
    /// # Interned-id engine
    ///
    /// Every joint outcome is a combination of one observed entry per
    /// fragment (fragments own disjoint circuit-output positions), so the
    /// engine addresses outcomes by a dense mixed-radix id over fragment
    /// entry indices instead of materializing a heap-allocated [`Bits`]
    /// per partial term. The outer product propagates `(id, weight)`
    /// pairs — integer multiply-adds only — per-chunk accumulators are
    /// flat `Vec<f64>`s indexed by id, and chunk merges are id-indexed
    /// vector adds rather than ordered-map re-insertions. Ids are decoded
    /// back into bitstrings exactly once, when the final accumulator is
    /// converted into a [`Distribution`] (which emits in sorted key order,
    /// keeping the result bit-identical to the former `BTreeMap`-keyed
    /// accumulation for any thread count).
    ///
    /// # Panics
    ///
    /// Panics if the product of fragment supports exceeds
    /// `max_support` — use [`Reconstructor::marginals`] for wide circuits.
    /// Also panics if an attached supervisor interrupts the sweep — use
    /// [`Reconstructor::try_joint`] from supervised callers.
    pub fn joint(&self, max_support: usize) -> Distribution {
        expect_unsupervised(self.try_joint(max_support))
    }

    /// Fallible variant of [`Reconstructor::joint`]: returns the fault
    /// instead of panicking when an attached supervisor cancels the sweep,
    /// its deadline passes, or a fault plan targets a recombine chunk.
    /// Numeric results are bit-identical to [`Reconstructor::joint`].
    ///
    /// # Panics
    ///
    /// Still panics if the product of fragment supports exceeds
    /// `max_support` (a sizing bug, not a runtime fault).
    pub fn try_joint(&self, max_support: usize) -> Result<Distribution, Fault> {
        self.try_joint_with_stats(max_support).map(|(dist, _)| dist)
    }

    /// [`Reconstructor::try_joint`] plus the sweep's [`SweepStats`]:
    /// post-truncation visited/skipped assignment counts and the
    /// accumulated skipped-weight bound, which caps the L1 distance
    /// between the returned (unnormalized) distribution and the exact
    /// one. With a zero error budget the stats report an exact sweep and
    /// the distribution is bit-identical to [`Reconstructor::joint`].
    pub fn try_joint_with_stats(
        &self,
        max_support: usize,
    ) -> Result<(Distribution, SweepStats), Fault> {
        let support: usize = self
            .tensors
            .iter()
            .map(|t| t.support_len().max(1))
            .product();
        assert!(
            support <= max_support,
            "joint support {support} exceeds limit {max_support}"
        );
        // Fragments with observed outcomes, with their entry tables in
        // key order (the id digit of fragment `f` is the position of its
        // entry in this table).
        struct FragView<'t> {
            tensor_index: usize,
            support: usize,
            entries: Vec<(&'t Bits, &'t [f64])>,
            plan: &'t IndexPlan,
        }
        // Scatter plans come shared from the session plan when available
        // (`with_output_plans`), else are built for this query.
        let built: Vec<IndexPlan> = match self.output_plans {
            Some(_) => Vec::new(),
            None => self
                .tensors
                .iter()
                .map(|t| IndexPlan::new(t.output_globals(), self.n_qubits))
                .collect(),
        };
        let plans: &[IndexPlan] = self.output_plans.unwrap_or(&built);
        let views: Vec<FragView<'_>> = self
            .tensors
            .iter()
            .enumerate()
            .filter(|(_, t)| t.support_len() > 0)
            .map(|(fi, t)| FragView {
                tensor_index: fi,
                support: t.support_len(),
                entries: t.iter().collect(),
                plan: &plans[fi],
            })
            .collect();
        // Per-chunk accumulator: dense id-indexed weights, a touched-id
        // bitset (a key whose weights cancel to exactly zero must still
        // appear in the output, as it did under ordered-map accumulation),
        // and outer-product scratch dropped by `finish` before retention.
        struct JointAcc {
            weights: Vec<f64>,
            touched: Vec<u64>,
            partial: Vec<(usize, f64)>,
            next: Vec<(usize, f64)>,
        }
        // The streaming ordered merge retains at most a merge-window's
        // worth of chunk accumulators (window = worker count), not all
        // `num_chunks` of them — so the old 64 MiB retention budget, and
        // the sequential fallback it forced on large supports, are gone:
        // every support size runs parallel. Merge order is still strict
        // chunk order, so results stay bit-identical for any thread count.
        let (acc, stats) = self.run_contraction_finished(
            || JointAcc {
                weights: vec![0.0; support],
                touched: vec![0u64; support.div_ceil(64)],
                partial: Vec::new(),
                next: Vec::new(),
            },
            |acc, indices| {
                // Outer product of the fragments' b-slices, propagating
                // mixed-radix outcome ids.
                acc.partial.clear();
                acc.partial.push((0usize, 1.0));
                for view in &views {
                    let idx = indices[view.tensor_index];
                    acc.next.clear();
                    acc.next.reserve(acc.partial.len() * view.support);
                    for (j, &(_, coeffs)) in view.entries.iter().enumerate() {
                        let v = coeffs[idx];
                        if v == 0.0 {
                            continue;
                        }
                        for &(id, w) in &acc.partial {
                            acc.next.push((id * view.support + j, w * v));
                        }
                    }
                    std::mem::swap(&mut acc.partial, &mut acc.next);
                }
                for &(id, w) in &acc.partial {
                    if w != 0.0 {
                        acc.weights[id] += w;
                        acc.touched[id >> 6] |= 1u64 << (id & 63);
                    }
                }
            },
            |acc| {
                // Retain only the payload across the ordered merge.
                acc.partial = Vec::new();
                acc.next = Vec::new();
            },
            |acc, chunk| {
                // Id-indexed vector add. Untouched ids hold exactly +0.0,
                // so the blanket add is a bitwise no-op for them.
                for (a, c) in acc.weights.iter_mut().zip(&chunk.weights) {
                    *a += c;
                }
                for (a, c) in acc.touched.iter_mut().zip(&chunk.touched) {
                    *a |= c;
                }
            },
        )?;
        // Decode touched ids back into global bitstrings, once.
        let mut dist = Distribution::with_support_capacity(
            self.n_qubits,
            acc.touched.iter().map(|w| w.count_ones() as usize).sum(),
        );
        for (id, &w) in acc.weights.iter().enumerate() {
            if (acc.touched[id >> 6] >> (id & 63)) & 1 == 0 {
                continue;
            }
            let mut global = Bits::zeros(self.n_qubits);
            let mut rem = id;
            for view in views.iter().rev() {
                let j = rem % view.support;
                rem /= view.support;
                view.plan.scatter_into(view.entries[j].0, &mut global);
            }
            dist.add(global, w);
        }
        Ok((dist, stats))
    }

    /// All single-qubit marginals of the reconstructed distribution,
    /// normalized to unit mass. Scales to hundreds of qubits: cost is
    /// `O(4^k · n)` independent of fragment support sizes.
    ///
    /// # Panics
    ///
    /// Panics if an attached supervisor interrupts the sweep — use
    /// [`Reconstructor::try_marginals`] from supervised callers.
    pub fn marginals(&self) -> Vec<[f64; 2]> {
        expect_unsupervised(self.try_marginals())
    }

    /// Fallible variant of [`Reconstructor::marginals`]: returns the fault
    /// instead of panicking when an attached supervisor cancels the sweep,
    /// its deadline passes, or a fault plan targets a recombine chunk.
    /// Numeric results are bit-identical to [`Reconstructor::marginals`].
    pub fn try_marginals(&self) -> Result<Vec<[f64; 2]>, Fault> {
        self.try_marginals_with_stats().map(|(marg, _)| marg)
    }

    /// [`Reconstructor::try_marginals`] plus the sweep's [`SweepStats`].
    /// The skip decisions of the truncated sweep depend only on the
    /// assignment indices — never on the query — so the stats (and the
    /// skipped assignment set) here are identical to what
    /// [`Reconstructor::try_joint_with_stats`] reports for the same
    /// reconstructor, keeping marginal and joint queries mutually
    /// consistent.
    pub fn try_marginals_with_stats(&self) -> Result<(Vec<[f64; 2]>, SweepStats), Fault> {
        // Two equivalent evaluation strategies (identical up to float
        // reordering); the choice is a deterministic function of the
        // tensor shapes, never of the thread count, so results stay
        // bit-identical for any parallelism.
        //
        // The grouped strategy accumulates one exclusion weight per
        // (fragment, Pauli index) — a single multiply-add per fragment per
        // assignment — and contracts the weights against the marginal
        // tables once at the end. Its accumulator holds `Σ_f 4^{cuts_f}`
        // floats per chunk, so fall back to direct per-qubit updates when
        // that would be large (one wide fragment means few fragments, so
        // the direct inner loop is short anyway).
        let weight_len: usize = self.tensors.iter().map(|t| t.pauli_dim()).sum();
        let grouped_bytes = (weight_len as u64) * self.num_chunks() * 8;
        let (mut marg, mass, stats) = if grouped_bytes <= 64 << 20 {
            self.marginals_grouped()?
        } else {
            self.marginals_direct()?
        };
        if mass.abs() > 1e-12 {
            for m in &mut marg {
                m[0] /= mass;
                m[1] /= mass;
            }
        }
        // Repair small quasi-probability artifacts.
        for m in &mut marg {
            m[0] = m[0].clamp(0.0, 1.0);
            m[1] = m[1].clamp(0.0, 1.0);
            let s = m[0] + m[1];
            if s > 0.0 {
                m[0] /= s;
                m[1] /= s;
            }
        }
        Ok((marg, stats))
    }

    /// Grouped marginal contraction: exclusion weights per (fragment,
    /// Pauli index), expanded against the marginal tables after the sweep.
    fn marginals_grouped(&self) -> Result<(Vec<[f64; 2]>, f64, SweepStats), Fault> {
        let nf = self.tensors.len();
        struct GroupedAcc {
            /// `weights[f][idx]` = Σ over visited assignments with
            /// `indices[f] == idx` of the product of the other fragments'
            /// totals.
            weights: Vec<Vec<f64>>,
            mass: f64,
            prefix: Vec<f64>,
            suffix: Vec<f64>,
        }
        let totals: Vec<&[f64]> = self.tensors.iter().map(|t| t.totals()).collect();
        let (cp, cs) = (self.const_prefix, self.const_suffix);
        let (acc, stats) = self.run_contraction_hoisted(
            || GroupedAcc {
                weights: totals.iter().map(|t| vec![0.0f64; t.len()]).collect(),
                mass: 0.0,
                prefix: vec![1.0; nf + 1],
                suffix: vec![1.0; nf + 1],
            },
            |acc, indices| {
                // Chunk-constant runs at the ends of the fragment order:
                // their prefix/suffix factors are identical for every
                // assignment in the chunk, so compute them once here. The
                // per-assignment sweeps below continue from these cached
                // slots with the exact same multiplication order, keeping
                // results bit-identical to the unhoisted sweep.
                for f in 0..cp {
                    acc.prefix[f + 1] = acc.prefix[f] * totals[f][indices[f]];
                }
                for f in (cs..nf).rev() {
                    acc.suffix[f] = acc.suffix[f + 1] * totals[f][indices[f]];
                }
            },
            |acc, indices| {
                // Prefix/suffix products of fragment totals (slots 0 and nf
                // stay 1.0 from initialization; the chunk-constant head and
                // tail were filled once at chunk start).
                for f in cp..nf {
                    acc.prefix[f + 1] = acc.prefix[f] * totals[f][indices[f]];
                }
                for f in (0..cs).rev() {
                    acc.suffix[f] = acc.suffix[f + 1] * totals[f][indices[f]];
                }
                acc.mass += acc.prefix[nf];
                for f in 0..nf {
                    acc.weights[f][indices[f]] += acc.prefix[f] * acc.suffix[f + 1];
                }
            },
            |acc, chunk| {
                for (w, c) in acc.weights.iter_mut().zip(&chunk.weights) {
                    for (a, b) in w.iter_mut().zip(c) {
                        *a += b;
                    }
                }
                acc.mass += chunk.mass;
            },
        )?;
        // Contract the accumulated weights against the marginal tables.
        let mut marg = vec![[0.0f64; 2]; self.n_qubits];
        for (f, t) in self.tensors.iter().enumerate() {
            for (bit, &global) in t.output_globals().iter().enumerate() {
                let (m0, m1) = t.marginal_slices(bit);
                for (idx, &w) in acc.weights[f].iter().enumerate() {
                    if w != 0.0 {
                        marg[global][0] += w * m0[idx];
                        marg[global][1] += w * m1[idx];
                    }
                }
            }
        }
        Ok((marg, acc.mass, stats))
    }

    /// Direct marginal contraction: per-qubit updates inside the
    /// assignment sweep (bounded accumulator size).
    fn marginals_direct(&self) -> Result<(Vec<[f64; 2]>, f64, SweepStats), Fault> {
        let nf = self.tensors.len();
        struct DirectAcc {
            marg: Vec<[f64; 2]>,
            mass: f64,
            prefix: Vec<f64>,
            suffix: Vec<f64>,
        }
        struct TensorView<'t> {
            totals: &'t [f64],
            outputs: Vec<(usize, &'t [f64], &'t [f64])>,
        }
        let views: Vec<TensorView<'_>> = self
            .tensors
            .iter()
            .map(|t| TensorView {
                totals: t.totals(),
                outputs: t
                    .output_globals()
                    .iter()
                    .enumerate()
                    .map(|(bit, &g)| {
                        let (m0, m1) = t.marginal_slices(bit);
                        (g, m0, m1)
                    })
                    .collect(),
            })
            .collect();
        let (cp, cs) = (self.const_prefix, self.const_suffix);
        let (acc, stats) = self.run_contraction_hoisted(
            || DirectAcc {
                marg: vec![[0.0f64; 2]; self.n_qubits],
                mass: 0.0,
                prefix: vec![1.0; nf + 1],
                suffix: vec![1.0; nf + 1],
            },
            |acc, indices| {
                // Chunk-constant head/tail products, once per chunk (see
                // `marginals_grouped` — same hoist, same bit-identity
                // argument).
                for f in 0..cp {
                    acc.prefix[f + 1] = acc.prefix[f] * views[f].totals[indices[f]];
                }
                for f in (cs..nf).rev() {
                    acc.suffix[f] = acc.suffix[f + 1] * views[f].totals[indices[f]];
                }
            },
            |acc, indices| {
                for f in cp..nf {
                    acc.prefix[f + 1] = acc.prefix[f] * views[f].totals[indices[f]];
                }
                for f in (0..cs).rev() {
                    acc.suffix[f] = acc.suffix[f + 1] * views[f].totals[indices[f]];
                }
                acc.mass += acc.prefix[nf];
                for (f, view) in views.iter().enumerate() {
                    let excl = acc.prefix[f] * acc.suffix[f + 1];
                    if excl == 0.0 {
                        continue;
                    }
                    let idx = indices[f];
                    for &(global, m0, m1) in &view.outputs {
                        acc.marg[global][0] += excl * m0[idx];
                        acc.marg[global][1] += excl * m1[idx];
                    }
                }
            },
            |acc, chunk| {
                for (m, c) in acc.marg.iter_mut().zip(&chunk.marg) {
                    m[0] += c[0];
                    m[1] += c[1];
                }
                acc.mass += chunk.mass;
            },
        )?;
        Ok((acc.marg, acc.mass, stats))
    }

    /// "Strong simulation": the probability of one specific global
    /// bitstring, to machine precision in exact mode.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the original qubit count.
    pub fn probability_of(&self, bits: &Bits) -> f64 {
        assert_eq!(bits.len(), self.n_qubits, "bitstring width mismatch");
        // Resolve each fragment's coefficient slice once; an unobserved
        // outcome in any fragment zeroes the whole probability.
        let mut slices: Vec<&[f64]> = Vec::with_capacity(self.tensors.len());
        for (fi, t) in self.tensors.iter().enumerate() {
            let local = match self.output_plans {
                Some(plans) => plans[fi].extract(bits),
                None => bits.extract(t.output_globals()),
            };
            match t.coeffs(&local) {
                Some(s) => slices.push(s),
                None => return 0.0,
            }
        }
        let (p, _) = expect_unsupervised(self.run_contraction(
            || 0.0f64,
            |p, indices| {
                let mut prod = 1.0;
                for (s, &idx) in slices.iter().zip(indices) {
                    prod *= s[idx];
                    if prod == 0.0 {
                        break;
                    }
                }
                *p += prod;
            },
            |p, chunk| *p += chunk,
        ));
        p
    }

    /// Number of `4^k` terms the contraction actually visits — after both
    /// sparse skipping and budget truncation, so the §IX ablation
    /// benchmark and the truncated-sweep bench compare like with like.
    pub fn visited_assignments(&self) -> usize {
        self.sweep_stats().visited as usize
    }

    /// Runs an empty sweep and reports its [`SweepStats`] — the visited
    /// and budget-skipped assignment counts and the accumulated
    /// skipped-weight bound any real query of this reconstructor would
    /// incur (skip decisions are query-independent). Cheap relative to a
    /// real query: no accumulator work, just the sweep itself.
    pub fn sweep_stats(&self) -> SweepStats {
        let ((), stats) = expect_unsupervised(self.run_contraction(|| (), |_, _| {}, |_, _| {}));
        stats
    }

    /// Expectation value of a Z-string observable `⟨Π_{q∈subset} Z_q⟩` on
    /// the reconstructed distribution, normalized by the total mass.
    ///
    /// Unlike going through [`Reconstructor::joint`], this works at any
    /// width: each fragment contributes a signed total per cut assignment,
    /// `Σ_b T[b,κ]·(−1)^{parity(b over subset)}`, so the cost is
    /// `O(4^k · Σ_f support_f)` — the scalable path for VQE-style
    /// diagonal observables on hundreds of qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        for &q in subset {
            assert!(q < self.n_qubits, "qubit {q} out of range");
        }
        let member: Vec<bool> = {
            let mut m = vec![false; self.n_qubits];
            for &q in subset {
                m[q] = true;
            }
            m
        };
        // Signed totals per fragment, computed lazily per assignment would
        // repeat work; precompute per fragment as dense vectors instead.
        let signed: Vec<Vec<f64>> = self
            .tensors
            .iter()
            .map(|t| {
                let mut out = vec![0.0; t.pauli_dim()];
                for (b, coeffs) in t.iter() {
                    let parity = t
                        .output_globals()
                        .iter()
                        .enumerate()
                        .filter(|(bit, &g)| member[g] && b.get(*bit))
                        .count()
                        % 2;
                    let sign = if parity == 1 { -1.0 } else { 1.0 };
                    for (i, &x) in coeffs.iter().enumerate() {
                        out[i] += sign * x;
                    }
                }
                out
            })
            .collect();
        let totals: Vec<&[f64]> = self.tensors.iter().map(|t| t.totals()).collect();
        let ((num, mass), _) = expect_unsupervised(self.run_contraction(
            || (0.0f64, 0.0f64),
            |acc, indices| {
                let mut sprod = 1.0;
                let mut tprod = 1.0;
                for (f, &idx) in indices.iter().enumerate() {
                    sprod *= signed[f][idx];
                    tprod *= totals[f][idx];
                }
                acc.0 += sprod;
                acc.1 += tprod;
            },
            |acc, chunk| {
                acc.0 += chunk.0;
                acc.1 += chunk.1;
            },
        ));
        if mass.abs() > 1e-12 {
            (num / mass).clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Unwraps a contraction result on the infallible query surface. Callers
/// that attach a supervisor must use the fallible `try_*` queries; an
/// interrupt surfacing here is a caller bug, not a runtime condition.
fn expect_unsupervised<T>(result: Result<T, Fault>) -> T {
    result.unwrap_or_else(|fault| panic!("unsupervised contraction interrupted: {fault}"))
}

/// The pre-intern joint implementation, frozen as a parity baseline:
/// chunked `4^k` sweep with per-chunk `BTreeMap<Bits, f64>` accumulation,
/// one heap-allocated `Bits` clone per partial term, and ordered-map
/// re-insertion (`b.clone()` per key) at every chunk merge. Written
/// against the public tensor API only.
///
/// Shared by the `joint_matches_btreemap_reference_bit_exact` test and
/// the `joint_reconstruction` series of the `bench_json` benchmark; not
/// part of the supported API.
#[doc(hidden)]
pub fn reference_joint_btreemap(
    tensors: &[FragmentTensor],
    num_cuts: usize,
    n_qubits: usize,
    sparse: bool,
) -> Vec<(Bits, f64)> {
    use std::collections::BTreeMap;
    let tol = 1e-12;
    let plans: Vec<IndexPlan> = tensors
        .iter()
        .map(|t| IndexPlan::new(t.output_globals(), n_qubits))
        .collect();
    let mut dist: BTreeMap<Bits, f64> = BTreeMap::new();
    let total = 1u64 << (2 * num_cuts);
    let num_chunks = total.div_ceil(ASSIGNMENTS_PER_CHUNK);
    let mut partial: Vec<(Bits, f64)> = Vec::new();
    let mut next: Vec<(Bits, f64)> = Vec::new();
    for chunk in 0..num_chunks {
        let mut chunk_dist: BTreeMap<Bits, f64> = BTreeMap::new();
        let start = chunk * ASSIGNMENTS_PER_CHUNK;
        let end = (start + ASSIGNMENTS_PER_CHUNK).min(total);
        for kappa in start..end {
            let digit = |cut: usize| ((kappa >> (2 * cut)) & 0b11) as usize;
            let indices: Vec<usize> = tensors.iter().map(|t| t.pauli_index(digit)).collect();
            if sparse
                && tensors
                    .iter()
                    .zip(&indices)
                    .any(|(t, &idx)| t.slice_max_abs(idx) <= tol)
            {
                continue;
            }
            partial.clear();
            partial.push((Bits::zeros(n_qubits), 1.0));
            for ((t, plan), &idx) in tensors.iter().zip(&plans).zip(&indices) {
                if t.support_len() == 0 {
                    continue;
                }
                next.clear();
                next.reserve(partial.len() * t.support_len());
                for (b, coeffs) in t.iter() {
                    let v = coeffs[idx];
                    if v == 0.0 {
                        continue;
                    }
                    for (gb, w) in &partial {
                        let mut gb2 = gb.clone();
                        plan.scatter_into(b, &mut gb2);
                        next.push((gb2, w * v));
                    }
                }
                std::mem::swap(&mut partial, &mut next);
            }
            for (b, w) in partial.drain(..) {
                if w != 0.0 {
                    *chunk_dist.entry(b).or_insert(0.0) += w;
                }
            }
        }
        for (b, w) in chunk_dist {
            *dist.entry(b).or_insert(0.0) += w;
        }
    }
    dist.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use crate::evaluate::{EvalMode, EvalOptions};
    use crate::tensor::{build_fragment_tensor, synthetic_dense_chain, TensorOptions};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct_exact(c: &Circuit) -> (Vec<FragmentTensor>, usize, usize) {
        let cut = cut_circuit(c, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let tensors: Vec<FragmentTensor> = cut
            .fragments
            .iter()
            .map(|f| build_fragment_tensor(f, &eval, &TensorOptions::default(), &mut rng).unwrap())
            .collect();
        (tensors, cut.num_cuts, cut.original_qubits)
    }

    #[test]
    fn identity_cut_reconstructs_zero_state() {
        let mut c = Circuit::new(1);
        c.add_gate(qcir::Gate::I, &[0]).t(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        assert!((dist.prob(&Bits::parse("0").unwrap()) - 1.0).abs() < 1e-10);
        assert!(dist.prob(&Bits::parse("1").unwrap()).abs() < 1e-10);
        assert!((r.total_mass() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn h_t_h_matches_statevector() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 2);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        let sv = svsim::StateVec::run(&c).unwrap();
        for (idx, bstr) in [(0usize, "0"), (1usize, "1")] {
            let expect = sv.probability_of_index(idx);
            let got = dist.prob(&Bits::parse(bstr).unwrap());
            assert!(
                (expect - got).abs() < 1e-9,
                "p({bstr}): sv={expect} cut={got}"
            );
            assert!((r.probability_of(&Bits::parse(bstr).unwrap()) - expect).abs() < 1e-9);
        }
        let marg = r.marginals();
        assert!((marg[0][0] - sv.probability_of_index(0)).abs() < 1e-9);
    }

    #[test]
    fn two_qubit_loop_cut_matches_statevector() {
        // CX - T - CX creates a fragment loop (2 cuts to the same
        // Clifford fragment).
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).cx(0, 1).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 2);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(100_000);
        let sv = svsim::StateVec::run(&c).unwrap();
        for idx in 0..4usize {
            let b = Bits::from_u64(idx as u64, 2);
            assert!(
                (dist.prob(&b) - sv.probability_of_index(idx)).abs() < 1e-9,
                "p({b})"
            );
        }
        assert!((r.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marginals_match_joint() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let (tensors, k, n) = reconstruct_exact(&c);
        let r = Reconstructor::new(&tensors, k, n);
        let joint = r.joint(100_000);
        let marg = r.marginals();
        for q in 0..3 {
            let jm = joint.marginal(q);
            assert!(
                (jm[0] - marg[q][0]).abs() < 1e-9 && (jm[1] - marg[q][1]).abs() < 1e-9,
                "qubit {q}: joint {jm:?} vs marginal {:?}",
                marg[q]
            );
        }
    }

    /// `joint()` marginals agree with `marginals()` on multi-fragment
    /// circuits for 1, 2, and 8 contraction threads (joint marginals are
    /// un-normalized by construction, so normalize by the joint mass).
    #[test]
    fn joint_marginals_match_marginals_across_thread_counts() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let mut b = Circuit::new(4);
        b.h(0).cx(0, 1).t(1).cx(1, 2).t(2).cx(2, 3).h(3);
        for (label, c) in [("3q", a), ("4q", b)] {
            let (tensors, k, n) = reconstruct_exact(&c);
            for threads in [1usize, 2, 8] {
                let r = Reconstructor::new(&tensors, k, n).with_threads(threads);
                let joint = r.joint(1_000_000);
                let mass = joint.total_mass();
                let marg = r.marginals();
                for q in 0..n {
                    let jm = joint.marginal(q);
                    assert!(
                        (jm[0] / mass - marg[q][0]).abs() < 1e-9
                            && (jm[1] / mass - marg[q][1]).abs() < 1e-9,
                        "{label} qubit {q} at {threads} threads: \
                         joint {jm:?}/{mass} vs marginal {:?}",
                        marg[q]
                    );
                }
            }
        }
    }

    /// The interned-id joint engine is bit-identical — same support, same
    /// emission order, same float bits — to the pre-change ordered-map
    /// implementation, at 1, 2, and 8 threads, on real cut circuits and a
    /// multi-chunk synthetic chain.
    #[test]
    fn joint_matches_btreemap_reference_bit_exact() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).t(0).cx(0, 1).h(0);
        let mut cases: Vec<(String, Vec<FragmentTensor>, usize, usize)> = Vec::new();
        for (label, c) in [("3q", a), ("loop", b)] {
            let (tensors, k, n) = reconstruct_exact(&c);
            cases.push((label.to_string(), tensors, k, n));
        }
        let (chain, n) = synthetic_dense_chain(7, 1);
        cases.push(("chain-k7".to_string(), chain, 7, n));
        for (label, tensors, k, n) in &cases {
            for sparse in [true, false] {
                let expect = reference_joint_btreemap(tensors, *k, *n, sparse);
                for threads in [1usize, 2, 8] {
                    let got = Reconstructor::new(tensors, *k, *n)
                        .with_sparse(sparse)
                        .with_threads(threads)
                        .joint(10_000_000);
                    let got_pairs = joint_pairs(&got);
                    assert_eq!(
                        got_pairs.len(),
                        expect.len(),
                        "{label} sparse={sparse} threads={threads}: support"
                    );
                    for ((gb, gw), (eb, ew)) in got_pairs.iter().zip(&expect) {
                        assert_eq!(
                            gb, eb,
                            "{label} sparse={sparse} threads={threads}: key order"
                        );
                        assert_eq!(
                            gw.to_bits(),
                            ew.to_bits(),
                            "{label} sparse={sparse} threads={threads}: \
                             weight at {gb}: {gw} vs {ew}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_contraction_matches_dense_and_prunes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).h(0);
        let (tensors, k, n) = reconstruct_exact(&c);
        let sparse = Reconstructor::new(&tensors, k, n);
        let dense = Reconstructor::new(&tensors, k, n).with_sparse(false);
        let b = Bits::parse("00").unwrap();
        assert!((sparse.probability_of(&b) - dense.probability_of(&b)).abs() < 1e-12);
        let visited_sparse = sparse.visited_assignments();
        let visited_dense = dense.visited_assignments();
        assert!(
            visited_sparse < visited_dense,
            "sparse must prune stabilizer zeros"
        );
        assert_eq!(visited_dense, 1 << (2 * k));
    }

    fn joint_pairs(d: &metrics::Distribution) -> Vec<(Bits, f64)> {
        d.iter().map(|(b, p)| (b.clone(), p)).collect()
    }

    /// All four query shapes are bit-identical between the sequential path
    /// and the parallel path at 2 and 8 threads — on a real cut circuit
    /// and on a synthetic k = 8 chain that spans 16 chunks.
    #[test]
    fn parallel_contraction_bit_identical_across_thread_counts() {
        // Real circuit: mixed Clifford / non-Clifford fragments.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let (tensors, k, n) = reconstruct_exact(&c);
        let queries = |threads: usize| {
            let r = Reconstructor::new(&tensors, k, n).with_threads(threads);
            (
                r.total_mass(),
                joint_pairs(&r.joint(1_000_000)),
                r.marginals(),
                r.probability_of(&Bits::from_u64(5, 3)),
                r.expectation_z(&[0, 2]),
            )
        };
        let seq = queries(1);
        for threads in [2, 8] {
            let par = queries(threads);
            assert!(seq.0 == par.0, "total_mass at {threads} threads");
            assert_eq!(seq.1, par.1, "joint at {threads} threads");
            assert_eq!(seq.2, par.2, "marginals at {threads} threads");
            assert!(seq.3 == par.3, "probability_of at {threads} threads");
            assert!(seq.4 == par.4, "expectation_z at {threads} threads");
        }

        // Synthetic chain: k = 8 → 4^8 assignments over 16 chunks, dense.
        let (tensors, n) = synthetic_dense_chain(8, 1);
        let queries = |threads: usize| {
            let r = Reconstructor::new(&tensors, 8, n)
                .with_sparse(false)
                .with_threads(threads);
            (
                r.total_mass(),
                r.marginals(),
                r.probability_of(&Bits::from_u64(0b10110101, n)),
                r.expectation_z(&[0, 3, 7]),
            )
        };
        let seq = queries(1);
        for threads in [2, 8] {
            let par = queries(threads);
            assert!(seq.0 == par.0, "synthetic total_mass at {threads} threads");
            assert_eq!(seq.1, par.1, "synthetic marginals at {threads} threads");
            assert!(
                seq.2 == par.2,
                "synthetic probability_of at {threads} threads"
            );
            assert!(
                seq.3 == par.3,
                "synthetic expectation_z at {threads} threads"
            );
        }
    }

    /// A zeroed Pauli slice on a chunk-constant tensor (all cuts ≥ 6)
    /// triggers the whole-chunk sparse skip: the pruned sweep must visit
    /// exactly the assignments the per-assignment test would, and every
    /// query must agree with the dense contraction at 1, 2, and 8 threads.
    #[test]
    fn chunk_constant_mask_prefilter_prunes_whole_chunks() {
        let k = 8;
        let (mut tensors, n) = synthetic_dense_chain(k, 1);
        // Zero Pauli index 2 of the last fragment (input cut 7 — constant
        // within every 4^6 chunk), so digit(cut 7) = 2 kills 1/4 of the
        // range, one whole chunk at a time.
        let last = tensors.len() - 1;
        let zeroed: Vec<(Bits, Vec<f64>)> = tensors[last]
            .iter()
            .map(|(b, v)| {
                let mut v = v.to_vec();
                v[2] = 0.0;
                (b.clone(), v)
            })
            .collect();
        tensors[last] = FragmentTensor::from_dense_entries(
            tensors[last].input_cuts().to_vec(),
            tensors[last].output_cuts().to_vec(),
            tensors[last].output_globals().to_vec(),
            zeroed,
        );
        let sparse = Reconstructor::new(&tensors, k, n);
        let dense = Reconstructor::new(&tensors, k, n).with_sparse(false);
        let visited_dense = dense.visited_assignments();
        assert_eq!(visited_dense, 1 << (2 * k));
        assert_eq!(
            sparse.visited_assignments(),
            visited_dense / 4 * 3,
            "digit(cut 7) = 2 must prune exactly a quarter of the range"
        );
        for (s, d) in sparse.marginals().iter().zip(dense.marginals()) {
            assert!((s[0] - d[0]).abs() < 1e-12 && (s[1] - d[1]).abs() < 1e-12);
        }
        let b = Bits::from_u64(0b1011, n);
        assert!((sparse.probability_of(&b) - dense.probability_of(&b)).abs() < 1e-12);
        let seq = (
            sparse.total_mass(),
            sparse.marginals(),
            sparse.probability_of(&b),
            sparse.expectation_z(&[0, 4]),
        );
        for threads in [2usize, 8] {
            let r = Reconstructor::new(&tensors, k, n).with_threads(threads);
            assert!(seq.0 == r.total_mass(), "mass at {threads} threads");
            assert_eq!(seq.1, r.marginals(), "marginals at {threads} threads");
            assert!(seq.2 == r.probability_of(&b), "prob at {threads} threads");
            assert!(
                seq.3 == r.expectation_z(&[0, 4]),
                "expectation at {threads} threads"
            );
        }
    }

    /// Shared output scatter plans change nothing: `joint` and
    /// `probability_of` are bit-identical with and without
    /// `with_output_plans`.
    #[test]
    fn shared_output_plans_are_bit_identical() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
        let (tensors, k, n) = reconstruct_exact(&c);
        let plans: Vec<IndexPlan> = tensors
            .iter()
            .map(|t| IndexPlan::new(t.output_globals(), n))
            .collect();
        let bare = Reconstructor::new(&tensors, k, n);
        let shared = Reconstructor::new(&tensors, k, n).with_output_plans(&plans);
        assert_eq!(
            joint_pairs(&bare.joint(1_000_000)),
            joint_pairs(&shared.joint(1_000_000))
        );
        for x in 0..8u64 {
            let b = Bits::from_u64(x, n);
            assert!(bare.probability_of(&b) == shared.probability_of(&b));
        }
    }

    /// `with_threads(0)` resolves to the available parallelism and still
    /// matches the sequential result bit for bit.
    #[test]
    fn auto_thread_count_matches_sequential() {
        let (tensors, n) = synthetic_dense_chain(7, 1);
        let seq = Reconstructor::new(&tensors, 7, n).with_sparse(false);
        let auto = seq.clone().with_threads(0);
        assert!(seq.total_mass() == auto.total_mass());
        assert_eq!(seq.marginals(), auto.marginals());
    }

    /// Sparse and dense contraction agree on a circuit whose fragments are
    /// all Clifford except the isolated rotation (stabilizer zeros pruned)
    /// and on a T-rich circuit whose fragments are non-Clifford.
    #[test]
    fn sparse_matches_dense_on_clifford_and_nonclifford_fragments() {
        let mut clifford_heavy = Circuit::new(3);
        clifford_heavy.h(0).cx(0, 1).cx(1, 2).t(2).h(2);
        let mut t_rich = Circuit::new(2);
        t_rich.h(0).t(0).h(0).t(0).cx(0, 1).h(1);
        for (label, c) in [("clifford", clifford_heavy), ("t-rich", t_rich)] {
            let (tensors, k, n) = reconstruct_exact(&c);
            let sparse = Reconstructor::new(&tensors, k, n).with_threads(4);
            let dense = Reconstructor::new(&tensors, k, n)
                .with_sparse(false)
                .with_threads(4);
            assert!(
                (sparse.total_mass() - dense.total_mass()).abs() < 1e-12,
                "{label}: total mass"
            );
            for (s, d) in sparse.marginals().iter().zip(dense.marginals()) {
                assert!(
                    (s[0] - d[0]).abs() < 1e-12 && (s[1] - d[1]).abs() < 1e-12,
                    "{label}: marginals"
                );
            }
            for x in 0..1u64 << n {
                let b = Bits::from_u64(x, n);
                assert!(
                    (sparse.probability_of(&b) - dense.probability_of(&b)).abs() < 1e-12,
                    "{label}: p({b})"
                );
            }
            assert!(
                sparse.visited_assignments() <= dense.visited_assignments(),
                "{label}: sparse must not visit more terms"
            );
        }
    }

    #[test]
    fn no_cut_clifford_circuit_reconstructs_directly() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let (tensors, k, n) = reconstruct_exact(&c);
        assert_eq!(k, 0);
        let r = Reconstructor::new(&tensors, k, n);
        let dist = r.joint(1000);
        assert!((dist.prob(&Bits::parse("00").unwrap()) - 0.5).abs() < 1e-12);
        assert!((dist.prob(&Bits::parse("11").unwrap()) - 0.5).abs() < 1e-12);
    }

    /// A nonzero budget skips real mass, the realized `skipped_bound`
    /// stays within the budget and upper-bounds the true L1 distance to
    /// the exact unnormalized joint, and the truncated result is
    /// bit-identical at 1, 2, and 8 threads.
    #[test]
    fn budget_truncation_bounds_l1_and_is_thread_invariant() {
        use std::collections::HashMap;
        let k = 7;
        let (tensors, n) = synthetic_dense_chain(k, 1);
        let exact = Reconstructor::new(&tensors, k, n);
        let (exact_joint, exact_stats) = exact.try_joint_with_stats(10_000_000).unwrap();
        assert_eq!(exact_stats.skipped, 0);
        assert_eq!(exact_stats.skipped_bound, 0.0);
        // Scale the budget off the all-skip bound so truncation is
        // partial regardless of the synthetic tensors' magnitudes.
        let total_bound = Reconstructor::new(&tensors, k, n)
            .with_error_budget(1e18)
            .sweep_stats()
            .skipped_bound;
        let budget = total_bound * 0.25;
        let seq = Reconstructor::new(&tensors, k, n).with_error_budget(budget);
        let (joint, stats) = seq.try_joint_with_stats(10_000_000).unwrap();
        assert!(stats.skipped > 0, "budget must skip something");
        assert!(stats.visited > 0, "budget must not skip everything");
        assert!(stats.skipped_bound <= budget + 1e-12);
        let mut diff: HashMap<Bits, f64> =
            exact_joint.iter().map(|(b, p)| (b.clone(), p)).collect();
        for (b, p) in joint.iter() {
            *diff.entry(b.clone()).or_insert(0.0) -= p;
        }
        let l1: f64 = diff.values().map(|d| d.abs()).sum();
        // Relative tolerance: on the synthetic chain the bound is tight
        // (no sign cancellation), so l1 ≈ bound up to float fold noise.
        assert!(
            l1 <= stats.skipped_bound * (1.0 + 1e-12) + 1e-12,
            "l1 {l1} exceeds bound {}",
            stats.skipped_bound
        );
        for threads in [2usize, 8] {
            let par = Reconstructor::new(&tensors, k, n)
                .with_error_budget(budget)
                .with_threads(threads);
            let (pj, ps) = par.try_joint_with_stats(10_000_000).unwrap();
            assert_eq!(
                joint_pairs(&joint),
                joint_pairs(&pj),
                "joint at {threads} threads"
            );
            assert_eq!(stats, ps, "stats at {threads} threads");
        }
    }

    /// The first budgeted sequential sweep records its visited set; every
    /// later query replays it bit for bit, answers other query shapes
    /// identically to a fresh sweep, and the cache is dropped by the
    /// setters that change the skip set.
    #[test]
    fn budgeted_replay_cache_is_bit_identical_across_queries() {
        let k = 7;
        let (tensors, n) = synthetic_dense_chain(k, 1);
        let total_bound = Reconstructor::new(&tensors, k, n)
            .with_error_budget(1e18)
            .sweep_stats()
            .skipped_bound;
        let budget = total_bound * 0.25;
        let r = Reconstructor::new(&tensors, k, n).with_error_budget(budget);
        assert!(r.skip_cache.get().is_none(), "cache starts cold");
        let (first, first_stats) = r.try_joint_with_stats(10_000_000).unwrap();
        assert!(
            matches!(r.skip_cache.get(), Some(Some(_))),
            "first budgeted sweep must record the visited set"
        );
        let (second, second_stats) = r.try_joint_with_stats(10_000_000).unwrap();
        assert_eq!(joint_pairs(&first), joint_pairs(&second));
        assert_eq!(first_stats, second_stats);
        // Replay answers a different query shape identically to a fresh
        // reconstructor's first (recorded) sweep.
        let fresh = Reconstructor::new(&tensors, k, n).with_error_budget(budget);
        let (fresh_marg, fresh_stats) = fresh.try_marginals_with_stats().unwrap();
        let (replay_marg, replay_stats) = r.try_marginals_with_stats().unwrap();
        assert_eq!(fresh_marg, replay_marg);
        assert_eq!(fresh_stats, replay_stats);
        // Exact queries never populate the cache.
        let exact = Reconstructor::new(&tensors, k, n);
        let _ = exact.try_joint_with_stats(10_000_000).unwrap();
        assert!(exact.skip_cache.get().is_none());
        // Setters that change the skip set swap in a fresh cell.
        let rebudgeted = r.clone().with_error_budget(budget * 2.0);
        assert!(rebudgeted.skip_cache.get().is_none());
        let resparsed = r.clone().with_sparse(false);
        assert!(resparsed.skip_cache.get().is_none());
    }
}
