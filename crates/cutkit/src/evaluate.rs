//! Fragment evaluation: dispatching variants to simulator backends.
//!
//! This is SuperSim's fragment evaluator (paper §V-B): Clifford fragments
//! go to the stabilizer simulator ([`stabsim::TableauSim`] /
//! [`stabsim::FrameSim`] when noisy), everything else goes to the exact
//! statevector simulator ([`svsim::StateVec`]).

use crate::cut::Fragment;
use crate::variants::{variant_circuit, Variant};
use faultkit::{Interrupt, Supervisor};
use qcir::Bits;
use rand::Rng;
use std::fmt;

/// How fragments are evaluated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EvalMode {
    /// Exact distributions (machine-precision "strong simulation").
    Exact,
    /// Finite-shot sampling, the paper's default protocol (5000 shots).
    Sampled {
        /// Shots per fragment variant.
        shots: usize,
    },
}

/// Which stabilizer engine evaluates noiseless Clifford fragments.
///
/// All engines are bit-identical in outcomes and seeded-RNG consumption
/// (asserted by the `tableau_engine_parity` suite and the `tableau` /
/// `gate_apply` bench series), so the choice is purely a performance knob;
/// the reference exists so that guarantee stays testable end-to-end
/// through the fragment-tensor pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TableauEngine {
    /// The word-parallel row-major bit-plane engine
    /// ([`stabsim::TableauSim`]) — the production default, strongest on
    /// measurement/support-heavy fragments.
    Packed,
    /// The column-major (inverse-orientation) engine
    /// ([`stabsim::SparseGateTableauSim`]): `O(n/64)`-word gates with a
    /// lazy row transpose at measurement — strongest on gate-dense
    /// fragments.
    SparseGate,
    /// The frozen baseline pipeline: the bit-at-a-time tableau
    /// ([`stabsim::ReferenceTableauSim`]) *and* the pre-optimization
    /// per-shot affine sampling loop
    /// ([`stabsim::AffineSupport::sample_counts_scratch_frozen`]). Kept
    /// for parity tests and so end-to-end speedup measurements compare
    /// against the real pre-optimization Clifford evaluation cost.
    Reference,
}

impl TableauEngine {
    /// Parses an engine name as accepted by the `SUPERSIM_TABLEAU_ENGINE`
    /// environment variable (case-insensitive; `-`/`_` interchangeable).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().replace('-', "_").as_str() {
            "packed" => Some(TableauEngine::Packed),
            "sparse_gate" | "sparsegate" | "sparse" => Some(TableauEngine::SparseGate),
            "reference" => Some(TableauEngine::Reference),
            _ => None,
        }
    }
}

impl Default for TableauEngine {
    /// [`TableauEngine::Packed`] unless the `SUPERSIM_TABLEAU_ENGINE`
    /// environment variable selects another engine (`packed` /
    /// `sparse-gate` / `reference`) — the hook the CI engine axis uses to
    /// re-run the whole test suite per engine. Read once per process.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized engine name: a misspelled axis value must
    /// not silently re-test the default engine.
    fn default() -> Self {
        static FROM_ENV: std::sync::OnceLock<TableauEngine> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("SUPERSIM_TABLEAU_ENGINE") {
            Ok(name) => TableauEngine::from_name(&name).unwrap_or_else(|| {
                panic!("SUPERSIM_TABLEAU_ENGINE={name:?} is not a tableau engine (expected packed | sparse-gate | reference)")
            }),
            Err(_) => TableauEngine::Packed,
        })
    }
}

/// Options controlling fragment evaluation.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Evaluation mode.
    pub mode: EvalMode,
    /// Evaluate Clifford fragments exactly even in sampled mode (the
    /// strongest form of the paper's §IX "fewer shots" optimization:
    /// `⟨P⟩ ∈ {-1,0,+1}` read off the tableau at zero shots). Requires the
    /// support to fit `exact_support_limit`.
    pub exact_clifford: bool,
    /// Largest affine-support dimension enumerated exactly (`2^dim`
    /// outcomes).
    pub exact_support_limit: usize,
    /// Tableau engine for noiseless Clifford fragments.
    pub tableau_engine: TableauEngine,
    /// Supervision context, consulted once per evaluation chunk
    /// ([`crate::evaluate_planned_chunk`]): cooperative cancellation and
    /// deadlines surface as [`EvalError::Interrupted`], scheduled fault
    /// injections as [`EvalError::Injected`] (or a deliberate panic). The
    /// default (unsupervised) context passes every checkpoint and adds no
    /// measurable overhead.
    pub supervisor: Supervisor,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            mode: EvalMode::Sampled { shots: 5000 },
            exact_clifford: false,
            exact_support_limit: 16,
            tableau_engine: TableauEngine::default(),
            supervisor: Supervisor::new(),
        }
    }
}

/// Errors surfaced while evaluating a fragment variant.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// A non-Clifford fragment is too wide for dense simulation.
    FragmentTooWide(usize),
    /// Exact mode requested but the Clifford fragment's output support is
    /// too large to enumerate.
    SupportTooLarge {
        /// Support dimension (the distribution has `2^dim` points).
        dim: usize,
        /// The configured limit.
        limit: usize,
    },
    /// Exact mode cannot evaluate noisy fragments.
    NoiseInExactMode,
    /// A supervision checkpoint stopped the evaluation (cooperative
    /// cancellation or a deadline — see [`EvalOptions::supervisor`]).
    Interrupted(Interrupt),
    /// A scheduled fault-injection error fired at this evaluation site
    /// (chaos testing — see [`faultkit::FaultPlan`]).
    Injected(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FragmentTooWide(n) => {
                write!(
                    f,
                    "non-Clifford fragment with {n} qubits exceeds statevector limit"
                )
            }
            EvalError::SupportTooLarge { dim, limit } => write!(
                f,
                "Clifford fragment support dimension {dim} exceeds exact enumeration limit {limit}"
            ),
            EvalError::NoiseInExactMode => {
                write!(f, "noise channels cannot be evaluated in exact mode")
            }
            EvalError::Interrupted(i) => write!(f, "evaluation interrupted: {i}"),
            EvalError::Injected(site) => write!(f, "injected evaluation fault at {site}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Reusable per-worker evaluation scratch for [`evaluate_variant_into`]:
/// the outcome tally (and its hash table), the sampling scratch row, and
/// nothing else — everything the sampled hot paths would otherwise
/// allocate afresh per variant.
pub struct EvalScratch {
    counts: metrics::OutcomeCounts,
    row: Bits,
}

impl EvalScratch {
    /// An empty scratch; buffers grow to the working-set size of the
    /// first evaluations and are reused afterwards.
    pub fn new() -> Self {
        EvalScratch {
            counts: metrics::OutcomeCounts::new(),
            row: Bits::zeros(0),
        }
    }
}

impl Default for EvalScratch {
    fn default() -> Self {
        EvalScratch::new()
    }
}

/// Evaluates one variant of a fragment, returning a weighted list of
/// outcomes over the fragment's local qubits (probabilities for exact mode,
/// empirical frequencies for sampled mode).
///
/// Allocates its scratch and output buffers afresh; hot loops that
/// evaluate many variants should use [`evaluate_variant_into`] with
/// per-worker buffers instead.
///
/// # Errors
///
/// Returns [`EvalError`] when the backend cannot evaluate the variant (too
/// wide, support too large to enumerate, or noise in exact mode).
pub fn evaluate_variant(
    fragment: &Fragment,
    variant: &Variant,
    options: &EvalOptions,
    rng: &mut impl Rng,
) -> Result<Vec<(Bits, f64)>, EvalError> {
    let mut out = Vec::new();
    evaluate_variant_into(
        fragment,
        variant,
        options,
        rng,
        &mut EvalScratch::new(),
        &mut out,
    )?;
    Ok(out)
}

/// [`evaluate_variant`] into caller-provided buffers: `out` is cleared and
/// filled with the variant's weighted outcomes; `scratch` carries the
/// tally table and sampling row across calls so the per-variant hot loop
/// re-allocates neither (the remaining per-outcome clones are the interned
/// first-sight keys, paid once per distinct outcome).
///
/// # Errors
///
/// Returns [`EvalError`] when the backend cannot evaluate the variant (too
/// wide, support too large to enumerate, or noise in exact mode).
pub fn evaluate_variant_into(
    fragment: &Fragment,
    variant: &Variant,
    options: &EvalOptions,
    rng: &mut impl Rng,
    scratch: &mut EvalScratch,
    out: &mut Vec<(Bits, f64)>,
) -> Result<(), EvalError> {
    out.clear();
    let circuit = variant_circuit(fragment, variant);
    let clifford = fragment.is_clifford; // prep/rotation ops are Clifford
    let noisy = circuit.has_noise();

    let exact = match options.mode {
        EvalMode::Exact => true,
        EvalMode::Sampled { .. } => options.exact_clifford && clifford && !noisy,
    };

    if clifford {
        if exact {
            if noisy {
                return Err(EvalError::NoiseInExactMode);
            }
            let support = clifford_support(&circuit, options.tableau_engine, rng);
            let dim = support.dim();
            if dim <= options.exact_support_limit {
                let p = 1.0 / (1u64 << dim) as f64;
                out.extend(support.enumerate().into_iter().map(|b| (b, p)));
                return Ok(());
            }
            // Too large to enumerate: a hard error in exact mode, a
            // graceful fall-through to sampling when the zero-shot
            // optimization was merely opportunistic.
            if let EvalMode::Sampled { shots } = options.mode {
                scratch.counts.clear();
                sample_support_counts(&support, options.tableau_engine, shots, rng, scratch);
                counts_to_frequencies_into(&scratch.counts, shots, out);
                return Ok(());
            }
            Err(EvalError::SupportTooLarge {
                dim,
                limit: options.exact_support_limit,
            })
        } else {
            let shots = match options.mode {
                EvalMode::Sampled { shots } => shots,
                EvalMode::Exact => unreachable!("exact handled above"),
            };
            if noisy {
                let samples = stabsim::FrameSim::sample(&circuit, shots, rng)
                    .expect("clifford fragment must run on the frame simulator");
                count_samples_into(&samples, scratch, out);
            } else {
                // Bulk sampling through the counting path reuses the
                // worker's tally table and scratch row instead of
                // allocating per variant (let alone per shot).
                scratch.counts.clear();
                let support = clifford_support(&circuit, options.tableau_engine, rng);
                sample_support_counts(&support, options.tableau_engine, shots, rng, scratch);
                counts_to_frequencies_into(&scratch.counts, shots, out);
            }
            Ok(())
        }
    } else {
        if circuit.num_qubits() > svsim::MAX_QUBITS {
            return Err(EvalError::FragmentTooWide(circuit.num_qubits()));
        }
        match options.mode {
            EvalMode::Exact => {
                if noisy {
                    return Err(EvalError::NoiseInExactMode);
                }
                let sv = svsim::StateVec::run(&circuit)
                    .map_err(|_| EvalError::FragmentTooWide(circuit.num_qubits()))?;
                out.extend(sv.distribution(1e-14));
                Ok(())
            }
            EvalMode::Sampled { shots } => {
                let sv = if noisy {
                    svsim::StateVec::run_noisy(&circuit, rng)
                } else {
                    svsim::StateVec::run(&circuit)
                }
                .map_err(|_| EvalError::FragmentTooWide(circuit.num_qubits()))?;
                let nq = circuit.num_qubits();
                if (1..=20).contains(&nq) {
                    // Index-tally sampling: same RNG stream and outcome
                    // multiset as `sample`, without materializing a `Bits`
                    // per shot. Gated on width so the 2^n tally stays small.
                    scratch.counts.clear();
                    if scratch.row.len() != nq {
                        scratch.row = Bits::zeros(nq);
                    }
                    for (idx, count) in sv.sample_index_counts(shots, rng) {
                        scratch.row.copy_from_words(&[idx]);
                        scratch.counts.record_n(&scratch.row, count);
                    }
                    counts_to_frequencies_into(&scratch.counts, shots, out);
                } else {
                    count_samples_into(&sv.sample(shots, rng), scratch, out);
                }
                Ok(())
            }
        }
    }
}

/// Runs a noiseless Clifford circuit on the selected tableau engine and
/// extracts its affine support. All engines consume `rng` identically
/// and produce the same support (same base, same direction order), so the
/// choice never perturbs downstream sampling streams.
fn clifford_support(
    circuit: &qcir::Circuit,
    engine: TableauEngine,
    rng: &mut impl Rng,
) -> stabsim::AffineSupport {
    match engine {
        TableauEngine::Packed => stabsim::TableauSim::run(circuit, rng)
            .expect("clifford fragment must run on the tableau")
            .support(),
        TableauEngine::SparseGate => stabsim::SparseGateTableauSim::run(circuit, rng)
            .expect("clifford fragment must run on the tableau")
            .support(),
        TableauEngine::Reference => stabsim::ReferenceTableauSim::run(circuit, rng)
            .expect("clifford fragment must run on the tableau")
            .support(),
    }
}

/// Tallies `shots` draws from an affine support through the path matching
/// the selected engine. `Reference` pins the whole Clifford pipeline to
/// the frozen baseline — the per-shot direction-XOR loop — while the
/// optimized engines take the table fast path. Both consume the RNG
/// identically and produce the same tally, so the engine choice never
/// perturbs outcome streams; it only decides whether end-to-end timings
/// measure the frozen or the optimized sampling cost.
fn sample_support_counts(
    support: &stabsim::AffineSupport,
    engine: TableauEngine,
    shots: usize,
    rng: &mut impl Rng,
    scratch: &mut EvalScratch,
) {
    match engine {
        TableauEngine::Reference => {
            support.sample_counts_scratch_frozen(shots, rng, &mut scratch.counts, &mut scratch.row)
        }
        TableauEngine::Packed | TableauEngine::SparseGate => {
            support.sample_counts_scratch(shots, rng, &mut scratch.counts, &mut scratch.row)
        }
    }
}

/// Collapses samples into `(outcome, frequency)` pairs in deterministic
/// (lexicographic) order so downstream accumulation is bit-reproducible.
/// Tallied by interned id (`O(1)` per sample) through the worker's reused
/// table instead of the former per-sample ordered-map walk; the sort
/// happens once at emission.
fn count_samples_into(samples: &[Bits], scratch: &mut EvalScratch, out: &mut Vec<(Bits, f64)>) {
    scratch.counts.clear();
    for s in samples {
        scratch.counts.record(s);
    }
    counts_to_frequencies_into(&scratch.counts, samples.len(), out);
}

/// Converts an outcome tally to frequencies, appending to `out` in
/// lexicographic order (bit-identical to the former `BTreeMap<Bits,
/// usize>` path).
fn counts_to_frequencies_into(
    counts: &metrics::OutcomeCounts,
    shots: usize,
    out: &mut Vec<(Bits, f64)>,
) {
    let total = shots.max(1) as f64;
    out.extend(
        counts
            .iter_sorted()
            .map(|(b, c)| (b.clone(), c as f64 / total)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use crate::variants::enumerate_variants;
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn exact_clifford_fragment_distribution_sums_to_one() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let cliff = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        let opts = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut r = rng();
        for v in enumerate_variants(cliff) {
            let data = evaluate_variant(cliff, &v, &opts, &mut r).unwrap();
            let total: f64 = data.iter().map(|(_, p)| p).sum();
            assert!(
                (total - 1.0).abs() < 1e-12,
                "variant distribution not normalized"
            );
        }
    }

    #[test]
    fn sampled_mode_frequencies_sum_to_one() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let opts = EvalOptions {
            mode: EvalMode::Sampled { shots: 100 },
            ..Default::default()
        };
        let mut r = rng();
        for f in &cut.fragments {
            for v in enumerate_variants(f) {
                let data = evaluate_variant(f, &v, &opts, &mut r).unwrap();
                let total: f64 = data.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exact_and_sampled_agree_statistically() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let f = cut.fragments.iter().find(|f| !f.is_clifford).unwrap();
        let v = &enumerate_variants(f)[5];
        let mut r = rng();
        let exact = evaluate_variant(
            f,
            v,
            &EvalOptions {
                mode: EvalMode::Exact,
                ..Default::default()
            },
            &mut r,
        )
        .unwrap();
        let sampled = evaluate_variant(
            f,
            v,
            &EvalOptions {
                mode: EvalMode::Sampled { shots: 40_000 },
                ..Default::default()
            },
            &mut r,
        )
        .unwrap();
        for (b, p) in &exact {
            let q = sampled
                .iter()
                .find(|(sb, _)| sb == b)
                .map(|(_, q)| *q)
                .unwrap_or(0.0);
            assert!(
                (p - q).abs() < 0.02,
                "outcome {b}: exact {p} vs sampled {q}"
            );
        }
    }

    #[test]
    fn exact_clifford_override_in_sampled_mode() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let cliff = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        let opts = EvalOptions {
            mode: EvalMode::Sampled { shots: 10 },
            exact_clifford: true,
            exact_support_limit: 16,
            ..Default::default()
        };
        let mut r = rng();
        let v = &enumerate_variants(cliff)[0];
        let data = evaluate_variant(cliff, v, &opts, &mut r).unwrap();
        // Exact probabilities despite only 10 shots configured: all entries
        // must be exact powers of 1/2^dim.
        let total: f64 = data.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (_, p) in &data {
            let inv = 1.0 / p;
            assert!(
                (inv - inv.round()).abs() < 1e-9,
                "non-dyadic probability {p}"
            );
        }
    }

    #[test]
    fn noise_rejected_in_exact_mode() {
        let mut c = Circuit::new(1);
        c.add_noise(qcir::NoiseChannel::BitFlip(0.5), &[0]);
        c.t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let mut r = rng();
        let mut saw_noise_error = false;
        for f in &cut.fragments {
            for v in enumerate_variants(f) {
                let res = evaluate_variant(
                    f,
                    &v,
                    &EvalOptions {
                        mode: EvalMode::Exact,
                        ..Default::default()
                    },
                    &mut r,
                );
                if matches!(res, Err(EvalError::NoiseInExactMode)) {
                    saw_noise_error = true;
                }
            }
        }
        assert!(saw_noise_error);
    }
}
