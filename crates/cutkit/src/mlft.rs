//! Maximum-likelihood fragment-tomography (MLFT) correction.
//!
//! Finite-shot fragment tensors are generally *unphysical*: the implied
//! conditional channels `E_b` need not be completely positive, and the
//! fragment need not be exactly trace preserving. Following Perlin et al.
//! (the paper's [40]), this module projects each fragment model onto the
//! physical set before recombination, which provably reduces the effect of
//! sampling error:
//!
//! 1. for every observed output `b`, rebuild the Choi operator
//!    `J_b = Σ_{pi,po} T[b,pi,po]/2^qo · (P_po ⊗ P_piᵀ)` and project it
//!    onto the positive-semidefinite cone (complete positivity);
//! 2. rescale the whole fragment so `Σ_b T[b, I…I] = 1` (trace
//!    preservation / normalization).
//!
//! With exact fragment data both steps are the identity.

use crate::tensor::FragmentTensor;
use qcir::{Bits, Pauli};
use qmath::{psd_project_with_trace, CMat, C64};
use std::collections::BTreeMap;

/// Options for the MLFT correction.
#[derive(Copy, Clone, Debug)]
pub struct MlftOptions {
    /// Skip the PSD projection for fragments with more than this many cut
    /// ends (the Choi matrix is `2^(qi+qo)` dimensional).
    pub max_cut_ends: usize,
    /// Project a block only when its most negative eigenvalue is below
    /// `-negativity_tolerance` (in absolute probability-mass units).
    /// Finite-shot blocks are *slightly* unphysical almost surely;
    /// projecting those introduces more bias than the variance it removes,
    /// so the correction acts as a guard against seriously unphysical
    /// models rather than a blanket filter.
    pub negativity_tolerance: f64,
}

impl Default for MlftOptions {
    fn default() -> Self {
        MlftOptions {
            max_cut_ends: 3,
            negativity_tolerance: 0.05,
        }
    }
}

/// The 2×2 matrix of a Pauli.
fn pauli_matrix(p: Pauli) -> CMat {
    let o = C64::ZERO;
    let l = C64::ONE;
    let i = C64::i();
    match p {
        Pauli::I => CMat::identity(2),
        Pauli::X => CMat::from_rows(&[&[o, l], &[l, o]]),
        Pauli::Y => CMat::from_rows(&[&[o, -i], &[i, o]]),
        Pauli::Z => CMat::from_rows(&[&[l, o], &[o, -l]]),
    }
}

/// Builds the Choi-basis matrix `P_po ⊗ P_piᵀ` for a composite Pauli
/// index with `qi` input digits followed by `qo` output digits
/// (most-significant first, matching [`FragmentTensor`] layout).
fn basis_matrix(idx: usize, qi: usize, qo: usize) -> CMat {
    let digits: Vec<usize> = (0..qi + qo)
        .rev()
        .map(|k| (idx >> (2 * k)) & 0b11)
        .collect();
    let mut out = CMat::identity(1);
    // Output part first (acts on the output factor of J).
    for &d in digits[qi..].iter() {
        out = out.kron(&pauli_matrix(Pauli::from_index(d)));
    }
    for &d in digits[..qi].iter() {
        out = out.kron(&pauli_matrix(Pauli::from_index(d)).transpose());
    }
    out
}

/// Applies the MLFT physicality correction to a fragment tensor in place.
///
/// Returns the Frobenius-norm change summed over all corrected Choi
/// blocks — zero (up to rounding) for exact fragment data, positive for
/// noisy sampled data. Useful for diagnostics and tests.
pub fn correct_tensor(tensor: &mut FragmentTensor, opts: &MlftOptions) -> f64 {
    let qi = tensor.num_inputs();
    let qo = tensor.num_outputs();
    let m = qi + qo;
    let mut moved = 0.0;

    if m > 0 && m <= opts.max_cut_ends {
        let d = 1usize << m; // Choi dimension
        let dim = tensor.pauli_dim();
        let do_ = (1usize << qo) as f64;
        // Precompute the Pauli basis matrices once per fragment shape.
        let basis: Vec<CMat> = (0..dim).map(|idx| basis_matrix(idx, qi, qo)).collect();

        let snapshot: Vec<(Bits, Vec<f64>)> =
            tensor.iter().map(|(b, v)| (b.clone(), v.clone())).collect();
        let mut corrected: BTreeMap<Bits, Vec<f64>> = BTreeMap::new();
        for (b, coeffs) in snapshot {
            // J_b = Σ_idx T[idx]/do · basis[idx]
            let mut j = CMat::zeros(d, d);
            for (idx, &t) in coeffs.iter().enumerate() {
                if t != 0.0 {
                    j = j.add(&basis[idx].scale(C64::real(t / do_)));
                }
            }
            // Trace-preserving PSD projection: keeps each block's
            // (unbiased) probability mass while enforcing complete
            // positivity. Plain eigenvalue clipping would inflate noisy
            // blocks and bias the reconstruction. Blocks that are only
            // marginally unphysical are left alone (see
            // [`MlftOptions::negativity_tolerance`]).
            let trace = j.trace().re.max(0.0);
            let min_eig = qmath::eigh(&j).values.first().copied().unwrap_or(0.0);
            if min_eig >= -opts.negativity_tolerance {
                corrected.insert(b, coeffs);
                continue;
            }
            let jp = psd_project_with_trace(&j, trace);
            moved += jp.sub(&j).frobenius_norm();
            // T'[idx] = do · Tr[basis[idx]·J'] / (di·do) = Tr[...] / di.
            let di = (1usize << qi) as f64;
            let new_coeffs: Vec<f64> = (0..dim)
                .map(|idx| {
                    let tr = basis[idx].mul(&jp).trace();
                    debug_assert!(tr.im.abs() < 1e-9, "non-real Choi coefficient");
                    tr.re / di
                })
                .collect();
            corrected.insert(b, new_coeffs);
        }
        for (b, v) in corrected {
            tensor.set_entry(b, v);
        }
        tensor.rebuild_derived(1.0);
    }

    // Normalization: Σ_b T[b, I…I] = 1 exactly.
    let mass = tensor.total(0);
    if mass > 1e-12 {
        tensor.rebuild_derived(1.0 / mass);
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use crate::evaluate::{EvalMode, EvalOptions};
    use crate::tensor::{build_fragment_tensor, TensorOptions};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tensors_for(c: &Circuit, eval: &EvalOptions, seed: u64) -> Vec<FragmentTensor> {
        let cut = cut_circuit(c, CutStrategy::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        cut.fragments
            .iter()
            .map(|f| {
                build_fragment_tensor(
                    f,
                    eval,
                    &TensorOptions {
                        clifford_snap: false,
                    },
                    &mut rng,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn basis_matrices_are_orthogonal() {
        // Tr[B_i · B_j] = d·δ_ij for the Pauli ⊗ Pauliᵀ basis.
        let d = 4; // qi = qo = 1
        for i in 0..16 {
            for j in 0..16 {
                let bi = basis_matrix(i, 1, 1);
                let bj = basis_matrix(j, 1, 1);
                let tr = bi.mul(&bj).trace();
                let expect = if i == j { d as f64 } else { 0.0 };
                assert!(
                    (tr.re - expect).abs() < 1e-12 && tr.im.abs() < 1e-12,
                    "orthogonality failed at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn exact_tensors_are_fixed_points() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        for mut t in tensors_for(&c, &eval, 1) {
            let before: Vec<(Bits, Vec<f64>)> =
                t.iter().map(|(b, v)| (b.clone(), v.clone())).collect();
            let moved = correct_tensor(&mut t, &MlftOptions::default());
            assert!(moved < 1e-8, "exact data should be physical, moved {moved}");
            for (b, v) in before {
                for (i, x) in v.iter().enumerate() {
                    assert!((t.value(&b, i) - x).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn sampled_tensors_get_normalized() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 300 },
            ..Default::default()
        };
        for mut t in tensors_for(&c, &eval, 5) {
            correct_tensor(&mut t, &MlftOptions::default());
            assert!(
                (t.total(0) - 1.0).abs() < 1e-9,
                "normalization must hold after correction"
            );
        }
    }

    #[test]
    fn correction_moves_noisy_data_toward_truth() {
        // Build the T-fragment tensor with few shots; the corrected tensor
        // must not be further from the exact tensor than the raw one
        // (averaged over fragments and entries).
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let exact = tensors_for(
            &c,
            &EvalOptions {
                mode: EvalMode::Exact,
                ..Default::default()
            },
            1,
        );
        let mut err_raw = 0.0;
        let mut err_fix = 0.0;
        for trial in 0..8u64 {
            let sampled = tensors_for(
                &c,
                &EvalOptions {
                    mode: EvalMode::Sampled { shots: 150 },
                    ..Default::default()
                },
                100 + trial,
            );
            for (raw, ex) in sampled.iter().zip(&exact) {
                let mut fixed = raw.clone();
                correct_tensor(&mut fixed, &MlftOptions::default());
                for (b, v) in ex.iter() {
                    for (i, &x) in v.iter().enumerate() {
                        err_raw += (raw.value(b, i) - x).powi(2);
                        err_fix += (fixed.value(b, i) - x).powi(2);
                    }
                }
            }
        }
        assert!(
            err_fix <= err_raw * 1.05,
            "correction should not hurt: raw {err_raw:.4} vs fixed {err_fix:.4}"
        );
    }

    #[test]
    fn psd_projection_kills_negative_eigenvalues() {
        // Hand-build an unphysical single-output tensor: |<P>| > 1.
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let cutc = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cutc.fragments.iter().find(|f| f.is_clifford).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = build_fragment_tensor(
            up,
            &eval,
            &TensorOptions {
                clifford_snap: false,
            },
            &mut rng,
        )
        .unwrap();
        // Corrupt: set <Z> = 1.8 (impossible).
        let b = Bits::zeros(0);
        let mut v: Vec<f64> = t.iter().next().unwrap().1.clone();
        v[3] = 1.8;
        t.set_entry(b.clone(), v);
        t.rebuild_derived(1.0);
        let moved = correct_tensor(&mut t, &MlftOptions::default());
        assert!(moved > 0.1, "projection must act on unphysical data");
        let z = t.value(&b, 3);
        let x = t.value(&b, 1);
        let norm = (z * z + x * x).sqrt();
        assert!(
            norm <= 1.0 + 1e-9,
            "Bloch vector must be physical, got {norm}"
        );
    }
}
