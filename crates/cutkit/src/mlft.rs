//! Maximum-likelihood fragment-tomography (MLFT) correction.
//!
//! Finite-shot fragment tensors are generally *unphysical*: the implied
//! conditional channels `E_b` need not be completely positive, and the
//! fragment need not be exactly trace preserving. Following Perlin et al.
//! (the paper's [40]), this module projects each fragment model onto the
//! physical set before recombination, which provably reduces the effect of
//! sampling error:
//!
//! 1. for every observed output `b`, rebuild the Choi operator
//!    `J_b = Σ_{pi,po} T[b,pi,po]/2^qo · (P_po ⊗ P_piᵀ)` and project it
//!    onto the positive-semidefinite cone (complete positivity);
//! 2. rescale the whole fragment so `Σ_b T[b, I…I] = 1` (trace
//!    preservation / normalization).
//!
//! With exact fragment data both steps are the identity.

use crate::tensor::FragmentTensor;
use qcir::{Bits, Pauli};
use qmath::{psd_project_with_trace, CMat, C64};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Identity-Pauli mass below which a fragment cannot be normalized.
const MASS_TOLERANCE: f64 = 1e-12;

/// Errors from the MLFT correction.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MlftError {
    /// The fragment's total identity-Pauli mass `Σ_b T[b, I…I]` vanished,
    /// so the trace-preservation rescale is undefined. An uncorrected,
    /// unnormalized tensor would silently poison recombination — surface
    /// it instead. (Exact fragment data always has unit mass; sampled
    /// data can only hit this when every recorded outcome was projected
    /// or clipped away.)
    VanishingMass {
        /// The offending mass value.
        mass: f64,
    },
}

impl fmt::Display for MlftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlftError::VanishingMass { mass } => write!(
                f,
                "MLFT normalization undefined: fragment identity mass {mass:e} \
                 is below {MASS_TOLERANCE:e}"
            ),
        }
    }
}

impl std::error::Error for MlftError {}

/// Options for the MLFT correction.
#[derive(Copy, Clone, Debug)]
pub struct MlftOptions {
    /// Skip the PSD projection for fragments with more than this many cut
    /// ends (the Choi matrix is `2^(qi+qo)` dimensional).
    pub max_cut_ends: usize,
    /// Project a block only when its most negative eigenvalue is below
    /// `-negativity_tolerance` (in absolute probability-mass units).
    /// Finite-shot blocks are *slightly* unphysical almost surely;
    /// projecting those introduces more bias than the variance it removes,
    /// so the correction acts as a guard against seriously unphysical
    /// models rather than a blanket filter.
    pub negativity_tolerance: f64,
}

impl Default for MlftOptions {
    fn default() -> Self {
        MlftOptions {
            max_cut_ends: 3,
            negativity_tolerance: 0.05,
        }
    }
}

/// The 2×2 matrix of a Pauli.
fn pauli_matrix(p: Pauli) -> CMat {
    let o = C64::ZERO;
    let l = C64::ONE;
    let i = C64::i();
    match p {
        Pauli::I => CMat::identity(2),
        Pauli::X => CMat::from_rows(&[&[o, l], &[l, o]]),
        Pauli::Y => CMat::from_rows(&[&[o, -i], &[i, o]]),
        Pauli::Z => CMat::from_rows(&[&[l, o], &[o, -l]]),
    }
}

/// Builds the Choi-basis matrix `P_po ⊗ P_piᵀ` for a composite Pauli
/// index with `qi` input digits followed by `qo` output digits
/// (most-significant first, matching [`FragmentTensor`] layout).
fn basis_matrix(idx: usize, qi: usize, qo: usize) -> CMat {
    let digits: Vec<usize> = (0..qi + qo)
        .rev()
        .map(|k| (idx >> (2 * k)) & 0b11)
        .collect();
    let mut out = CMat::identity(1);
    // Output part first (acts on the output factor of J).
    for &d in digits[qi..].iter() {
        out = out.kron(&pauli_matrix(Pauli::from_index(d)));
    }
    for &d in digits[..qi].iter() {
        out = out.kron(&pauli_matrix(Pauli::from_index(d)).transpose());
    }
    out
}

/// Applies the MLFT physicality correction to a fragment tensor in place.
///
/// Returns the Frobenius-norm change summed over all corrected Choi
/// blocks — zero (up to rounding) for exact fragment data, positive for
/// noisy sampled data. Useful for diagnostics and tests.
///
/// The PSD projection and the trace-preservation rescale are folded into
/// a **single** [`FragmentTensor::rebuild_derived`] pass: the
/// normalization mass is read directly off the (possibly projected)
/// entries, so the derived sums are recomputed exactly once per fragment.
///
/// The correction is ordered-map-free: entries are visited in the
/// tensor's lexicographic emission order and only projected blocks are
/// written back, so no intermediate `BTreeMap` snapshot is rebuilt — the
/// frozen pre-intern path is kept as [`reference_correct_btreemap`] for
/// parity tests and the `mlft` benchmark series.
///
/// # Errors
///
/// Returns [`MlftError::VanishingMass`] when the fragment's identity
/// mass is too small to normalize; the tensor is left with consistent
/// derived sums but **unnormalized** — callers must not recombine it.
pub fn correct_tensor(tensor: &mut FragmentTensor, opts: &MlftOptions) -> Result<f64, MlftError> {
    let qi = tensor.num_inputs();
    let qo = tensor.num_outputs();
    let m = qi + qo;
    let mut moved = 0.0;

    if m > 0 && m <= opts.max_cut_ends {
        let d = 1usize << m; // Choi dimension
        let dim = tensor.pauli_dim();
        let do_ = (1usize << qo) as f64;
        // Precompute the Pauli basis matrices once per fragment shape.
        let basis: Vec<CMat> = (0..dim).map(|idx| basis_matrix(idx, qi, qo)).collect();

        // Only projected blocks are written back; `moved` folds in
        // emission (lexicographic) order, matching the former snapshot
        // walk bit for bit.
        let mut projected: Vec<(Bits, Vec<f64>)> = Vec::new();
        for (b, coeffs) in tensor.iter() {
            // J_b = Σ_idx T[idx]/do · basis[idx]
            let mut j = CMat::zeros(d, d);
            for (idx, &t) in coeffs.iter().enumerate() {
                if t != 0.0 {
                    j = j.add(&basis[idx].scale(C64::real(t / do_)));
                }
            }
            // Trace-preserving PSD projection: keeps each block's
            // (unbiased) probability mass while enforcing complete
            // positivity. Plain eigenvalue clipping would inflate noisy
            // blocks and bias the reconstruction. Blocks that are only
            // marginally unphysical are left alone (see
            // [`MlftOptions::negativity_tolerance`]).
            let trace = j.trace().re.max(0.0);
            let min_eig = qmath::eigh(&j).values.first().copied().unwrap_or(0.0);
            if min_eig >= -opts.negativity_tolerance {
                continue;
            }
            let jp = psd_project_with_trace(&j, trace);
            moved += jp.sub(&j).frobenius_norm();
            // T'[idx] = do · Tr[basis[idx]·J'] / (di·do) = Tr[...] / di.
            let di = (1usize << qi) as f64;
            let new_coeffs: Vec<f64> = (0..dim)
                .map(|idx| {
                    let tr = basis[idx].mul(&jp).trace();
                    debug_assert!(tr.im.abs() < 1e-9, "non-real Choi coefficient");
                    tr.re / di
                })
                .collect();
            projected.push((b.clone(), new_coeffs));
        }
        for (b, v) in projected {
            tensor.set_entry(b, v);
        }
    }

    // Normalization: Σ_b T[b, I…I] = 1 exactly. The mass is summed off
    // the entries in key order — identical bits to the derived `total(0)`
    // a rebuild would produce — so projection bookkeeping and rescale
    // need only one `rebuild_derived` between them.
    let mass: f64 = tensor.iter().map(|(_, v)| v[0]).sum();
    if mass <= MASS_TOLERANCE {
        // Leave the tensor self-consistent (derived sums matching the
        // projected entries) before surfacing the failure.
        tensor.rebuild_derived(1.0);
        return Err(MlftError::VanishingMass { mass });
    }
    tensor.rebuild_derived(1.0 / mass);
    Ok(moved)
}

/// Applies [`correct_tensor`] to every fragment on up to `threads` worker
/// threads (fragments are corrected independently, so the stage
/// parallelizes the same way fragment evaluation does).
///
/// The summed Frobenius movement folds in fragment-index order on every
/// path, so the result is **bit-identical for any thread count**.
///
/// # Errors
///
/// Returns the error of the first failing fragment in fragment-index
/// order — the same error for any thread count. (On the parallel path,
/// fragments after that failure may or may not have been corrected when
/// the early exit lands; callers receiving an error must discard the
/// tensors.)
pub fn correct_tensors(
    tensors: &mut [FragmentTensor],
    opts: &MlftOptions,
    threads: usize,
) -> Result<f64, MlftError> {
    let n = tensors.len();
    let threads = runtime::worker_count(threads.max(1), n);
    if threads <= 1 {
        let mut moved = 0.0;
        for t in tensors.iter_mut() {
            moved += correct_tensor(t, opts)?;
        }
        return Ok(moved);
    }
    // Pooled workers over per-fragment slots; each slot is claimed by
    // exactly one worker (the injectable claim queue hands out distinct
    // indices), so the mutexes are uncontended handles for &mut access,
    // never waited on.
    let slots: Vec<Mutex<&mut FragmentTensor>> = tensors.iter_mut().map(Mutex::new).collect();
    let failed = AtomicBool::new(false);
    let queue = FailFastQueue {
        inner: runtime::CounterQueue::new(n),
        failed: &failed,
    };
    let results: Mutex<Vec<(usize, Result<f64, MlftError>)>> = Mutex::new(Vec::new());
    runtime::Pool::global().run_queue(threads, &queue, |_w, i| {
        let mut t = faultkit::lock_or_recover(&slots[i]);
        let r = correct_tensor(&mut t, opts);
        if r.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        faultkit::lock_or_recover(&results).push((i, r));
    });
    let mut results = faultkit::into_inner_or_recover(results);
    results.sort_by_key(|&(i, _)| i);
    let mut moved = 0.0;
    for (_, r) in results {
        moved += r?;
    }
    Ok(moved)
}

/// A [`runtime::TaskQueue`] that stops handing out new fragments once a
/// failure is recorded. The failure flag gates **new claims only**; a
/// claimed fragment is always processed. Claims are handed out in index
/// order, so every index below a processed failure has a recorded result,
/// and the first error in index order is identical to the sequential
/// path's.
struct FailFastQueue<'a> {
    inner: runtime::CounterQueue,
    failed: &'a AtomicBool,
}

impl runtime::TaskQueue for FailFastQueue<'_> {
    type Task = usize;

    fn next(&self) -> Option<usize> {
        if self.failed.load(Ordering::Relaxed) {
            return None;
        }
        self.inner.next()
    }
}

/// The pre-intern MLFT correction, frozen as a parity baseline: snapshots
/// every entry, rebuilds a full `BTreeMap<Bits, Vec<f64>>` of corrected
/// blocks (re-inserting even untouched ones), and writes the whole map
/// back — the ordered-map churn [`correct_tensor`] no longer pays.
/// Written against the public tensor API only.
///
/// Shared by the reference-parity tests and the `mlft` series of the
/// `bench_json` benchmark; not part of the supported API.
///
/// # Errors
///
/// Returns [`MlftError::VanishingMass`] exactly like [`correct_tensor`].
#[doc(hidden)]
pub fn reference_correct_btreemap(
    tensor: &mut FragmentTensor,
    opts: &MlftOptions,
) -> Result<f64, MlftError> {
    use std::collections::BTreeMap;
    let qi = tensor.num_inputs();
    let qo = tensor.num_outputs();
    let m = qi + qo;
    let mut moved = 0.0;

    if m > 0 && m <= opts.max_cut_ends {
        let d = 1usize << m;
        let dim = tensor.pauli_dim();
        let do_ = (1usize << qo) as f64;
        let basis: Vec<CMat> = (0..dim).map(|idx| basis_matrix(idx, qi, qo)).collect();

        let snapshot: Vec<(Bits, Vec<f64>)> = tensor
            .iter()
            .map(|(b, v)| (b.clone(), v.to_vec()))
            .collect();
        let mut corrected: BTreeMap<Bits, Vec<f64>> = BTreeMap::new();
        for (b, coeffs) in snapshot {
            let mut j = CMat::zeros(d, d);
            for (idx, &t) in coeffs.iter().enumerate() {
                if t != 0.0 {
                    j = j.add(&basis[idx].scale(C64::real(t / do_)));
                }
            }
            let trace = j.trace().re.max(0.0);
            let min_eig = qmath::eigh(&j).values.first().copied().unwrap_or(0.0);
            if min_eig >= -opts.negativity_tolerance {
                corrected.insert(b, coeffs);
                continue;
            }
            let jp = psd_project_with_trace(&j, trace);
            moved += jp.sub(&j).frobenius_norm();
            let di = (1usize << qi) as f64;
            let new_coeffs: Vec<f64> = (0..dim)
                .map(|idx| basis[idx].mul(&jp).trace().re / di)
                .collect();
            corrected.insert(b, new_coeffs);
        }
        for (b, v) in corrected {
            tensor.set_entry(b, v);
        }
    }

    let mass: f64 = tensor.iter().map(|(_, v)| v[0]).sum();
    if mass <= MASS_TOLERANCE {
        tensor.rebuild_derived(1.0);
        return Err(MlftError::VanishingMass { mass });
    }
    tensor.rebuild_derived(1.0 / mass);
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use crate::evaluate::{EvalMode, EvalOptions};
    use crate::tensor::{build_fragment_tensor, TensorOptions};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tensors_for(c: &Circuit, eval: &EvalOptions, seed: u64) -> Vec<FragmentTensor> {
        let cut = cut_circuit(c, CutStrategy::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        cut.fragments
            .iter()
            .map(|f| {
                build_fragment_tensor(
                    f,
                    eval,
                    &TensorOptions {
                        clifford_snap: false,
                    },
                    &mut rng,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn basis_matrices_are_orthogonal() {
        // Tr[B_i · B_j] = d·δ_ij for the Pauli ⊗ Pauliᵀ basis.
        let d = 4; // qi = qo = 1
        for i in 0..16 {
            for j in 0..16 {
                let bi = basis_matrix(i, 1, 1);
                let bj = basis_matrix(j, 1, 1);
                let tr = bi.mul(&bj).trace();
                let expect = if i == j { d as f64 } else { 0.0 };
                assert!(
                    (tr.re - expect).abs() < 1e-12 && tr.im.abs() < 1e-12,
                    "orthogonality failed at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn exact_tensors_are_fixed_points() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        for mut t in tensors_for(&c, &eval, 1) {
            let before: Vec<(Bits, Vec<f64>)> =
                t.iter().map(|(b, v)| (b.clone(), v.to_vec())).collect();
            let moved = correct_tensor(&mut t, &MlftOptions::default()).unwrap();
            assert!(moved < 1e-8, "exact data should be physical, moved {moved}");
            for (b, v) in before {
                for (i, x) in v.iter().enumerate() {
                    assert!((t.value(&b, i) - x).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn sampled_tensors_get_normalized() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 300 },
            ..Default::default()
        };
        for mut t in tensors_for(&c, &eval, 5) {
            correct_tensor(&mut t, &MlftOptions::default()).unwrap();
            assert!(
                (t.total(0) - 1.0).abs() < 1e-9,
                "normalization must hold after correction"
            );
        }
    }

    #[test]
    fn correction_moves_noisy_data_toward_truth() {
        // Build the T-fragment tensor with few shots; the corrected tensor
        // must not be further from the exact tensor than the raw one
        // (averaged over fragments and entries).
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let exact = tensors_for(
            &c,
            &EvalOptions {
                mode: EvalMode::Exact,
                ..Default::default()
            },
            1,
        );
        let mut err_raw = 0.0;
        let mut err_fix = 0.0;
        for trial in 0..8u64 {
            let sampled = tensors_for(
                &c,
                &EvalOptions {
                    mode: EvalMode::Sampled { shots: 150 },
                    ..Default::default()
                },
                100 + trial,
            );
            for (raw, ex) in sampled.iter().zip(&exact) {
                let mut fixed = raw.clone();
                correct_tensor(&mut fixed, &MlftOptions::default()).unwrap();
                for (b, v) in ex.iter() {
                    for (i, &x) in v.iter().enumerate() {
                        err_raw += (raw.value(b, i) - x).powi(2);
                        err_fix += (fixed.value(b, i) - x).powi(2);
                    }
                }
            }
        }
        assert!(
            err_fix <= err_raw * 1.05,
            "correction should not hurt: raw {err_raw:.4} vs fixed {err_fix:.4}"
        );
    }

    #[test]
    fn psd_projection_kills_negative_eigenvalues() {
        // Hand-build an unphysical single-output tensor: |<P>| > 1.
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let cutc = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cutc.fragments.iter().find(|f| f.is_clifford).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = build_fragment_tensor(
            up,
            &eval,
            &TensorOptions {
                clifford_snap: false,
            },
            &mut rng,
        )
        .unwrap();
        // Corrupt: set <Z> = 1.8 (impossible).
        let b = Bits::zeros(0);
        let mut v: Vec<f64> = t.iter().next().unwrap().1.to_vec();
        v[3] = 1.8;
        t.set_entry(b.clone(), v);
        t.rebuild_derived(1.0);
        let moved = correct_tensor(&mut t, &MlftOptions::default()).unwrap();
        assert!(moved > 0.1, "projection must act on unphysical data");
        let z = t.value(&b, 3);
        let x = t.value(&b, 1);
        let norm = (z * z + x * x).sqrt();
        assert!(
            norm <= 1.0 + 1e-9,
            "Bloch vector must be physical, got {norm}"
        );
    }

    #[test]
    fn vanishing_mass_is_surfaced_not_swallowed() {
        // Zero out a tensor's identity mass entirely; the old code left
        // the unnormalized tensor in place silently.
        let mut c = Circuit::new(1);
        c.t(0).add_gate(qcir::Gate::I, &[0]);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let down = cut
            .fragments
            .iter()
            .find(|f| f.quantum_inputs.len() == 1)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut t =
            build_fragment_tensor(down, &eval, &TensorOptions::default(), &mut rng).unwrap();
        let zeroed: Vec<(Bits, Vec<f64>)> = t
            .iter()
            .map(|(b, v)| (b.clone(), vec![0.0; v.len()]))
            .collect();
        for (b, v) in zeroed {
            t.set_entry(b, v);
        }
        t.rebuild_derived(1.0);
        let err = correct_tensor(&mut t, &MlftOptions::default()).unwrap_err();
        assert!(matches!(err, MlftError::VanishingMass { mass } if mass.abs() < 1e-12));
        assert!(err.to_string().contains("identity mass"));
    }

    #[test]
    fn parallel_error_matches_sequential_first_failure() {
        // Two vanishing-mass fragments: every thread count must surface
        // the error of the *lower-index* one, like the sequential loop.
        let mut c = Circuit::new(1);
        c.t(0).add_gate(qcir::Gate::I, &[0]);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let down = cut
            .fragments
            .iter()
            .find(|f| f.quantum_inputs.len() == 1)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let good = build_fragment_tensor(down, &eval, &TensorOptions::default(), &mut rng).unwrap();
        let mut bad = good.clone();
        let zeroed: Vec<(Bits, Vec<f64>)> = bad
            .iter()
            .map(|(b, v)| (b.clone(), vec![0.0; v.len()]))
            .collect();
        for (b, v) in zeroed {
            bad.set_entry(b, v);
        }
        bad.rebuild_derived(1.0);
        // Second failing fragment with a *distinct* (still vanishing)
        // mass, so returning the wrong fragment's error is detectable.
        let mut scaled = bad.clone();
        let (b0, mut v0) = {
            let (b, v) = scaled.iter().next().unwrap();
            (b.clone(), v.to_vec())
        };
        v0[0] = 1e-14;
        scaled.set_entry(b0, v0);
        scaled.rebuild_derived(1.0);
        let template = vec![good.clone(), bad, good.clone(), scaled, good];
        let seq_err = {
            let mut ts = template.clone();
            correct_tensors(&mut ts, &MlftOptions::default(), 1).unwrap_err()
        };
        for threads in [2usize, 8] {
            let mut ts = template.clone();
            let err = correct_tensors(&mut ts, &MlftOptions::default(), threads).unwrap_err();
            assert_eq!(err, seq_err, "error identity at {threads} threads");
        }
    }

    #[test]
    fn parallel_correction_bit_identical_to_sequential() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 250 },
            ..Default::default()
        };
        let baseline = tensors_for(&c, &eval, 17);
        let opts = MlftOptions {
            // Force the projection to fire often on this noisy data.
            negativity_tolerance: 1e-6,
            ..MlftOptions::default()
        };
        let mut seq = baseline.clone();
        let moved_seq = correct_tensors(&mut seq, &opts, 1).unwrap();
        for threads in [2usize, 8] {
            let mut par = baseline.clone();
            let moved_par = correct_tensors(&mut par, &opts, threads).unwrap();
            assert!(
                moved_seq.to_bits() == moved_par.to_bits(),
                "mlft_moved differs at {threads} threads: {moved_seq} vs {moved_par}"
            );
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.support_len(), p.support_len());
                for (b, v) in s.iter() {
                    for (i, &x) in v.iter().enumerate() {
                        assert!(
                            p.value(b, i) == x,
                            "corrected tensor differs at {b}, idx {i}, {threads} threads"
                        );
                    }
                }
            }
        }
    }

    /// The ordered-map-free correction is bit-identical — same support,
    /// same emission order, same coefficient and `moved` float bits — to
    /// the frozen `BTreeMap` reference at 1, 2, and 8 worker threads,
    /// with the projection forced to fire.
    #[test]
    fn correction_matches_btreemap_reference_bit_exact() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 220 },
            ..Default::default()
        };
        let baseline = tensors_for(&c, &eval, 31);
        let opts = MlftOptions {
            negativity_tolerance: 1e-6,
            ..MlftOptions::default()
        };
        let mut expect = baseline.clone();
        let mut moved_expect = 0.0;
        for t in expect.iter_mut() {
            moved_expect += reference_correct_btreemap(t, &opts).unwrap();
        }
        for threads in [1usize, 2, 8] {
            let mut got = baseline.clone();
            let moved = correct_tensors(&mut got, &opts, threads).unwrap();
            assert!(
                moved.to_bits() == moved_expect.to_bits(),
                "moved diverged at {threads} threads: {moved} vs {moved_expect}"
            );
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(g.support_len(), e.support_len());
                for ((gb, gv), (eb, ev)) in g.iter().zip(e.iter()) {
                    assert_eq!(gb, eb, "emission order at {threads} threads");
                    for (i, (x, y)) in gv.iter().zip(ev).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "corrected coeff at {gb}, idx {i}, {threads} threads"
                        );
                    }
                }
            }
        }
    }

    /// The reference path surfaces the same vanishing-mass error.
    #[test]
    fn reference_correction_surfaces_vanishing_mass() {
        let mut c = Circuit::new(1);
        c.t(0).add_gate(qcir::Gate::I, &[0]);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let down = cut
            .fragments
            .iter()
            .find(|f| f.quantum_inputs.len() == 1)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let eval = EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        };
        let mut t =
            build_fragment_tensor(down, &eval, &TensorOptions::default(), &mut rng).unwrap();
        let zeroed: Vec<(Bits, Vec<f64>)> = t
            .iter()
            .map(|(b, v)| (b.clone(), vec![0.0; v.len()]))
            .collect();
        for (b, v) in zeroed {
            t.set_entry(b, v);
        }
        t.rebuild_derived(1.0);
        let mut reference = t.clone();
        let e1 = correct_tensor(&mut t, &MlftOptions::default()).unwrap_err();
        let e2 = reference_correct_btreemap(&mut reference, &MlftOptions::default()).unwrap_err();
        assert_eq!(e1, e2);
    }

    #[test]
    fn single_rebuild_matches_former_double_rebuild() {
        // The folded normalization must reproduce the former
        // rebuild(1.0)-then-rebuild(1/mass) sequence bit for bit.
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 200 },
            ..Default::default()
        };
        for raw in tensors_for(&c, &eval, 23) {
            let mut fixed = raw.clone();
            correct_tensor(&mut fixed, &MlftOptions::default()).unwrap();
            // Former semantics, replayed by hand on the raw tensor with a
            // blanket projection disabled (max_cut_ends: 0 skips PSD, so
            // both paths reduce to pure normalization).
            let mut reference = raw.clone();
            reference.rebuild_derived(1.0);
            let mass = reference.total(0);
            assert!(mass > 1e-12);
            reference.rebuild_derived(1.0 / mass);
            let mut pure = raw.clone();
            correct_tensor(
                &mut pure,
                &MlftOptions {
                    max_cut_ends: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            for (b, v) in reference.iter() {
                for (i, &x) in v.iter().enumerate() {
                    assert!(
                        pure.value(b, i) == x,
                        "normalization drifted at {b}, idx {i}"
                    );
                }
            }
            let _ = fixed;
        }
    }
}
