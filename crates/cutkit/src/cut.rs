//! Cut placement and circuit fragmentation.
//!
//! The SuperSim cutter (paper §V-A) parses a near-Clifford circuit,
//! identifies the non-Clifford operations, and places wire cuts that
//! isolate them: every wire edge between a Clifford operation and a
//! non-Clifford operation is cut. Fragments are the connected components of
//! the operation graph under the remaining (uncut) wire edges, so Clifford
//! gates coalesce into large stabilizer-simulable fragments while each
//! non-Clifford island becomes a small exactly-simulable fragment.
//!
//! A merge pass can trade cuts for fragment size (the Fig. 2 caption's
//! "cut a non-Clifford gate from the middle" trade-off) to respect the
//! `4^k` reconstruction budget.

use qcir::Circuit;
use std::collections::HashMap;

/// A manually specified cut position: the wire of `qubit` is cut between
/// the operation at index `after_op` (which must act on that qubit) and
/// the next operation on the same wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CutPoint {
    /// The wire to cut.
    pub qubit: usize,
    /// Index (into `circuit.ops()`) of the operation immediately upstream
    /// of the cut.
    pub after_op: usize,
}

/// How the cutter chooses cut locations.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CutStrategy {
    /// No cutting: the whole circuit is one fragment.
    None,
    /// Cut every wire edge between Clifford and non-Clifford operations,
    /// then greedily merge fragments until at most `max_cuts` cuts remain.
    IsolateNonClifford {
        /// Upper bound on the number of cuts (reconstruction is `O(4^k)`).
        max_cuts: usize,
    },
    /// Cut exactly at the given positions (the general Peng-et-al. style
    /// cutting, independent of gate classes). Fragments are the connected
    /// components under the remaining wire edges.
    Manual(Vec<CutPoint>),
}

impl Default for CutStrategy {
    fn default() -> Self {
        CutStrategy::IsolateNonClifford { max_cuts: 10 }
    }
}

/// One fragment of a cut circuit: a standalone circuit over local qubits
/// plus the bookkeeping that classifies each local wire end (paper §V-B).
#[derive(Clone, Debug)]
pub struct Fragment {
    /// The fragment's own circuit over `num_local_qubits` wires.
    pub circuit: Circuit,
    /// Local qubits that are inputs of the original circuit (start in
    /// `|0⟩`; no extra operations needed).
    pub circuit_inputs: Vec<usize>,
    /// `(local qubit, cut id)` pairs: wire ends entering this fragment from
    /// a cut (downstream side — needs prepared states).
    pub quantum_inputs: Vec<(usize, usize)>,
    /// `(local qubit, original qubit)` pairs: outputs of the original
    /// circuit (measured in the computational basis).
    pub circuit_outputs: Vec<(usize, usize)>,
    /// `(local qubit, cut id)` pairs: wire ends leaving this fragment into
    /// a cut (upstream side — needs basis rotations before measurement).
    pub quantum_outputs: Vec<(usize, usize)>,
    /// Whether every operation in the fragment is Clifford (eligible for
    /// stabilizer simulation).
    pub is_clifford: bool,
}

impl Fragment {
    /// Number of local qubit wires.
    pub fn num_local_qubits(&self) -> usize {
        self.circuit.num_qubits()
    }

    /// Number of incident cuts (quantum inputs + quantum outputs).
    pub fn num_cut_ends(&self) -> usize {
        self.quantum_inputs.len() + self.quantum_outputs.len()
    }

    /// Number of fragment variants required for tomography:
    /// `4^inputs · 3^outputs`.
    pub fn num_variants(&self) -> usize {
        4usize.pow(self.quantum_inputs.len() as u32) * 3usize.pow(self.quantum_outputs.len() as u32)
    }
}

/// A circuit decomposed into fragments connected by cuts.
#[derive(Clone, Debug)]
pub struct CutCircuit {
    /// The fragments, in deterministic discovery order.
    pub fragments: Vec<Fragment>,
    /// Total number of cuts (each cut joins exactly one quantum output to
    /// one quantum input, possibly of the same fragment).
    pub num_cuts: usize,
    /// Width of the original circuit.
    pub original_qubits: usize,
}

impl CutCircuit {
    /// Sanity-checks the decomposition invariants; used by tests and
    /// debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn validate(&self) {
        let mut outs = vec![0usize; self.num_cuts];
        let mut ins = vec![0usize; self.num_cuts];
        let mut globals = Vec::new();
        for f in &self.fragments {
            for &(_, c) in &f.quantum_outputs {
                outs[c] += 1;
            }
            for &(_, c) in &f.quantum_inputs {
                ins[c] += 1;
            }
            for &(_, g) in &f.circuit_outputs {
                globals.push(g);
            }
            // Every local qubit appears exactly once as an input kind and
            // once as an output kind.
            let mut starts = vec![0; f.num_local_qubits()];
            let mut ends = vec![0; f.num_local_qubits()];
            for &q in &f.circuit_inputs {
                starts[q] += 1;
            }
            for &(q, _) in &f.quantum_inputs {
                starts[q] += 1;
            }
            for &(q, _) in &f.circuit_outputs {
                ends[q] += 1;
            }
            for &(q, _) in &f.quantum_outputs {
                ends[q] += 1;
            }
            assert!(starts.iter().all(|&c| c == 1), "each wire needs one start");
            assert!(ends.iter().all(|&c| c == 1), "each wire needs one end");
        }
        assert!(
            outs.iter().all(|&c| c == 1),
            "each cut needs one upstream end"
        );
        assert!(
            ins.iter().all(|&c| c == 1),
            "each cut needs one downstream end"
        );
        globals.sort_unstable();
        assert_eq!(
            globals,
            (0..self.original_qubits).collect::<Vec<_>>(),
            "every original qubit must be measured exactly once"
        );
    }
}

/// Error returned when a circuit cannot be cut within the configured
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutBudgetError {
    /// Cuts required after maximal merging.
    pub required: usize,
    /// The configured maximum.
    pub max_cuts: usize,
}

impl std::fmt::Display for CutBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuit requires {} cuts, exceeding the budget of {} (reconstruction is 4^k)",
            self.required, self.max_cuts
        )
    }
}

impl std::error::Error for CutBudgetError {}

/// Simple union-find over operation indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        // Iterative find with full path compression (wire-order unions can
        // create long parent chains on deep circuits).
        let mut root = i;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = i;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Cuts a circuit according to `strategy`.
///
/// # Errors
///
/// Returns [`CutBudgetError`] when isolating the non-Clifford operations
/// requires more cuts than the strategy's budget even after merging all
/// fragments that share a cut.
///
/// # Panics
///
/// With [`CutStrategy::Manual`], panics if a cut point references an
/// operation that does not act on the given qubit.
pub fn cut_circuit(circuit: &Circuit, strategy: CutStrategy) -> Result<CutCircuit, CutBudgetError> {
    match strategy {
        CutStrategy::None => Ok(single_fragment(circuit)),
        CutStrategy::IsolateNonClifford { max_cuts } => isolate(circuit, max_cuts),
        CutStrategy::Manual(points) => Ok(manual(circuit, &points)),
    }
}

/// Cuts exactly at the requested positions.
fn manual(circuit: &Circuit, points: &[CutPoint]) -> CutCircuit {
    let ops = circuit.ops();
    let n = circuit.num_qubits();
    if ops.is_empty() {
        return single_fragment(circuit);
    }
    let mut wires: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in ops.iter().enumerate() {
        for q in &op.qubits {
            wires[q.index()].push(i);
        }
    }
    let cut_set: std::collections::HashSet<(usize, usize)> = points
        .iter()
        .map(|p| {
            assert!(
                p.qubit < n && wires[p.qubit].contains(&p.after_op),
                "cut point {p:?} does not lie on the wire"
            );
            (p.qubit, p.after_op)
        })
        .collect();
    let mut uf = UnionFind::new(ops.len());
    for (q, wire) in wires.iter().enumerate() {
        for pair in wire.windows(2) {
            if !cut_set.contains(&(q, pair[0])) {
                uf.union(pair[0], pair[1]);
            }
        }
    }
    build_fragments(circuit, &wires, &mut uf).expect("manual fragmentation cannot fail")
}

/// Wraps the whole circuit as one fragment with no cuts.
fn single_fragment(circuit: &Circuit) -> CutCircuit {
    let n = circuit.num_qubits();
    let fragment = Fragment {
        circuit: circuit.clone(),
        circuit_inputs: (0..n).collect(),
        quantum_inputs: Vec::new(),
        circuit_outputs: (0..n).map(|q| (q, q)).collect(),
        quantum_outputs: Vec::new(),
        is_clifford: circuit.is_clifford(),
    };
    CutCircuit {
        fragments: vec![fragment],
        num_cuts: 0,
        original_qubits: n,
    }
}

fn isolate(circuit: &Circuit, max_cuts: usize) -> Result<CutCircuit, CutBudgetError> {
    let ops = circuit.ops();
    let n = circuit.num_qubits();
    if ops.is_empty() {
        return Ok(single_fragment(circuit));
    }

    // Wires: op indices per qubit in program order.
    let mut wires: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in ops.iter().enumerate() {
        for q in &op.qubits {
            wires[q.index()].push(i);
        }
    }

    // Initial components: union consecutive same-class ops on each wire.
    let class: Vec<bool> = ops.iter().map(|op| op.is_clifford()).collect();
    let mut uf = UnionFind::new(ops.len());
    for wire in &wires {
        for pair in wire.windows(2) {
            if class[pair[0]] == class[pair[1]] {
                uf.union(pair[0], pair[1]);
            }
        }
    }

    // Merge components until the number of crossing wire edges fits the
    // budget. Each crossing edge is one cut.
    loop {
        let cuts = count_cuts(&wires, &mut uf);
        if cuts <= max_cuts {
            break;
        }
        // Merge the component pair with the most crossing edges (removes
        // the most cuts per merge). Deterministic tie-break by root ids.
        let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
        for wire in &wires {
            for pair in wire.windows(2) {
                let (a, b) = (uf.find(pair[0]), uf.find(pair[1]));
                if a != b {
                    let key = (a.min(b), a.max(b));
                    *pair_counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        let Some((&(a, b), _)) = pair_counts
            .iter()
            .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse((a, b))))
        else {
            // No crossing edges left but cuts > max_cuts: impossible.
            break;
        };
        uf.union(a, b);
        if pair_counts.len() == 1 {
            // Everything merged into one component next iteration.
            let cuts = count_cuts(&wires, &mut uf);
            if cuts > max_cuts {
                return Err(CutBudgetError {
                    required: cuts,
                    max_cuts,
                });
            }
        }
    }

    build_fragments(circuit, &wires, &mut uf)
}

fn count_cuts(wires: &[Vec<usize>], uf: &mut UnionFind) -> usize {
    let mut cuts = 0;
    for wire in wires {
        for pair in wire.windows(2) {
            if uf.find(pair[0]) != uf.find(pair[1]) {
                cuts += 1;
            }
        }
    }
    cuts
}

/// The per-wire story of one fragment-local qubit.
struct Segment {
    component: usize,
    start_cut: Option<usize>, // None = circuit input
    end_cut: Option<usize>,   // None = circuit output
    global_qubit: usize,
}

fn build_fragments(
    circuit: &Circuit,
    wires: &[Vec<usize>],
    uf: &mut UnionFind,
) -> Result<CutCircuit, CutBudgetError> {
    let ops = circuit.ops();
    let n = circuit.num_qubits();

    // Deterministic component numbering by first op index.
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    let mut comp_class: Vec<bool> = Vec::new(); // is_clifford per component
    for i in 0..ops.len() {
        let root = uf.find(i);
        let next = comp_of_root.len();
        let comp = *comp_of_root.entry(root).or_insert(next);
        if comp == comp_class.len() {
            comp_class.push(true);
        }
        comp_class[comp] &= ops[i].is_clifford();
    }
    let idle_exists = wires.iter().any(|w| w.is_empty());
    let idle_comp = comp_of_root.len(); // component for idle wires, if any
    let num_components = comp_of_root.len() + usize::from(idle_exists);
    if idle_exists {
        comp_class.push(true);
    }

    // Build segments wire by wire, assigning cut ids at boundaries.
    let mut segments: Vec<Segment> = Vec::new();
    let mut cut_counter = 0usize;
    // seg_of_op[op][qubit] lookup via map keyed by (op, qubit).
    let mut seg_of: HashMap<(usize, usize), usize> = HashMap::new();
    for q in 0..n {
        if wires[q].is_empty() {
            segments.push(Segment {
                component: idle_comp,
                start_cut: None,
                end_cut: None,
                global_qubit: q,
            });
            continue;
        }
        let mut current: Vec<usize> = vec![wires[q][0]];
        let mut start_cut = None;
        for pair in wires[q].windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if uf.find(a) == uf.find(b) {
                current.push(b);
            } else {
                let cut = cut_counter;
                cut_counter += 1;
                let comp = comp_of_root[&uf.find(a)];
                let idx = segments.len();
                for &o in &current {
                    seg_of.insert((o, q), idx);
                }
                segments.push(Segment {
                    component: comp,
                    start_cut,
                    end_cut: Some(cut),
                    global_qubit: q,
                });
                start_cut = Some(cut);
                current = vec![b];
            }
        }
        let comp = comp_of_root[&uf.find(*current.last().unwrap())];
        let idx = segments.len();
        for &o in &current {
            seg_of.insert((o, q), idx);
        }
        segments.push(Segment {
            component: comp,
            start_cut,
            end_cut: None,
            global_qubit: q,
        });
    }

    // Assign local qubit numbers per component, in segment discovery order.
    let mut local_of_segment: Vec<usize> = vec![usize::MAX; segments.len()];
    let mut local_count: Vec<usize> = vec![0; num_components];
    for (s, seg) in segments.iter().enumerate() {
        local_of_segment[s] = local_count[seg.component];
        local_count[seg.component] += 1;
    }

    // Assemble fragment circuits in original op order.
    let mut frag_circuits: Vec<Circuit> = local_count.iter().map(|&c| Circuit::new(c)).collect();
    for (i, op) in ops.iter().enumerate() {
        let comp = comp_of_root[&uf.find(i)];
        let mut local_op = op.clone();
        for qb in &mut local_op.qubits {
            let seg = seg_of[&(i, qb.index())];
            *qb = qcir::Qubit(local_of_segment[seg]);
        }
        frag_circuits[comp].push(local_op);
    }

    // Fragment metadata from segments.
    let mut fragments: Vec<Fragment> = frag_circuits
        .into_iter()
        .enumerate()
        .map(|(comp, circuit)| Fragment {
            circuit,
            circuit_inputs: Vec::new(),
            quantum_inputs: Vec::new(),
            circuit_outputs: Vec::new(),
            quantum_outputs: Vec::new(),
            is_clifford: comp_class[comp],
        })
        .collect();
    for (s, seg) in segments.iter().enumerate() {
        let local = local_of_segment[s];
        let frag = &mut fragments[seg.component];
        match seg.start_cut {
            None => frag.circuit_inputs.push(local),
            Some(c) => frag.quantum_inputs.push((local, c)),
        }
        match seg.end_cut {
            None => frag.circuit_outputs.push((local, seg.global_qubit)),
            Some(c) => frag.quantum_outputs.push((local, c)),
        }
    }

    let cut = CutCircuit {
        fragments,
        num_cuts: cut_counter,
        original_qubits: n,
    };
    debug_assert!({
        cut.validate();
        true
    });
    Ok(cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_circuit_is_one_fragment_no_cuts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).s(2);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 0);
        assert_eq!(cut.fragments.len(), 1);
        assert!(cut.fragments[0].is_clifford);
        assert_eq!(cut.fragments[0].circuit.len(), 4);
    }

    #[test]
    fn single_t_between_cliffords_cuts_twice() {
        // H q0; T q0; H q0 — the T must be isolated by two cuts on wire 0.
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 2);
        assert_eq!(cut.fragments.len(), 3);
        let t_frag = cut
            .fragments
            .iter()
            .find(|f| !f.is_clifford)
            .expect("need a non-Clifford fragment");
        assert_eq!(t_frag.circuit.len(), 1);
        assert_eq!(t_frag.quantum_inputs.len(), 1);
        assert_eq!(t_frag.quantum_outputs.len(), 1);
        assert_eq!(t_frag.num_variants(), 12);
    }

    #[test]
    fn terminal_t_costs_one_cut() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 1);
        assert_eq!(cut.fragments.len(), 2);
        // Cut count obeys the paper's bound: ≤ 2 × (#non-Clifford gates).
        assert!(cut.num_cuts <= 2 * c.non_clifford_count());
    }

    #[test]
    fn clifford_regions_reconnect_around_t() {
        // Wire 0 goes C - T - C, but the two C's also touch wire 1, so they
        // are the *same* fragment and the fragment graph has a 2-cut loop
        // to the T fragment.
        let mut c = Circuit::new(2);
        c.cx(0, 1).t(0).cx(0, 1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 2);
        assert_eq!(cut.fragments.len(), 2);
        let cliff = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        // The Clifford fragment has 3 local wires: q1 plus two segments of q0.
        assert_eq!(cliff.num_local_qubits(), 3);
        assert_eq!(cliff.quantum_outputs.len(), 1);
        assert_eq!(cliff.quantum_inputs.len(), 1);
        assert_eq!(cliff.circuit_outputs.len(), 2);
    }

    #[test]
    fn idle_wires_become_a_clifford_fragment() {
        let mut c = Circuit::new(4);
        c.h(0).t(0); // qubits 1..3 idle
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        let idle = cut
            .fragments
            .iter()
            .find(|f| f.circuit.is_empty() && !f.circuit_outputs.is_empty())
            .expect("idle fragment");
        assert_eq!(idle.circuit_outputs.len(), 3);
        assert!(idle.is_clifford);
    }

    #[test]
    fn merge_pass_respects_budget() {
        // Alternating H/T on one wire needs many cuts; with a budget of 2
        // fragments must merge (possibly into one uncut circuit).
        let mut c = Circuit::new(1);
        for _ in 0..6 {
            c.h(0).t(0);
        }
        let cut = cut_circuit(&c, CutStrategy::IsolateNonClifford { max_cuts: 2 }).unwrap();
        cut.validate();
        assert!(cut.num_cuts <= 2);
        // All ops preserved across fragments.
        let total_ops: usize = cut.fragments.iter().map(|f| f.circuit.len()).sum();
        assert_eq!(total_ops, c.len());
    }

    #[test]
    fn strategy_none_never_cuts() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let cut = cut_circuit(&c, CutStrategy::None).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 0);
        assert_eq!(cut.fragments.len(), 1);
        assert!(!cut.fragments[0].is_clifford);
    }

    #[test]
    fn two_qubit_gate_keeps_wires_together() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).t(1).h(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        // T on wire 1 between CX and H: two cuts around it.
        assert_eq!(cut.num_cuts, 2);
        let total_ops: usize = cut.fragments.iter().map(|f| f.circuit.len()).sum();
        assert_eq!(total_ops, 5);
    }

    #[test]
    fn adjacent_non_cliffords_share_a_fragment() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 2, "T·T block isolated by two cuts");
        let non = cut.fragments.iter().find(|f| !f.is_clifford).unwrap();
        assert_eq!(non.circuit.len(), 2);
    }

    #[test]
    fn manual_cut_at_explicit_position() {
        // Cut the Bell pair between H and CX on wire 0, regardless of
        // gate classes.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cut = cut_circuit(
            &c,
            CutStrategy::Manual(vec![CutPoint {
                qubit: 0,
                after_op: 0,
            }]),
        )
        .unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 1);
        assert_eq!(cut.fragments.len(), 2);
        // Upstream fragment: just the H, one quantum output, no circuit
        // outputs on wire 0.
        let up = cut
            .fragments
            .iter()
            .find(|f| f.quantum_outputs.len() == 1)
            .unwrap();
        assert_eq!(up.circuit.len(), 1);
    }

    #[test]
    fn manual_cuts_can_split_clifford_circuits() {
        // The generic Peng-style use case: cut a wide Clifford circuit in
        // half even though no non-Clifford gate forces it.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let cut = cut_circuit(
            &c,
            CutStrategy::Manual(vec![CutPoint {
                qubit: 2,
                after_op: 2,
            }]),
        )
        .unwrap();
        cut.validate();
        assert_eq!(cut.num_cuts, 1);
        assert_eq!(cut.fragments.len(), 2);
        assert!(cut.fragments.iter().all(|f| f.is_clifford));
    }

    #[test]
    #[should_panic(expected = "does not lie on the wire")]
    fn manual_cut_off_wire_panics() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let _ = cut_circuit(
            &c,
            CutStrategy::Manual(vec![CutPoint {
                qubit: 1,
                after_op: 0, // op 0 (H) does not touch qubit 1
            }]),
        );
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(3);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.validate();
        assert_eq!(cut.fragments.len(), 1);
        assert_eq!(cut.num_cuts, 0);
    }
}
