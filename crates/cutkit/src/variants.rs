//! Fragment variants: preparation states and measurement bases.
//!
//! Each cut incident to a fragment multiplies the number of *variants* the
//! fragment must be executed in (paper §V-B): a quantum input is prepared
//! in each of the four tomographically complete states
//! `{|0⟩, |1⟩, |+⟩, |+i⟩}`, and a quantum output is measured in each of the
//! three Pauli bases `{X, Y, Z}`.

use crate::cut::Fragment;
use qcir::{Circuit, Gate, Operation, Qubit};

/// The four preparation states used at quantum inputs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PrepState {
    /// `|0⟩` — the `(I+Z)/2` state.
    Zero,
    /// `|1⟩` — the `(I−Z)/2` state.
    One,
    /// `|+⟩` — the `(I+X)/2` state.
    Plus,
    /// `|+i⟩` — the `(I+Y)/2` state.
    PlusI,
}

impl PrepState {
    /// All preparation states in index order.
    pub const ALL: [PrepState; 4] = [
        PrepState::Zero,
        PrepState::One,
        PrepState::Plus,
        PrepState::PlusI,
    ];

    /// Index of this state in [`PrepState::ALL`].
    pub fn index(self) -> usize {
        match self {
            PrepState::Zero => 0,
            PrepState::One => 1,
            PrepState::Plus => 2,
            PrepState::PlusI => 3,
        }
    }

    /// Gates that prepare this state from `|0⟩` on `qubit` (all Clifford,
    /// so Clifford fragments stay Clifford).
    pub fn prep_ops(self, qubit: usize) -> Vec<Operation> {
        let q = Qubit(qubit);
        match self {
            PrepState::Zero => vec![],
            PrepState::One => vec![Operation::gate(Gate::X, vec![q])],
            PrepState::Plus => vec![Operation::gate(Gate::H, vec![q])],
            PrepState::PlusI => vec![
                Operation::gate(Gate::H, vec![q]),
                Operation::gate(Gate::S, vec![q]),
            ],
        }
    }
}

/// The three measurement bases used at quantum outputs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MeasBasis {
    /// Pauli-X basis.
    X,
    /// Pauli-Y basis.
    Y,
    /// Pauli-Z (computational) basis.
    Z,
}

impl MeasBasis {
    /// All bases in index order.
    pub const ALL: [MeasBasis; 3] = [MeasBasis::X, MeasBasis::Y, MeasBasis::Z];

    /// Index of this basis in [`MeasBasis::ALL`].
    pub fn index(self) -> usize {
        match self {
            MeasBasis::X => 0,
            MeasBasis::Y => 1,
            MeasBasis::Z => 2,
        }
    }

    /// The Pauli-index (in `I=0,X=1,Y=2,Z=3` order) this basis estimates.
    pub fn pauli_digit(self) -> usize {
        match self {
            MeasBasis::X => 1,
            MeasBasis::Y => 2,
            MeasBasis::Z => 3,
        }
    }

    /// Gates rotating this basis to the computational basis on `qubit`
    /// (applied just before measurement; all Clifford).
    pub fn rotation_ops(self, qubit: usize) -> Vec<Operation> {
        let q = Qubit(qubit);
        match self {
            MeasBasis::X => vec![Operation::gate(Gate::H, vec![q])],
            MeasBasis::Y => vec![
                Operation::gate(Gate::Sdg, vec![q]),
                Operation::gate(Gate::H, vec![q]),
            ],
            MeasBasis::Z => vec![],
        }
    }
}

/// A fixed choice of preparation states and measurement bases for one
/// fragment execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// One preparation per quantum input, in `fragment.quantum_inputs`
    /// order.
    pub preps: Vec<PrepState>,
    /// One basis per quantum output, in `fragment.quantum_outputs` order.
    pub bases: Vec<MeasBasis>,
}

impl Variant {
    /// The composite prep index in `0..4^{inputs}` (input 0 is the
    /// most-significant base-4 digit).
    pub fn prep_index(&self) -> usize {
        self.preps.iter().fold(0, |acc, p| acc * 4 + p.index())
    }

    /// The composite basis index in `0..3^{outputs}`.
    pub fn basis_index(&self) -> usize {
        self.bases.iter().fold(0, |acc, b| acc * 3 + b.index())
    }
}

/// Enumerates every variant of a fragment: `4^inputs · 3^outputs` entries,
/// prep-major then basis, both in most-significant-first digit order.
pub fn enumerate_variants(fragment: &Fragment) -> Vec<Variant> {
    let qi = fragment.quantum_inputs.len();
    let qo = fragment.quantum_outputs.len();
    let np = 4usize.pow(qi as u32);
    let nb = 3usize.pow(qo as u32);
    let mut out = Vec::with_capacity(np * nb);
    for s in 0..np {
        for b in 0..nb {
            let mut preps = Vec::with_capacity(qi);
            let mut rem = s;
            for k in (0..qi).rev() {
                let pw = 4usize.pow(k as u32);
                preps.push(PrepState::ALL[rem / pw]);
                rem %= pw;
            }
            let mut bases = Vec::with_capacity(qo);
            let mut rem = b;
            for k in (0..qo).rev() {
                let pw = 3usize.pow(k as u32);
                bases.push(MeasBasis::ALL[rem / pw]);
                rem %= pw;
            }
            let v = Variant { preps, bases };
            debug_assert_eq!(v.prep_index(), s);
            debug_assert_eq!(v.basis_index(), b);
            out.push(v);
        }
    }
    out
}

/// Builds the executable circuit of a fragment variant: preparation gates,
/// the fragment body, then measurement-basis rotations.
pub fn variant_circuit(fragment: &Fragment, variant: &Variant) -> Circuit {
    assert_eq!(
        variant.preps.len(),
        fragment.quantum_inputs.len(),
        "prep count mismatch"
    );
    assert_eq!(
        variant.bases.len(),
        fragment.quantum_outputs.len(),
        "basis count mismatch"
    );
    let mut c = Circuit::new(fragment.num_local_qubits());
    for (&(q, _), prep) in fragment.quantum_inputs.iter().zip(&variant.preps) {
        for op in prep.prep_ops(q) {
            c.push(op);
        }
    }
    c.append(&fragment.circuit);
    for (&(q, _), basis) in fragment.quantum_outputs.iter().zip(&variant.bases) {
        for op in basis.rotation_ops(q) {
            c.push(op);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};

    fn t_fragment() -> Fragment {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        cut.fragments
            .into_iter()
            .find(|f| !f.is_clifford)
            .expect("t fragment")
    }

    #[test]
    fn variant_count_matches_formula() {
        let f = t_fragment();
        let variants = enumerate_variants(&f);
        assert_eq!(variants.len(), 12); // 4^1 · 3^1
                                        // All distinct.
        for i in 0..variants.len() {
            for j in (i + 1)..variants.len() {
                assert_ne!(variants[i], variants[j]);
            }
        }
    }

    #[test]
    fn indices_roundtrip() {
        let f = t_fragment();
        for v in enumerate_variants(&f) {
            assert!(v.prep_index() < 4);
            assert!(v.basis_index() < 3);
        }
    }

    #[test]
    fn prep_ops_are_clifford() {
        for p in PrepState::ALL {
            for op in p.prep_ops(0) {
                assert!(op.is_clifford(), "{p:?} prep must be Clifford");
            }
        }
        for b in MeasBasis::ALL {
            for op in b.rotation_ops(0) {
                assert!(op.is_clifford(), "{b:?} rotation must be Clifford");
            }
        }
    }

    #[test]
    fn variant_circuit_shape() {
        let f = t_fragment();
        let v = Variant {
            preps: vec![PrepState::PlusI],
            bases: vec![MeasBasis::Y],
        };
        let c = variant_circuit(&f, &v);
        // 2 prep ops (H, S) + 1 body op (T) + 2 rotation ops (S†, H).
        assert_eq!(c.len(), 5);
        assert_eq!(c.ops()[0].as_gate(), Some(Gate::H));
        assert_eq!(c.ops()[1].as_gate(), Some(Gate::S));
        assert_eq!(c.ops()[2].as_gate(), Some(Gate::T));
        assert_eq!(c.ops()[3].as_gate(), Some(Gate::Sdg));
        assert_eq!(c.ops()[4].as_gate(), Some(Gate::H));
    }

    #[test]
    fn clifford_fragment_variants_stay_clifford() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let cliff = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        for v in enumerate_variants(cliff) {
            assert!(variant_circuit(cliff, &v).is_clifford());
        }
    }

    #[test]
    fn no_cut_fragment_has_single_trivial_variant() {
        let mut c = Circuit::new(1);
        c.h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let f = &cut.fragments[0];
        let vs = enumerate_variants(f);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].preps.is_empty() && vs[0].bases.is_empty());
        assert_eq!(variant_circuit(f, &vs[0]).len(), 1);
    }
}
