//! Fragment tensors: from tomographic variant data to Pauli coefficients.
//!
//! For a fragment with `qi` quantum inputs and `qo` quantum outputs, the
//! fragment tensor holds, for every observed circuit-output bitstring `b`,
//! the coefficients
//!
//! ```text
//! T[b, P_in, P_out] = Tr[ P_out · E_b(P_in) ] / 2^qi
//! ```
//!
//! where `E_b` is the (subnormalized) channel from the quantum inputs to
//! the quantum outputs conditioned on observing `b`. These are exactly the
//! objects contracted by the distribution builder: for any set of cuts,
//! `p(b) = Σ_κ Π_f T_f[b_f, κ_f]` with one Pauli index per cut.
//!
//! Estimation follows maximum-likelihood fragment tomography's data
//! collection: quantum outputs are measured in the three Pauli bases;
//! quantum inputs are prepared in `{|0⟩,|1⟩,|+⟩,|+i⟩}` and converted to the
//! Pauli basis with the linear map
//!
//! ```text
//! T[I] = (p₀+p₁)/2    T[X] = p₊ − T[I]
//! T[Z] = (p₀−p₁)/2    T[Y] = pᵢ − T[I]
//! ```

use crate::cut::Fragment;
use crate::evaluate::{evaluate_variant, EvalError, EvalMode, EvalOptions};
use crate::variants::enumerate_variants;
use qcir::Bits;
use rand::Rng;
use std::collections::BTreeMap;

/// Single-qubit conversion from preparation-state probabilities (columns:
/// `|0⟩, |1⟩, |+⟩, |+i⟩`) to Pauli coefficients (rows: `I, X, Y, Z`).
pub const PREP_TO_PAULI: [[f64; 4]; 4] = [
    [0.5, 0.5, 0.0, 0.0],
    [-0.5, -0.5, 1.0, 0.0],
    [-0.5, -0.5, 0.0, 1.0],
    [0.5, -0.5, 0.0, 0.0],
];

/// Options controlling tensor construction.
#[derive(Copy, Clone, Debug)]
pub struct TensorOptions {
    /// Snap Clifford-fragment conditional expectations to `{-1, 0, +1}`
    /// (paper §IX, optimization 1 — valid because stabilizer states have
    /// no other Pauli expectation values).
    pub clifford_snap: bool,
}

impl Default for TensorOptions {
    fn default() -> Self {
        TensorOptions {
            clifford_snap: true,
        }
    }
}

/// The tomographic tensor of one fragment.
#[derive(Clone, Debug)]
pub struct FragmentTensor {
    qi: usize,
    qo: usize,
    /// Cut ids per input axis (most-significant digit first).
    input_cuts: Vec<usize>,
    /// Cut ids per output axis.
    output_cuts: Vec<usize>,
    /// Original-circuit qubit for each circuit-output bit of `b`.
    co_global: Vec<usize>,
    /// `b → dense coefficient vector` of length `4^(qi+qo)`.
    entries: BTreeMap<Bits, Vec<f64>>,
    /// `Σ_b entries[b]`, per Pauli index.
    totals: Vec<f64>,
    /// `max_b |entries[b]|`, per Pauli index (sparse-contraction pruning:
    /// a zero here means the whole slice vanishes, exactly for stabilizer
    /// fragments).
    slice_max: Vec<f64>,
    /// Per circuit-output bit and value: `Σ_{b: b[bit]=v} entries[b]`.
    marginals: Vec<[Vec<f64>; 2]>,
}

impl FragmentTensor {
    /// Number of quantum inputs.
    pub fn num_inputs(&self) -> usize {
        self.qi
    }

    /// Number of quantum outputs.
    pub fn num_outputs(&self) -> usize {
        self.qo
    }

    /// Length of the dense Pauli-coefficient vectors: `4^(qi+qo)`.
    pub fn pauli_dim(&self) -> usize {
        1 << (2 * (self.qi + self.qo))
    }

    /// Cut ids of the input axes (most-significant first).
    pub fn input_cuts(&self) -> &[usize] {
        &self.input_cuts
    }

    /// Cut ids of the output axes.
    pub fn output_cuts(&self) -> &[usize] {
        &self.output_cuts
    }

    /// Original-circuit qubit indices of the circuit-output bits.
    pub fn output_globals(&self) -> &[usize] {
        &self.co_global
    }

    /// Number of observed circuit-output bitstrings.
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over `(b, coefficients)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, &Vec<f64>)> + '_ {
        self.entries.iter()
    }

    /// Coefficient `T[b, idx]`, zero when `b` was never observed.
    pub fn value(&self, b: &Bits, idx: usize) -> f64 {
        self.entries.get(b).map_or(0.0, |v| v[idx])
    }

    /// `Σ_b T[b, idx]`.
    pub fn total(&self, idx: usize) -> f64 {
        self.totals[idx]
    }

    /// `Σ_{b: b[bit]=v} T[b, idx]`.
    pub fn marginal(&self, bit: usize, v: bool, idx: usize) -> f64 {
        self.marginals[bit][v as usize][idx]
    }

    /// `max_b |T[b, idx]|` — zero exactly when the whole Pauli slice
    /// vanishes.
    pub fn slice_max_abs(&self, idx: usize) -> f64 {
        self.slice_max[idx]
    }

    /// The composite Pauli index for a cut assignment: `digit(cut)` is the
    /// Pauli on that cut (`I=0, X=1, Y=2, Z=3`).
    pub fn pauli_index(&self, digit_of_cut: impl Fn(usize) -> usize) -> usize {
        let mut idx = 0;
        for &c in &self.input_cuts {
            idx = idx * 4 + digit_of_cut(c);
        }
        for &c in &self.output_cuts {
            idx = idx * 4 + digit_of_cut(c);
        }
        idx
    }

    /// Replaces the coefficients of an observed `b` (used by the MLFT
    /// correction) without touching derived sums; call
    /// [`FragmentTensor::rebuild_derived`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from [`FragmentTensor::pauli_dim`].
    pub fn set_entry(&mut self, b: Bits, coeffs: Vec<f64>) {
        assert_eq!(coeffs.len(), self.pauli_dim(), "coefficient length mismatch");
        self.entries.insert(b, coeffs);
    }

    /// Scales every coefficient by `scale` and recomputes totals and
    /// marginals.
    pub fn rebuild_derived(&mut self, scale: f64) {
        let dim = self.pauli_dim();
        let n_out = self.co_global.len();
        let mut totals = vec![0.0; dim];
        let mut slice_max = vec![0.0f64; dim];
        let mut marginals = vec![[vec![0.0; dim], vec![0.0; dim]]; n_out];
        for (b, v) in self.entries.iter_mut() {
            for x in v.iter_mut() {
                *x *= scale;
            }
            for (i, &x) in v.iter().enumerate() {
                totals[i] += x;
                slice_max[i] = slice_max[i].max(x.abs());
            }
            for bit in 0..n_out {
                let side = b.get(bit) as usize;
                for (i, &x) in v.iter().enumerate() {
                    marginals[bit][side][i] += x;
                }
            }
        }
        self.totals = totals;
        self.slice_max = slice_max;
        self.marginals = marginals;
    }

    /// Pauli indices whose slice is not identically zero — the §IX
    /// "fewer stitching calculations" optimization enumerates only these.
    pub fn nonzero_indices(&self, tol: f64) -> Vec<usize> {
        (0..self.pauli_dim())
            .filter(|&i| self.slice_max[i] > tol)
            .collect()
    }
}

/// Builds the tomographic tensor of a fragment by evaluating all of its
/// variants.
///
/// # Errors
///
/// Propagates [`EvalError`] from fragment evaluation.
pub fn build_fragment_tensor(
    fragment: &Fragment,
    eval: &EvalOptions,
    opts: &TensorOptions,
    rng: &mut impl Rng,
) -> Result<FragmentTensor, EvalError> {
    let base_seed: u64 = rng.random();
    build_fragment_tensor_threaded(fragment, eval, opts, base_seed, 1)
}

/// Derives the RNG for one variant from the fragment's base seed.
fn variant_rng(base_seed: u64, variant_index: usize) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        base_seed ^ (variant_index as u64 + 1).wrapping_mul(0xD1B54A32D192ED03),
    )
}

/// Accumulates one variant's outcome data into the prep-indexed tensor
/// accumulator `M[b][s·4^qo + po]`.
#[allow(clippy::too_many_arguments)]
fn accumulate_variant(
    m: &mut BTreeMap<Bits, Vec<f64>>,
    data: Vec<(Bits, f64)>,
    variant: &crate::variants::Variant,
    co_local: &[usize],
    qo_local: &[usize],
    qo: usize,
    dim: usize,
    inv3: &[f64],
) {
    let pow4_qo = 1usize << (2 * qo);
    let s = variant.prep_index();
    let basis_digits: Vec<usize> = variant.bases.iter().map(|b| b.pauli_digit()).collect();
    for (bits, p) in data {
        let b = bits.extract(co_local);
        let mv = m.entry(b).or_insert_with(|| vec![0.0; dim]);
        let mbits: Vec<bool> = qo_local.iter().map(|&q| bits.get(q)).collect();
        // Each subset of quantum outputs marks positions carrying the
        // variant's basis Pauli; the rest are identity.
        for subset in 0..(1usize << qo) {
            let mut po = 0usize;
            let mut sign = 1.0;
            for j in 0..qo {
                let active = (subset >> (qo - 1 - j)) & 1 == 1;
                po = po * 4 + if active { basis_digits[j] } else { 0 };
                if active && mbits[j] {
                    sign = -sign;
                }
            }
            let t = qo - subset.count_ones() as usize;
            mv[s * pow4_qo + po] += p * sign * inv3[t];
        }
    }
}

/// Builds the tomographic tensor of a fragment, evaluating variants on up
/// to `threads` worker threads (the paper's §X parallelization of
/// per-variant simulation). Deterministic for a given `base_seed`
/// regardless of thread count.
///
/// # Errors
///
/// Propagates [`EvalError`] from fragment evaluation.
pub fn build_fragment_tensor_threaded(
    fragment: &Fragment,
    eval: &EvalOptions,
    opts: &TensorOptions,
    base_seed: u64,
    threads: usize,
) -> Result<FragmentTensor, EvalError> {
    let qi = fragment.quantum_inputs.len();
    let qo = fragment.quantum_outputs.len();
    let dim = 1usize << (2 * (qi + qo));
    let co_local: Vec<usize> = fragment.circuit_outputs.iter().map(|&(l, _)| l).collect();
    let co_global: Vec<usize> = fragment.circuit_outputs.iter().map(|&(_, g)| g).collect();
    let qo_local: Vec<usize> = fragment.quantum_outputs.iter().map(|&(l, _)| l).collect();
    let pow4_qo = 1usize << (2 * qo);

    // 1/3^t weights for averaging the 3^t basis variants compatible with a
    // Pauli pattern that has t identity digits.
    let inv3: Vec<f64> = (0..=qo).map(|t| 3f64.powi(-(t as i32))).collect();

    let variants = enumerate_variants(fragment);
    let threads = threads.clamp(1, variants.len().max(1));

    // Intermediate accumulator M[b][s·4^qo + po]: prep-state-indexed.
    let mut m: BTreeMap<Bits, Vec<f64>> = BTreeMap::new();
    if threads <= 1 {
        for (vi, variant) in variants.iter().enumerate() {
            let mut rng = variant_rng(base_seed, vi);
            let data = evaluate_variant(fragment, variant, eval, &mut rng)?;
            accumulate_variant(&mut m, data, variant, &co_local, &qo_local, qo, dim, &inv3);
        }
    } else {
        let chunk = variants.len().div_ceil(threads);
        let partials: Vec<Result<BTreeMap<Bits, Vec<f64>>, EvalError>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (ci, slice) in variants.chunks(chunk).enumerate() {
                    let co_local = &co_local;
                    let qo_local = &qo_local;
                    let inv3 = &inv3;
                    handles.push(scope.spawn(move || {
                        let mut local: BTreeMap<Bits, Vec<f64>> = BTreeMap::new();
                        for (oi, variant) in slice.iter().enumerate() {
                            let vi = ci * chunk + oi;
                            let mut rng = variant_rng(base_seed, vi);
                            let data = evaluate_variant(fragment, variant, eval, &mut rng)?;
                            accumulate_variant(
                                &mut local, data, variant, co_local, qo_local, qo, dim, inv3,
                            );
                        }
                        Ok(local)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("variant worker panicked"))
                    .collect()
            });
        for partial in partials {
            for (b, v) in partial? {
                match m.entry(b) {
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        for (a, x) in e.get_mut().iter_mut().zip(&v) {
                            *a += x;
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
    }

    // Optional Clifford snap: conditional expectations of stabilizer states
    // are exactly -1, 0, or +1. Noisy fragments prepare *mixed* states with
    // fractional expectations, so the snap must not touch them.
    let snapped = opts.clifford_snap
        && fragment.is_clifford
        && !fragment.circuit.has_noise()
        && matches!(eval.mode, EvalMode::Sampled { .. });
    if snapped {
        for v in m.values_mut() {
            for s in 0..(1usize << (2 * qi)) {
                let norm = v[s * pow4_qo];
                if norm.abs() < 1e-12 {
                    continue;
                }
                for po in 1..pow4_qo {
                    let r = v[s * pow4_qo + po] / norm;
                    let snap = r.round().clamp(-1.0, 1.0);
                    v[s * pow4_qo + po] = snap * norm;
                }
            }
        }
    }

    // Convert each input axis from preparation-state to Pauli coordinates.
    for v in m.values_mut() {
        for axis in 0..qi {
            let stride = (1usize << (2 * (qi - 1 - axis))) * pow4_qo;
            transform_axis(v, stride, &PREP_TO_PAULI);
        }
    }

    let mut tensor = FragmentTensor {
        qi,
        qo,
        input_cuts: fragment.quantum_inputs.iter().map(|&(_, c)| c).collect(),
        output_cuts: fragment.quantum_outputs.iter().map(|&(_, c)| c).collect(),
        co_global,
        entries: m,
        totals: Vec::new(),
        slice_max: Vec::new(),
        marginals: Vec::new(),
    };
    tensor.rebuild_derived(1.0);
    Ok(tensor)
}

/// In-place contraction of one base-4 axis (identified by its stride) with
/// a 4×4 matrix: `new[digit=r] = Σ_c mat[r][c]·old[digit=c]`.
fn transform_axis(v: &mut [f64], stride: usize, mat: &[[f64; 4]; 4]) {
    let len = v.len();
    let mut i = 0;
    while i < len {
        // `i` iterates over positions whose axis digit is 0.
        let old = [v[i], v[i + stride], v[i + 2 * stride], v[i + 3 * stride]];
        for (r, row) in mat.iter().enumerate() {
            let mut acc = 0.0;
            for (c, &val) in old.iter().enumerate() {
                acc += row[c] * val;
            }
            v[i + r * stride] = acc;
        }
        // Advance to the next digit-0 position.
        i += 1;
        if i % stride == 0 {
            i += 3 * stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn exact_opts() -> EvalOptions {
        EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        }
    }

    #[test]
    fn axis_transform_identity() {
        let id = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let mut v: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let orig = v.clone();
        transform_axis(&mut v, 4, &id);
        transform_axis(&mut v, 1, &id);
        assert_eq!(v, orig);
    }

    #[test]
    fn axis_transform_permutation() {
        // Swap digits 0<->1 on the stride-1 axis of a 2-axis tensor.
        let swap01 = [
            [0.0, 1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let mut v: Vec<f64> = (0..16).map(|x| x as f64).collect();
        transform_axis(&mut v, 1, &swap01);
        for hi in 0..4 {
            assert_eq!(v[hi * 4], (hi * 4 + 1) as f64);
            assert_eq!(v[hi * 4 + 1], (hi * 4) as f64);
            assert_eq!(v[hi * 4 + 2], (hi * 4 + 2) as f64);
        }
    }

    /// Upstream |0>-state fragment: T[∅, I]=1, T[∅, Z]=1, X=Y=0.
    #[test]
    fn upstream_zero_state_tensor() {
        // Circuit: single wire ending in a cut: "I q0 ; T q0" cut before T.
        let mut c = Circuit::new(1);
        c.add_gate(qcir::Gate::I, &[0]).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 1)
            .expect("upstream fragment");
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        assert!((t.value(&b, 0) - 1.0).abs() < 1e-12, "I component");
        assert!((t.value(&b, 3) - 1.0).abs() < 1e-12, "Z component");
        assert!(t.value(&b, 1).abs() < 1e-12, "X component");
        assert!(t.value(&b, 2).abs() < 1e-12, "Y component");
    }

    /// Upstream |+>-state fragment: T[∅, X] = 1.
    #[test]
    fn upstream_plus_state_tensor() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 1)
            .unwrap();
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        assert!((t.value(&b, 0) - 1.0).abs() < 1e-12);
        assert!((t.value(&b, 1) - 1.0).abs() < 1e-12, "X component of |+>");
        assert!(t.value(&b, 3).abs() < 1e-12, "Z component of |+>");
    }

    /// Downstream identity fragment: measuring the prepared state directly.
    #[test]
    fn downstream_identity_tensor() {
        let mut c = Circuit::new(1);
        c.t(0).add_gate(qcir::Gate::I, &[0]);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let down = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_inputs.len() == 1)
            .expect("downstream fragment");
        let t = build_fragment_tensor(down, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b0 = Bits::from_u64(0, 1);
        let b1 = Bits::from_u64(1, 1);
        // T[0,I]=1/2, T[0,Z]=1/2, T[1,I]=1/2, T[1,Z]=-1/2, X=Y=0.
        assert!((t.value(&b0, 0) - 0.5).abs() < 1e-12);
        assert!((t.value(&b0, 3) - 0.5).abs() < 1e-12);
        assert!((t.value(&b1, 0) - 0.5).abs() < 1e-12);
        assert!((t.value(&b1, 3) + 0.5).abs() < 1e-12);
        assert!(t.value(&b0, 1).abs() < 1e-12);
        assert!(t.value(&b1, 2).abs() < 1e-12);
        // Trace preservation: Σ_b T[b, P≠I] = 0, Σ_b T[b,I] = 1.
        assert!((t.total(0) - 1.0).abs() < 1e-12);
        for idx in 1..3 {
            assert!(t.total(idx).abs() < 1e-12);
        }
    }

    /// Middle fragment (T gate): verify against analytic values.
    #[test]
    fn middle_t_gate_tensor() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let tf = cut.fragments.iter().find(|f| !f.is_clifford).unwrap();
        let t = build_fragment_tensor(tf, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        // T[P_in, P_out] = Tr[P_out T P_in T†]/2:
        //   I→I: 1, Z→Z: 1, X→X: cos(π/4), X→Y: sin(π/4),
        //   Y→Y: cos(π/4), Y→X: -sin(π/4).
        let c45 = std::f64::consts::FRAC_PI_4.cos();
        let idx = |pi: usize, po: usize| pi * 4 + po;
        assert!((t.value(&b, idx(0, 0)) - 1.0).abs() < 1e-12, "I->I");
        assert!((t.value(&b, idx(3, 3)) - 1.0).abs() < 1e-12, "Z->Z");
        assert!((t.value(&b, idx(1, 1)) - c45).abs() < 1e-12, "X->X");
        assert!((t.value(&b, idx(1, 2)) - c45).abs() < 1e-12, "X->Y");
        assert!((t.value(&b, idx(2, 2)) - c45).abs() < 1e-12, "Y->Y");
        assert!((t.value(&b, idx(2, 1)) + c45).abs() < 1e-12, "Y->X");
        assert!(t.value(&b, idx(0, 3)).abs() < 1e-12, "I->Z");
        assert!(t.value(&b, idx(1, 3)).abs() < 1e-12, "X->Z");
    }

    #[test]
    fn clifford_fragment_has_sparse_pauli_support() {
        // §IX optimization 2: stabilizer states have mostly-zero Pauli
        // coefficients. A GHZ-producing upstream fragment over 2 cut qubits
        // has at most 1/4 of coefficients non-zero... here just check that
        // zeros exist in abundance.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).t(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 2)
            .expect("two-cut upstream fragment");
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let nonzero = t.nonzero_indices(1e-9).len();
        assert!(nonzero <= 4, "Bell-pair upstream should have ≤4 nonzero Paulis, got {nonzero}");
    }

    #[test]
    fn threaded_build_matches_sequential() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).t(1).cx(0, 1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 500 },
            ..Default::default()
        };
        for f in &cut.fragments {
            let seq =
                build_fragment_tensor_threaded(f, &eval, &TensorOptions::default(), 99, 1)
                    .unwrap();
            let par =
                build_fragment_tensor_threaded(f, &eval, &TensorOptions::default(), 99, 4)
                    .unwrap();
            assert_eq!(seq.support_len(), par.support_len());
            for (b, v) in seq.iter() {
                for (i, &x) in v.iter().enumerate() {
                    assert!(
                        (par.value(b, i) - x).abs() < 1e-12,
                        "thread count changed results at {b}, idx {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn snapping_restores_exact_values_from_samples() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 200 },
            ..Default::default()
        };
        let snapped = build_fragment_tensor(
            up,
            &eval,
            &TensorOptions {
                clifford_snap: true,
            },
            &mut rng(),
        )
        .unwrap();
        let b = Bits::zeros(0);
        // With snapping, 200 shots recover the exact <X>=1, <Z>=0 values.
        assert!((snapped.value(&b, 1) - 1.0).abs() < 1e-12);
        assert!(snapped.value(&b, 3).abs() < 1e-12);
    }
}
