//! Fragment tensors: from tomographic variant data to Pauli coefficients.
//!
//! For a fragment with `qi` quantum inputs and `qo` quantum outputs, the
//! fragment tensor holds, for every observed circuit-output bitstring `b`,
//! the coefficients
//!
//! ```text
//! T[b, P_in, P_out] = Tr[ P_out · E_b(P_in) ] / 2^qi
//! ```
//!
//! where `E_b` is the (subnormalized) channel from the quantum inputs to
//! the quantum outputs conditioned on observing `b`. These are exactly the
//! objects contracted by the distribution builder: for any set of cuts,
//! `p(b) = Σ_κ Π_f T_f[b_f, κ_f]` with one Pauli index per cut.
//!
//! Estimation follows maximum-likelihood fragment tomography's data
//! collection: quantum outputs are measured in the three Pauli bases;
//! quantum inputs are prepared in `{|0⟩,|1⟩,|+⟩,|+i⟩}` and converted to the
//! Pauli basis with the linear map
//!
//! ```text
//! T[I] = (p₀+p₁)/2    T[X] = p₊ − T[I]
//! T[Z] = (p₀−p₁)/2    T[Y] = pᵢ − T[I]
//! ```
//!
//! # Interned accumulation layout
//!
//! [`FragmentTensor`] and the evaluation-stage accumulators key outcomes
//! by dense interned ids ([`metrics::InternPool`]) instead of the former
//! `BTreeMap<Bits, Vec<f64>>`: each distinct outcome bitstring is cloned
//! exactly once (on first sight) and mapped to a `u32` id, and every
//! coefficient vector lives at `coeffs[id·dim .. (id+1)·dim]` inside one
//! flat buffer. Per-shot accumulation, variant folds, and chunk merges are
//! therefore id-addressed vector adds — `O(1)` per touch — rather than
//! ordered-map walks paying a key comparison per level and a key clone per
//! insertion. One pool is shared per fragment: the accumulator that
//! collects a fragment's variant data hands its pool and buffer to the
//! finished [`FragmentTensor`] without copying.
//!
//! # Bit-identity and emission order
//!
//! Id assignment order is first-seen and thus schedule-dependent; the
//! tensor's **API boundary is ordered**. Every read path that can feed
//! float accumulation downstream — [`FragmentTensor::iter`], the derived
//! sums rebuilt by [`FragmentTensor::rebuild_derived`] (totals, slice
//! maxima, per-bit marginals) — visits outcomes in lexicographic [`Bits`]
//! order, exactly the order the former ordered map iterated in. Combined
//! with the fixed chunk decomposition of [`evaluate_fragment_tensors`]
//! (variant folds in variant order, chunk merges in chunk order, first
//! contribution per outcome moved rather than added onto zeros), results
//! are **bit-identical to the pre-intern implementation and identical for
//! any thread count**. The frozen reference path
//! ([`reference_evaluate_btreemap`]) keeps the old `BTreeMap` pipeline
//! alive for parity tests and the `fragment_eval` benchmark series.

use crate::cut::Fragment;
use crate::evaluate::{
    evaluate_variant, evaluate_variant_into, EvalError, EvalMode, EvalOptions, EvalScratch,
};
use crate::variants::{enumerate_variants, Variant};
use metrics::InternPool;
use qcir::{Bits, IndexPlan};
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Single-qubit conversion from preparation-state probabilities (columns:
/// `|0⟩, |1⟩, |+⟩, |+i⟩`) to Pauli coefficients (rows: `I, X, Y, Z`).
pub const PREP_TO_PAULI: [[f64; 4]; 4] = [
    [0.5, 0.5, 0.0, 0.0],
    [-0.5, -0.5, 1.0, 0.0],
    [-0.5, -0.5, 0.0, 1.0],
    [0.5, -0.5, 0.0, 0.0],
];

/// Options controlling tensor construction.
#[derive(Copy, Clone, Debug)]
pub struct TensorOptions {
    /// Snap Clifford-fragment conditional expectations to `{-1, 0, +1}`
    /// (paper §IX, optimization 1 — valid because stabilizer states have
    /// no other Pauli expectation values).
    pub clifford_snap: bool,
}

impl Default for TensorOptions {
    fn default() -> Self {
        TensorOptions {
            clifford_snap: true,
        }
    }
}

/// The tomographic tensor of one fragment.
///
/// Outcomes are interned into dense ids; coefficient vectors live in one
/// flat id-indexed buffer (see the module docs for the layout and the
/// emission-order contract).
#[derive(Clone, Debug)]
pub struct FragmentTensor {
    qi: usize,
    qo: usize,
    /// Cut ids per input axis (most-significant digit first).
    input_cuts: Vec<usize>,
    /// Cut ids per output axis.
    output_cuts: Vec<usize>,
    /// Original-circuit qubit for each circuit-output bit of `b`.
    co_global: Vec<usize>,
    /// Interned outcome keys: `b ↔ id`.
    pool: InternPool,
    /// Flat id-indexed coefficients: entry `id` occupies
    /// `coeffs[id·dim .. (id+1)·dim]` with `dim = 4^(qi+qo)`.
    coeffs: Vec<f64>,
    /// Lazily-computed ids in lexicographic key order — the deterministic
    /// emission order of every read path. Invalidated when the support
    /// grows; derived state, rebuilt on demand.
    order: OnceLock<Vec<u32>>,
    /// `Σ_b entries[b]`, per Pauli index.
    totals: Vec<f64>,
    /// `max_b |entries[b]|`, per Pauli index (sparse-contraction pruning:
    /// a zero here means the whole slice vanishes, exactly for stabilizer
    /// fragments).
    slice_max: Vec<f64>,
    /// `Σ_b |entries[b]|`, per Pauli index — the per-slice L1 mass the
    /// error-budgeted contraction uses to bound how much probability mass
    /// a skipped cut assignment could carry (the per-assignment bound is
    /// the product of these over the assignment's composite indices).
    slice_abs: Vec<f64>,
    /// Per circuit-output bit and value: `Σ_{b: b[bit]=v} entries[b]`.
    marginals: Vec<[Vec<f64>; 2]>,
}

impl FragmentTensor {
    /// Number of quantum inputs.
    pub fn num_inputs(&self) -> usize {
        self.qi
    }

    /// Number of quantum outputs.
    pub fn num_outputs(&self) -> usize {
        self.qo
    }

    /// Length of the dense Pauli-coefficient vectors: `4^(qi+qo)`.
    pub fn pauli_dim(&self) -> usize {
        1 << (2 * (self.qi + self.qo))
    }

    /// Cut ids of the input axes (most-significant first).
    pub fn input_cuts(&self) -> &[usize] {
        &self.input_cuts
    }

    /// Cut ids of the output axes.
    pub fn output_cuts(&self) -> &[usize] {
        &self.output_cuts
    }

    /// Original-circuit qubit indices of the circuit-output bits.
    pub fn output_globals(&self) -> &[usize] {
        &self.co_global
    }

    /// Number of observed circuit-output bitstrings.
    pub fn support_len(&self) -> usize {
        self.pool.len()
    }

    /// Ids in lexicographic key order, computed on first use and cached
    /// until the support grows.
    fn order(&self) -> &[u32] {
        self.order.get_or_init(|| self.pool.sorted_ids())
    }

    /// Iterator over `(b, coefficients)` in lexicographic outcome order —
    /// the deterministic emission order that keeps downstream float
    /// accumulation bit-reproducible.
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, &[f64])> + '_ {
        let dim = self.pauli_dim();
        self.order().iter().map(move |&id| {
            let start = id as usize * dim;
            (self.pool.key(id), &self.coeffs[start..start + dim])
        })
    }

    /// Coefficient `T[b, idx]`, zero when `b` was never observed.
    pub fn value(&self, b: &Bits, idx: usize) -> f64 {
        self.pool
            .get(b)
            .map_or(0.0, |id| self.coeffs[id as usize * self.pauli_dim() + idx])
    }

    /// `Σ_b T[b, idx]`.
    pub fn total(&self, idx: usize) -> f64 {
        self.totals[idx]
    }

    /// All Pauli totals as one dense slice indexed by composite Pauli
    /// index — the flat view the contraction hot loops read.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// `Σ_{b: b[bit]=v} T[b, idx]`.
    pub fn marginal(&self, bit: usize, v: bool, idx: usize) -> f64 {
        self.marginals[bit][v as usize][idx]
    }

    /// Dense marginal slices (`v = 0`, `v = 1`) for one circuit-output
    /// bit, indexed by composite Pauli index.
    pub fn marginal_slices(&self, bit: usize) -> (&[f64], &[f64]) {
        let m = &self.marginals[bit];
        (&m[0], &m[1])
    }

    /// The dense coefficient slice of one observed outcome, `None` when
    /// `b` was never observed.
    pub fn coeffs(&self, b: &Bits) -> Option<&[f64]> {
        let dim = self.pauli_dim();
        self.pool.get(b).map(|id| {
            let start = id as usize * dim;
            &self.coeffs[start..start + dim]
        })
    }

    /// `max_b |T[b, idx]|` — zero exactly when the whole Pauli slice
    /// vanishes.
    pub fn slice_max_abs(&self, idx: usize) -> f64 {
        self.slice_max[idx]
    }

    /// `Σ_b |T[b, idx]|` — the L1 mass of one Pauli slice. A cut
    /// assignment's total contribution to the unnormalized joint is
    /// bounded by the product of these over its composite indices, which
    /// is the weight bound the error-budgeted contraction ranks skip
    /// candidates by.
    pub fn slice_abs_sum(&self, idx: usize) -> f64 {
        self.slice_abs[idx]
    }

    /// All per-slice L1 masses as one dense slice indexed by composite
    /// Pauli index — the flat view the budgeted contraction's bound
    /// computation reads.
    pub fn abs_sums(&self) -> &[f64] {
        &self.slice_abs
    }

    /// The composite Pauli index for a cut assignment: `digit(cut)` is the
    /// Pauli on that cut (`I=0, X=1, Y=2, Z=3`).
    pub fn pauli_index(&self, digit_of_cut: impl Fn(usize) -> usize) -> usize {
        let mut idx = 0;
        for &c in &self.input_cuts {
            idx = idx * 4 + digit_of_cut(c);
        }
        for &c in &self.output_cuts {
            idx = idx * 4 + digit_of_cut(c);
        }
        idx
    }

    /// Replaces the coefficients of an observed `b` (used by the MLFT
    /// correction) without touching derived sums; call
    /// [`FragmentTensor::rebuild_derived`] afterwards. A previously unseen
    /// `b` is appended to the support.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from [`FragmentTensor::pauli_dim`].
    pub fn set_entry(&mut self, b: Bits, coeffs: Vec<f64>) {
        let dim = self.pauli_dim();
        assert_eq!(coeffs.len(), dim, "coefficient length mismatch");
        let id = self.pool.intern_owned(b) as usize;
        if id * dim == self.coeffs.len() {
            self.coeffs.extend_from_slice(&coeffs);
            self.order.take();
        } else {
            self.coeffs[id * dim..(id + 1) * dim].copy_from_slice(&coeffs);
        }
    }

    /// Scales every coefficient by `scale` and recomputes totals and
    /// marginals. Entries are visited in lexicographic key order, so the
    /// derived-sum float accumulation is bit-identical to the former
    /// ordered-map walk.
    pub fn rebuild_derived(&mut self, scale: f64) {
        let dim = self.pauli_dim();
        let n_out = self.co_global.len();
        let mut totals = vec![0.0; dim];
        let mut slice_max = vec![0.0f64; dim];
        let mut slice_abs = vec![0.0f64; dim];
        let mut marginals = vec![[vec![0.0; dim], vec![0.0; dim]]; n_out];
        let order = self.order.get_or_init(|| self.pool.sorted_ids());
        for &id in order.iter() {
            let start = id as usize * dim;
            let v = &mut self.coeffs[start..start + dim];
            for x in v.iter_mut() {
                *x *= scale;
            }
            for (i, &x) in v.iter().enumerate() {
                totals[i] += x;
                slice_max[i] = slice_max[i].max(x.abs());
                slice_abs[i] += x.abs();
            }
            let b = self.pool.key(id);
            for bit in 0..n_out {
                let side = b.get(bit) as usize;
                for (i, &x) in v.iter().enumerate() {
                    marginals[bit][side][i] += x;
                }
            }
        }
        self.totals = totals;
        self.slice_max = slice_max;
        self.slice_abs = slice_abs;
        self.marginals = marginals;
    }

    /// Pauli indices whose slice is not identically zero — the §IX
    /// "fewer stitching calculations" optimization enumerates only these.
    pub fn nonzero_indices(&self, tol: f64) -> Vec<usize> {
        (0..self.pauli_dim())
            .filter(|&i| self.slice_max[i] > tol)
            .collect()
    }

    /// Builds a tensor directly from dense per-`b` coefficient vectors —
    /// for synthetic-workload benchmarks and tests that need full control
    /// over the cut structure without running a simulator. A repeated
    /// outcome overwrites the earlier vector (ordered-map insert
    /// semantics).
    ///
    /// # Panics
    ///
    /// Panics when a coefficient vector's length differs from
    /// `4^(input_cuts + output_cuts)` or an outcome width differs from
    /// `co_global.len()`.
    pub fn from_dense_entries(
        input_cuts: Vec<usize>,
        output_cuts: Vec<usize>,
        co_global: Vec<usize>,
        entries: Vec<(Bits, Vec<f64>)>,
    ) -> Self {
        let qi = input_cuts.len();
        let qo = output_cuts.len();
        let dim = 1usize << (2 * (qi + qo));
        let mut pool = InternPool::with_capacity(entries.len());
        let mut coeffs: Vec<f64> = Vec::with_capacity(entries.len() * dim);
        for (b, v) in entries {
            assert_eq!(v.len(), dim, "coefficient length mismatch");
            assert_eq!(b.len(), co_global.len(), "outcome width mismatch");
            let id = pool.intern_owned(b) as usize;
            if id * dim == coeffs.len() {
                coeffs.extend_from_slice(&v);
            } else {
                coeffs[id * dim..(id + 1) * dim].copy_from_slice(&v);
            }
        }
        let mut tensor = FragmentTensor {
            qi,
            qo,
            input_cuts,
            output_cuts,
            co_global,
            pool,
            coeffs,
            order: OnceLock::new(),
            totals: Vec::new(),
            slice_max: Vec::new(),
            slice_abs: Vec::new(),
            marginals: Vec::new(),
        };
        tensor.rebuild_derived(1.0);
        tensor
    }
}

/// Builds the tomographic tensor of a fragment by evaluating all of its
/// variants.
///
/// # Errors
///
/// Propagates [`EvalError`] from fragment evaluation.
pub fn build_fragment_tensor(
    fragment: &Fragment,
    eval: &EvalOptions,
    opts: &TensorOptions,
    rng: &mut impl Rng,
) -> Result<FragmentTensor, EvalError> {
    let base_seed: u64 = rng.random();
    build_fragment_tensor_threaded(fragment, eval, opts, base_seed, 1)
}

/// Derives the RNG for one variant from the fragment's base seed.
fn variant_rng(base_seed: u64, variant_index: usize) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(
        base_seed ^ (variant_index as u64 + 1).wrapping_mul(0xD1B54A32D192ED03),
    )
}

/// Deterministic dense tensor chain with `k` cuts (`k + 1` fragments, each
/// with `outputs_per_frag` circuit outputs), returned with the synthetic
/// circuit width. Every Pauli slice is nonzero, so the sparse skip never
/// prunes — the controlled workload used by the contraction benchmarks and
/// the thread-count bit-identity tests.
pub fn synthetic_dense_chain(k: usize, outputs_per_frag: usize) -> (Vec<FragmentTensor>, usize) {
    let coeff = |f: usize, e: usize, i: usize| {
        // Pseudo-random but fully deterministic nonzero coefficients.
        let x = (f * 7919 + e * 104729 + i * 1299709) % 1000;
        0.05 + x as f64 / 1000.0
    };
    let mut tensors = Vec::new();
    for f in 0..=k {
        let input_cuts = if f == 0 { vec![] } else { vec![f - 1] };
        let output_cuts = if f == k { vec![] } else { vec![f] };
        let co_global: Vec<usize> = (f * outputs_per_frag..(f + 1) * outputs_per_frag).collect();
        let dim = 1usize << (2 * (input_cuts.len() + output_cuts.len()));
        let entries: Vec<(Bits, Vec<f64>)> = (0..1u64 << outputs_per_frag)
            .map(|e| {
                (
                    Bits::from_u64(e, outputs_per_frag),
                    (0..dim).map(|i| coeff(f, e as usize, i)).collect(),
                )
            })
            .collect();
        tensors.push(FragmentTensor::from_dense_entries(
            input_cuts,
            output_cuts,
            co_global,
            entries,
        ));
    }
    let n_qubits = (k + 1) * outputs_per_frag;
    (tensors, n_qubits)
}

/// Per-fragment precomputed evaluation context: the enumerated variants
/// plus the extraction plans and weights shared by every variant
/// evaluation of the fragment.
///
/// Owning this separately from the [`Fragment`] is what makes plan reuse
/// possible: a session-level plan (e.g. `supersim`'s `CutPlan`) builds one
/// `FragmentEvalPlan` per fragment **once** and re-executes it for every
/// sweep point, instead of re-enumerating variants and rebuilding
/// [`IndexPlan`]s on every run.
#[derive(Clone, Debug)]
pub struct FragmentEvalPlan {
    variants: Vec<Variant>,
    /// Extraction plan for the circuit-output bits of a local outcome.
    co_plan: IndexPlan,
    /// Extraction plan for the quantum-output bits of a local outcome.
    qo_plan: IndexPlan,
    qo: usize,
    dim: usize,
    /// 1/3^t weights for averaging the 3^t basis variants compatible with
    /// a Pauli pattern that has t identity digits.
    inv3: Vec<f64>,
}

impl FragmentEvalPlan {
    /// Precomputes the evaluation context of one fragment.
    pub fn new(fragment: &Fragment) -> Self {
        let qi = fragment.quantum_inputs.len();
        let qo = fragment.quantum_outputs.len();
        let width = fragment.num_local_qubits();
        let co_local: Vec<usize> = fragment.circuit_outputs.iter().map(|&(l, _)| l).collect();
        let qo_local: Vec<usize> = fragment.quantum_outputs.iter().map(|&(l, _)| l).collect();
        FragmentEvalPlan {
            variants: enumerate_variants(fragment),
            co_plan: IndexPlan::new(&co_local, width),
            qo_plan: IndexPlan::new(&qo_local, width),
            qo,
            dim: 1usize << (2 * (qi + qo)),
            inv3: (0..=qo).map(|t| 3f64.powi(-(t as i32))).collect(),
        }
    }

    /// Number of tomography variants this fragment executes.
    pub fn num_variants(&self) -> usize {
        self.variants.len()
    }

    /// Dense accumulator width of this fragment's tensor: `4^(qi+qo)`
    /// coefficient slots per outcome. Admission-control cost estimators
    /// use `num_variants × dim` as the tensor-footprint proxy.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Interned per-fragment accumulator for the evaluation stage: outcome
/// keys share one [`InternPool`] per fragment, coefficient vectors live in
/// one flat id-indexed buffer. Handed to [`FragmentTensor`] without
/// copying once the fragment's variants are folded.
struct TensorAccum {
    dim: usize,
    pool: InternPool,
    coeffs: Vec<f64>,
}

impl TensorAccum {
    fn new(dim: usize) -> Self {
        TensorAccum {
            dim,
            pool: InternPool::new(),
            coeffs: Vec::new(),
        }
    }

    /// The coefficient slice of `b`, zero-initialized on first touch. The
    /// key is borrowed: a clone is paid only on first sight, so callers
    /// can reuse one scratch `Bits` per data entry (see
    /// [`accumulate_variant`]) instead of materializing a fresh key per
    /// outcome.
    fn slot_mut(&mut self, b: &Bits) -> &mut [f64] {
        let id = self.pool.intern(b) as usize;
        if id * self.dim == self.coeffs.len() {
            self.coeffs.resize(self.coeffs.len() + self.dim, 0.0);
        }
        &mut self.coeffs[id * self.dim..(id + 1) * self.dim]
    }
}

/// Accumulates one variant's outcome data into the prep-indexed tensor
/// accumulator `M[b][s·4^qo + po]`.
///
/// The circuit-output and quantum-output bit extractions reuse two
/// caller-provided scratch bitstrings ([`IndexPlan::extract_into`]), so
/// the per-outcome hot loop allocates nothing: the only key clone is the
/// intern pool's first-sight copy of a new outcome.
fn accumulate_variant(
    m: &mut TensorAccum,
    data: &[(Bits, f64)],
    variant: &Variant,
    plan: &FragmentEvalPlan,
    scratch: &mut ExtractScratch,
) {
    let qo = plan.qo;
    let pow4_qo = 1usize << (2 * qo);
    let s = variant.prep_index();
    let basis_digits: Vec<usize> = variant.bases.iter().map(|b| b.pauli_digit()).collect();
    for (bits, p) in data {
        let p = *p;
        plan.co_plan.extract_into(bits, &mut scratch.co);
        plan.qo_plan.extract_into(bits, &mut scratch.qo);
        let mbits = &scratch.qo;
        let mv = m.slot_mut(&scratch.co);
        // Each subset of quantum outputs marks positions carrying the
        // variant's basis Pauli; the rest are identity.
        for subset in 0..(1usize << qo) {
            let mut po = 0usize;
            let mut sign = 1.0;
            for j in 0..qo {
                let active = (subset >> (qo - 1 - j)) & 1 == 1;
                po = po * 4 + if active { basis_digits[j] } else { 0 };
                if active && mbits.get(j) {
                    sign = -sign;
                }
            }
            let t = qo - subset.count_ones() as usize;
            mv[s * pow4_qo + po] += p * sign * plan.inv3[t];
        }
    }
}

/// Reusable extraction scratch for [`accumulate_variant`].
struct ExtractScratch {
    co: Bits,
    qo: Bits,
}

impl ExtractScratch {
    fn new() -> Self {
        ExtractScratch {
            co: Bits::zeros(0),
            qo: Bits::zeros(0),
        }
    }
}

/// All of one evaluation worker's reusable buffers: the backend's
/// sampling scratch ([`EvalScratch`]), the variant outcome list, and the
/// key-extraction rows. One per worker (or per sequential loop) — the
/// per-variant hot path allocates only each fragment accumulator and the
/// intern pool's first-sight key copies.
struct WorkerScratch {
    eval: EvalScratch,
    data: Vec<(Bits, f64)>,
    extract: ExtractScratch,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            eval: EvalScratch::new(),
            data: Vec::new(),
            extract: ExtractScratch::new(),
        }
    }
}

/// Evaluates one (fragment, variant) work item into its own accumulator.
fn evaluate_item(
    fragment: &Fragment,
    plan: &FragmentEvalPlan,
    vi: usize,
    base_seed: u64,
    eval: &EvalOptions,
    scratch: &mut WorkerScratch,
) -> Result<TensorAccum, EvalError> {
    let mut rng = variant_rng(base_seed, vi);
    let variant = &plan.variants[vi];
    evaluate_variant_into(
        fragment,
        variant,
        eval,
        &mut rng,
        &mut scratch.eval,
        &mut scratch.data,
    )?;
    let mut local = TensorAccum::new(plan.dim);
    accumulate_variant(
        &mut local,
        &scratch.data,
        variant,
        plan,
        &mut scratch.extract,
    );
    Ok(local)
}

/// Adds a variant accumulator into a fragment accumulator: an id-indexed
/// vector add per shared outcome. The first contribution per outcome is
/// copied verbatim (not added onto zeros), so folding variant accumulators
/// in variant order reproduces direct sequential accumulation bit for bit
/// — the same move semantics the former `BTreeMap` merge had.
fn merge_accumulator(m: &mut TensorAccum, local: TensorAccum) {
    let dim = m.dim;
    debug_assert_eq!(dim, local.dim, "fragment dimension mismatch");
    m.pool.reserve(local.pool.len());
    for (id, key) in local.pool.keys().iter().enumerate() {
        let src = &local.coeffs[id * dim..(id + 1) * dim];
        let dst = m.pool.intern(key) as usize;
        if dst * dim == m.coeffs.len() {
            m.coeffs.extend_from_slice(src);
        } else {
            for (a, x) in m.coeffs[dst * dim..(dst + 1) * dim].iter_mut().zip(src) {
                *a += x;
            }
        }
    }
}

/// Finishes a fragment tensor from its accumulated variant data: optional
/// Clifford snap, prep→Pauli axis conversion, derived sums. The
/// accumulator's pool and coefficient buffer move into the tensor — the
/// per-fragment pool is shared end to end, never copied.
fn finalize_fragment_tensor(
    fragment: &Fragment,
    mut m: TensorAccum,
    eval: &EvalOptions,
    opts: &TensorOptions,
) -> FragmentTensor {
    let qi = fragment.quantum_inputs.len();
    let qo = fragment.quantum_outputs.len();
    let pow4_qo = 1usize << (2 * qo);

    // Optional Clifford snap: conditional expectations of stabilizer states
    // are exactly -1, 0, or +1. Noisy fragments prepare *mixed* states with
    // fractional expectations, so the snap must not touch them.
    let snapped = opts.clifford_snap
        && fragment.is_clifford
        && !fragment.circuit.has_noise()
        && matches!(eval.mode, EvalMode::Sampled { .. });
    if snapped {
        for v in m.coeffs.chunks_mut(m.dim) {
            for s in 0..(1usize << (2 * qi)) {
                let norm = v[s * pow4_qo];
                if norm.abs() < 1e-12 {
                    continue;
                }
                for po in 1..pow4_qo {
                    let r = v[s * pow4_qo + po] / norm;
                    let snap = r.round().clamp(-1.0, 1.0);
                    v[s * pow4_qo + po] = snap * norm;
                }
            }
        }
    }

    // Convert each input axis from preparation-state to Pauli coordinates.
    for v in m.coeffs.chunks_mut(m.dim) {
        for axis in 0..qi {
            let stride = (1usize << (2 * (qi - 1 - axis))) * pow4_qo;
            transform_axis(v, stride, &PREP_TO_PAULI);
        }
    }

    let mut tensor = FragmentTensor {
        qi,
        qo,
        input_cuts: fragment.quantum_inputs.iter().map(|&(_, c)| c).collect(),
        output_cuts: fragment.quantum_outputs.iter().map(|&(_, c)| c).collect(),
        co_global: fragment.circuit_outputs.iter().map(|&(_, g)| g).collect(),
        pool: m.pool,
        coeffs: m.coeffs,
        order: OnceLock::new(),
        totals: Vec::new(),
        slice_max: Vec::new(),
        slice_abs: Vec::new(),
        marginals: Vec::new(),
    };
    tensor.rebuild_derived(1.0);
    tensor
}

/// Evaluates several fragments' variants on **one shared worker pool** (the
/// paper's §X parallelization, lifted to the whole evaluation stage): every
/// (fragment × variant) pair is an independent work item, so a lone
/// expensive fragment no longer serializes the pipeline behind its
/// neighbours.
///
/// Items are processed in fixed-size chunks ([`VARIANTS_PER_CHUNK`], a
/// constant independent of the worker count): each chunk folds its
/// variants' accumulators per fragment in item order, and chunk partials
/// are merged in chunk order. The sequential path uses the identical
/// structure, which makes the result **bit-identical for any `threads`
/// value** (including 1) given the same `base_seeds`, while bounding
/// retained accumulators to one per chunk. Accumulators are interned and
/// id-indexed (see the module docs), so folds and merges are flat vector
/// adds; the result is additionally bit-identical to the frozen
/// `BTreeMap` reference path ([`reference_evaluate_btreemap`]).
///
/// # Errors
///
/// Propagates the [`EvalError`] of the earliest failing chunk (in chunk
/// order) among the work that ran before the pool stopped.
///
/// # Panics
///
/// Panics if `base_seeds.len() != fragments.len()`.
pub fn evaluate_fragment_tensors(
    fragments: &[Fragment],
    eval: &EvalOptions,
    opts: &TensorOptions,
    base_seeds: &[u64],
    threads: usize,
) -> Result<Vec<FragmentTensor>, EvalError> {
    let plans: Vec<FragmentEvalPlan> = fragments.iter().map(FragmentEvalPlan::new).collect();
    evaluate_fragment_tensors_planned(fragments, &plans, eval, opts, base_seeds, threads)
}

/// [`evaluate_fragment_tensors`] against prebuilt [`FragmentEvalPlan`]s —
/// the plan-reuse entry point: parameterized sweeps build the plans once
/// and re-execute them for every (seed, shots) point, skipping variant
/// enumeration and [`IndexPlan`] construction per run. Bit-identical to
/// the plan-building wrapper for any thread count.
///
/// # Errors
///
/// Propagates the [`EvalError`] of the earliest failing chunk in chunk
/// order, like [`evaluate_fragment_tensors`].
///
/// # Panics
///
/// Panics if `plans` or `base_seeds` length differs from `fragments`.
pub fn evaluate_fragment_tensors_planned(
    fragments: &[Fragment],
    plans: &[FragmentEvalPlan],
    eval: &EvalOptions,
    opts: &TensorOptions,
    base_seeds: &[u64],
    threads: usize,
) -> Result<Vec<FragmentTensor>, EvalError> {
    assert_eq!(
        fragments.len(),
        base_seeds.len(),
        "one base seed per fragment required"
    );
    assert_eq!(
        fragments.len(),
        plans.len(),
        "one evaluation plan per fragment required"
    );
    let num_chunks = planned_num_chunks(plans);
    let threads = runtime::worker_count(threads.max(1), num_chunks);

    let maps: Vec<TensorAccum> = plans.iter().map(|p| TensorAccum::new(p.dim)).collect();

    let maps = if threads <= 1 {
        // Sequential path: evaluate and fold one chunk at a time (peak
        // retention: one chunk accumulator). Chunk decomposition and merge
        // order match the parallel path exactly, so results are
        // bit-identical for any thread count.
        let mut maps = maps;
        let mut scratch = WorkerScratch::new();
        for ci in 0..num_chunks {
            let chunk =
                evaluate_chunk_with_scratch(fragments, plans, eval, base_seeds, ci, &mut scratch)?;
            merge_planned_chunk(&mut maps, chunk);
        }
        maps
    } else {
        // Parallel path: pooled workers claim chunks dynamically and
        // stream finished chunk accumulators into one central merger that
        // folds them **in chunk order** — the same merge association as
        // the sequential loop, with peak retention bounded by the merge
        // window instead of the full chunk set.
        let next = AtomicUsize::new(0);
        // Early-exit failure floor: the smallest failing chunk index seen
        // so far. Only chunks *above* the floor are skipped, so every
        // chunk below the earliest failure is always evaluated and the
        // reported error is the earliest failing chunk in chunk order —
        // schedule-independent, identical to the sequential path. (A bare
        // "failed" flag would let a worker holding an earlier chunk skip
        // it after observing a later chunk's failure.)
        let fail_floor = AtomicUsize::new(usize::MAX);
        let first_error: Mutex<Option<(usize, EvalError)>> = Mutex::new(None);
        let merger = runtime::OrderedMerger::new(
            threads,
            maps,
            |maps: &mut Vec<TensorAccum>, chunk: EvalChunk| merge_planned_chunk(maps, chunk),
        );
        runtime::Pool::global().run(threads, |_| {
            let mut scratch = WorkerScratch::new();
            loop {
                let ci = next.fetch_add(1, Ordering::Relaxed);
                if ci >= num_chunks {
                    break;
                }
                if ci > fail_floor.load(Ordering::Relaxed) {
                    // Skipped by the early exit: the claimed index still
                    // has to be resolved or the ordered merge would stall.
                    merger.skip(ci as u64);
                    continue;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    evaluate_chunk_with_scratch(
                        fragments,
                        plans,
                        eval,
                        base_seeds,
                        ci,
                        &mut scratch,
                    )
                }));
                match r {
                    Ok(Ok(chunk)) => merger.submit(ci as u64, chunk),
                    Ok(Err(e)) => {
                        fail_floor.fetch_min(ci, Ordering::Relaxed);
                        let mut slot = faultkit::lock_or_recover(&first_error);
                        match &*slot {
                            Some((i, _)) if *i <= ci => {}
                            _ => *slot = Some((ci, e)),
                        }
                        merger.skip(ci as u64);
                    }
                    Err(payload) => {
                        // Resolve the claimed index before re-raising so
                        // sibling workers blocked on the merge window are
                        // not stranded; the pool re-raises the payload on
                        // the calling thread once the job completes.
                        merger.skip(ci as u64);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        });
        let maps = merger.finish();
        if let Some((_, e)) = faultkit::into_inner_or_recover(first_error) {
            // First error in chunk order wins; the partially merged maps
            // are discarded.
            return Err(e);
        }
        maps
    };

    Ok(maps
        .into_iter()
        .zip(fragments)
        .map(|(m, fragment)| finalize_fragment_tensor(fragment, m, eval, opts))
        .collect())
}

/// Work items per evaluation-pool chunk. Fixed (not derived from the
/// thread count) so the fold structure — and therefore every float-merge
/// association — is identical for any parallelism, while bounding retained
/// accumulators to one per chunk instead of one per variant.
const VARIANTS_PER_CHUNK: usize = 16;

/// The accumulated result of one evaluation chunk: per-fragment partial
/// accumulators, folded in item order within the chunk. Opaque — produced
/// by [`evaluate_planned_chunk`] and consumed by [`merge_planned_chunks`].
pub struct EvalChunk {
    items: Vec<(usize, TensorAccum)>,
}

/// Number of fixed-size evaluation chunks the (fragment × variant) work
/// items of `plans` decompose into. The decomposition is a pure function
/// of the plans (never of the worker count), which is what makes chunked
/// execution bit-identical for any parallelism.
pub fn planned_num_chunks(plans: &[FragmentEvalPlan]) -> usize {
    let total: usize = plans.iter().map(FragmentEvalPlan::num_variants).sum();
    total.div_ceil(VARIANTS_PER_CHUNK)
}

/// Evaluates one chunk of the fixed (fragment × variant) decomposition —
/// the batch scheduler's unit of evaluation work. Chunks of one circuit
/// can interleave arbitrarily with other circuits' work on a shared pool;
/// as long as every chunk is produced and merged in chunk order
/// ([`merge_planned_chunks`]), the result is bit-identical to
/// [`evaluate_fragment_tensors`].
///
/// # Errors
///
/// Propagates [`EvalError`] from fragment evaluation.
///
/// # Panics
///
/// Panics if `chunk >= planned_num_chunks(plans)` or the slice lengths
/// disagree.
pub fn evaluate_planned_chunk(
    fragments: &[Fragment],
    plans: &[FragmentEvalPlan],
    eval: &EvalOptions,
    base_seeds: &[u64],
    chunk: usize,
) -> Result<EvalChunk, EvalError> {
    let mut scratch = WorkerScratch::new();
    evaluate_chunk_with_scratch(fragments, plans, eval, base_seeds, chunk, &mut scratch)
}

/// [`evaluate_planned_chunk`] with a reusable worker scratch (one per
/// worker on the pooled paths).
fn evaluate_chunk_with_scratch(
    fragments: &[Fragment],
    plans: &[FragmentEvalPlan],
    eval: &EvalOptions,
    base_seeds: &[u64],
    chunk: usize,
    scratch: &mut WorkerScratch,
) -> Result<EvalChunk, EvalError> {
    assert_eq!(fragments.len(), plans.len(), "plan count mismatch");
    assert_eq!(fragments.len(), base_seeds.len(), "seed count mismatch");
    // Supervision checkpoint, once per chunk: cancellation and deadlines
    // surface here as `Interrupted`, scheduled fault injections as
    // `Injected` (or a deliberate panic the caller's isolation catches).
    eval.supervisor
        .check(faultkit::Stage::Eval, chunk)
        .map_err(|fault| match fault {
            faultkit::Fault::Interrupted(i) => EvalError::Interrupted(i),
            faultkit::Fault::Injected(site) => EvalError::Injected(site),
        })?;
    let total: usize = plans.iter().map(FragmentEvalPlan::num_variants).sum();
    let start = chunk * VARIANTS_PER_CHUNK;
    assert!(start < total.max(1), "chunk {chunk} out of range");
    let end = (start + VARIANTS_PER_CHUNK).min(total);

    // Locate the fragment containing flat item `start`.
    let mut fi = 0;
    let mut offset = 0; // flat index of fragment fi's first item
    while fi < plans.len() && offset + plans[fi].num_variants() <= start {
        offset += plans[fi].num_variants();
        fi += 1;
    }

    let mut out: Vec<(usize, TensorAccum)> = Vec::new();
    for flat in start..end {
        while flat >= offset + plans[fi].num_variants() {
            offset += plans[fi].num_variants();
            fi += 1;
        }
        let vi = flat - offset;
        let local = evaluate_item(
            &fragments[fi],
            &plans[fi],
            vi,
            base_seeds[fi],
            eval,
            scratch,
        )?;
        match out.last_mut() {
            Some((f, m)) if *f == fi => merge_accumulator(m, local),
            _ => out.push((fi, local)),
        }
    }
    Ok(EvalChunk { items: out })
}

/// Folds one chunk's partial accumulators into the per-fragment maps.
fn merge_planned_chunk(maps: &mut [TensorAccum], chunk: EvalChunk) {
    for (fi, m) in chunk.items {
        merge_accumulator(&mut maps[fi], m);
    }
}

/// Merges every chunk (which **must** arrive complete and in chunk order)
/// and finishes the fragment tensors — the tail of the chunked evaluation
/// pipeline, split out so a cross-circuit batch scheduler can interleave
/// chunk production with other work and fold each circuit's chunks once
/// its last one lands. Bit-identical to [`evaluate_fragment_tensors`] by
/// construction: identical chunk decomposition, identical merge order.
///
/// # Panics
///
/// Panics if `plans` length differs from `fragments`.
pub fn merge_planned_chunks(
    fragments: &[Fragment],
    plans: &[FragmentEvalPlan],
    eval: &EvalOptions,
    opts: &TensorOptions,
    chunks: impl IntoIterator<Item = EvalChunk>,
) -> Vec<FragmentTensor> {
    assert_eq!(fragments.len(), plans.len(), "plan count mismatch");
    let mut maps: Vec<TensorAccum> = plans.iter().map(|p| TensorAccum::new(p.dim)).collect();
    for chunk in chunks {
        merge_planned_chunk(&mut maps, chunk);
    }
    maps.into_iter()
        .zip(fragments)
        .map(|(m, fragment)| finalize_fragment_tensor(fragment, m, eval, opts))
        .collect()
}

/// Builds the tomographic tensor of a fragment, evaluating variants on up
/// to `threads` worker threads (the paper's §X parallelization of
/// per-variant simulation). Deterministic for a given `base_seed`
/// regardless of thread count.
///
/// # Errors
///
/// Propagates [`EvalError`] from fragment evaluation.
pub fn build_fragment_tensor_threaded(
    fragment: &Fragment,
    eval: &EvalOptions,
    opts: &TensorOptions,
    base_seed: u64,
    threads: usize,
) -> Result<FragmentTensor, EvalError> {
    let mut tensors = evaluate_fragment_tensors(
        std::slice::from_ref(fragment),
        eval,
        opts,
        &[base_seed],
        threads,
    )?;
    Ok(tensors.pop().expect("one tensor per fragment"))
}

/// The pre-intern evaluation stage, frozen as a parity baseline: per-chunk
/// `BTreeMap<Bits, Vec<f64>>` accumulation (one ordered-map walk and a key
/// clone per touch), folded and merged with the identical chunk structure
/// as [`evaluate_fragment_tensors`], then finished through the same snap /
/// axis-transform / derived-sum pipeline. Sequential only — the chunk
/// decomposition makes it bit-identical to the engine at any thread count.
///
/// Shared by the reference-parity property tests and the `fragment_eval`
/// series of the `bench_json` benchmark; not part of the supported API.
///
/// # Errors
///
/// Propagates [`EvalError`] like [`evaluate_fragment_tensors`].
///
/// # Panics
///
/// Panics if `base_seeds.len() != fragments.len()`.
#[doc(hidden)]
pub fn reference_evaluate_btreemap(
    fragments: &[Fragment],
    eval: &EvalOptions,
    opts: &TensorOptions,
    base_seeds: &[u64],
) -> Result<Vec<FragmentTensor>, EvalError> {
    assert_eq!(
        fragments.len(),
        base_seeds.len(),
        "one base seed per fragment required"
    );
    type Map = BTreeMap<Bits, Vec<f64>>;
    fn merge_map(m: &mut Map, local: Map) {
        for (b, v) in local {
            match m.entry(b) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    for (a, x) in e.get_mut().iter_mut().zip(&v) {
                        *a += x;
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            }
        }
    }

    let plans: Vec<FragmentEvalPlan> = fragments.iter().map(FragmentEvalPlan::new).collect();
    let items: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(fi, plan)| (0..plan.num_variants()).map(move |vi| (fi, vi)))
        .collect();
    let mut maps: Vec<Map> = fragments.iter().map(|_| Map::new()).collect();
    for chunk in items.chunks(VARIANTS_PER_CHUNK) {
        let mut out: Vec<(usize, Map)> = Vec::new();
        for &(fi, vi) in chunk {
            let plan = &plans[fi];
            let mut rng = variant_rng(base_seeds[fi], vi);
            let variant = &plan.variants[vi];
            let data = evaluate_variant(&fragments[fi], variant, eval, &mut rng)?;
            let mut local = Map::new();
            let qo = plan.qo;
            let pow4_qo = 1usize << (2 * qo);
            let s = variant.prep_index();
            let basis_digits: Vec<usize> = variant.bases.iter().map(|b| b.pauli_digit()).collect();
            for (bits, p) in data {
                let b = plan.co_plan.extract(&bits);
                let mbits = plan.qo_plan.extract(&bits);
                let mv = local.entry(b).or_insert_with(|| vec![0.0; plan.dim]);
                for subset in 0..(1usize << qo) {
                    let mut po = 0usize;
                    let mut sign = 1.0;
                    for j in 0..qo {
                        let active = (subset >> (qo - 1 - j)) & 1 == 1;
                        po = po * 4 + if active { basis_digits[j] } else { 0 };
                        if active && mbits.get(j) {
                            sign = -sign;
                        }
                    }
                    let t = qo - subset.count_ones() as usize;
                    mv[s * pow4_qo + po] += p * sign * plan.inv3[t];
                }
            }
            match out.last_mut() {
                Some((f, m)) if *f == fi => merge_map(m, local),
                _ => out.push((fi, local)),
            }
        }
        for (fi, m) in out {
            merge_map(&mut maps[fi], m);
        }
    }

    Ok(maps
        .into_iter()
        .zip(fragments)
        .map(|(mut m, fragment)| {
            let qi = fragment.quantum_inputs.len();
            let qo = fragment.quantum_outputs.len();
            let pow4_qo = 1usize << (2 * qo);
            let snapped = opts.clifford_snap
                && fragment.is_clifford
                && !fragment.circuit.has_noise()
                && matches!(eval.mode, EvalMode::Sampled { .. });
            if snapped {
                for v in m.values_mut() {
                    for s in 0..(1usize << (2 * qi)) {
                        let norm = v[s * pow4_qo];
                        if norm.abs() < 1e-12 {
                            continue;
                        }
                        for po in 1..pow4_qo {
                            let r = v[s * pow4_qo + po] / norm;
                            let snap = r.round().clamp(-1.0, 1.0);
                            v[s * pow4_qo + po] = snap * norm;
                        }
                    }
                }
            }
            for v in m.values_mut() {
                for axis in 0..qi {
                    let stride = (1usize << (2 * (qi - 1 - axis))) * pow4_qo;
                    transform_axis(v, stride, &PREP_TO_PAULI);
                }
            }
            FragmentTensor::from_dense_entries(
                fragment.quantum_inputs.iter().map(|&(_, c)| c).collect(),
                fragment.quantum_outputs.iter().map(|&(_, c)| c).collect(),
                fragment.circuit_outputs.iter().map(|&(_, g)| g).collect(),
                m.into_iter().collect(),
            )
        })
        .collect())
}

/// In-place contraction of one base-4 axis (identified by its stride) with
/// a 4×4 matrix: `new[digit=r] = Σ_c mat[r][c]·old[digit=c]`.
fn transform_axis(v: &mut [f64], stride: usize, mat: &[[f64; 4]; 4]) {
    let len = v.len();
    let mut i = 0;
    while i < len {
        // `i` iterates over positions whose axis digit is 0.
        let old = [v[i], v[i + stride], v[i + 2 * stride], v[i + 3 * stride]];
        for (r, row) in mat.iter().enumerate() {
            let mut acc = 0.0;
            for (c, &val) in old.iter().enumerate() {
                acc += row[c] * val;
            }
            v[i + r * stride] = acc;
        }
        // Advance to the next digit-0 position.
        i += 1;
        if i % stride == 0 {
            i += 3 * stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{cut_circuit, CutStrategy};
    use qcir::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    fn exact_opts() -> EvalOptions {
        EvalOptions {
            mode: EvalMode::Exact,
            ..Default::default()
        }
    }

    #[test]
    fn axis_transform_identity() {
        let id = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let mut v: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let orig = v.clone();
        transform_axis(&mut v, 4, &id);
        transform_axis(&mut v, 1, &id);
        assert_eq!(v, orig);
    }

    #[test]
    fn axis_transform_permutation() {
        // Swap digits 0<->1 on the stride-1 axis of a 2-axis tensor.
        let swap01 = [
            [0.0, 1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        let mut v: Vec<f64> = (0..16).map(|x| x as f64).collect();
        transform_axis(&mut v, 1, &swap01);
        for hi in 0..4 {
            assert_eq!(v[hi * 4], (hi * 4 + 1) as f64);
            assert_eq!(v[hi * 4 + 1], (hi * 4) as f64);
            assert_eq!(v[hi * 4 + 2], (hi * 4 + 2) as f64);
        }
    }

    /// Upstream |0>-state fragment: T[∅, I]=1, T[∅, Z]=1, X=Y=0.
    #[test]
    fn upstream_zero_state_tensor() {
        // Circuit: single wire ending in a cut: "I q0 ; T q0" cut before T.
        let mut c = Circuit::new(1);
        c.add_gate(qcir::Gate::I, &[0]).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 1)
            .expect("upstream fragment");
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        assert!((t.value(&b, 0) - 1.0).abs() < 1e-12, "I component");
        assert!((t.value(&b, 3) - 1.0).abs() < 1e-12, "Z component");
        assert!(t.value(&b, 1).abs() < 1e-12, "X component");
        assert!(t.value(&b, 2).abs() < 1e-12, "Y component");
    }

    /// Upstream |+>-state fragment: T[∅, X] = 1.
    #[test]
    fn upstream_plus_state_tensor() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 1)
            .unwrap();
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        assert!((t.value(&b, 0) - 1.0).abs() < 1e-12);
        assert!((t.value(&b, 1) - 1.0).abs() < 1e-12, "X component of |+>");
        assert!(t.value(&b, 3).abs() < 1e-12, "Z component of |+>");
    }

    /// Downstream identity fragment: measuring the prepared state directly.
    #[test]
    fn downstream_identity_tensor() {
        let mut c = Circuit::new(1);
        c.t(0).add_gate(qcir::Gate::I, &[0]);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let down = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_inputs.len() == 1)
            .expect("downstream fragment");
        let t = build_fragment_tensor(down, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b0 = Bits::from_u64(0, 1);
        let b1 = Bits::from_u64(1, 1);
        // T[0,I]=1/2, T[0,Z]=1/2, T[1,I]=1/2, T[1,Z]=-1/2, X=Y=0.
        assert!((t.value(&b0, 0) - 0.5).abs() < 1e-12);
        assert!((t.value(&b0, 3) - 0.5).abs() < 1e-12);
        assert!((t.value(&b1, 0) - 0.5).abs() < 1e-12);
        assert!((t.value(&b1, 3) + 0.5).abs() < 1e-12);
        assert!(t.value(&b0, 1).abs() < 1e-12);
        assert!(t.value(&b1, 2).abs() < 1e-12);
        // Trace preservation: Σ_b T[b, P≠I] = 0, Σ_b T[b,I] = 1.
        assert!((t.total(0) - 1.0).abs() < 1e-12);
        for idx in 1..3 {
            assert!(t.total(idx).abs() < 1e-12);
        }
    }

    /// Middle fragment (T gate): verify against analytic values.
    #[test]
    fn middle_t_gate_tensor() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let tf = cut.fragments.iter().find(|f| !f.is_clifford).unwrap();
        let t = build_fragment_tensor(tf, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let b = Bits::zeros(0);
        // T[P_in, P_out] = Tr[P_out T P_in T†]/2:
        //   I→I: 1, Z→Z: 1, X→X: cos(π/4), X→Y: sin(π/4),
        //   Y→Y: cos(π/4), Y→X: -sin(π/4).
        let c45 = std::f64::consts::FRAC_PI_4.cos();
        let idx = |pi: usize, po: usize| pi * 4 + po;
        assert!((t.value(&b, idx(0, 0)) - 1.0).abs() < 1e-12, "I->I");
        assert!((t.value(&b, idx(3, 3)) - 1.0).abs() < 1e-12, "Z->Z");
        assert!((t.value(&b, idx(1, 1)) - c45).abs() < 1e-12, "X->X");
        assert!((t.value(&b, idx(1, 2)) - c45).abs() < 1e-12, "X->Y");
        assert!((t.value(&b, idx(2, 2)) - c45).abs() < 1e-12, "Y->Y");
        assert!((t.value(&b, idx(2, 1)) + c45).abs() < 1e-12, "Y->X");
        assert!(t.value(&b, idx(0, 3)).abs() < 1e-12, "I->Z");
        assert!(t.value(&b, idx(1, 3)).abs() < 1e-12, "X->Z");
    }

    #[test]
    fn clifford_fragment_has_sparse_pauli_support() {
        // §IX optimization 2: stabilizer states have mostly-zero Pauli
        // coefficients. A GHZ-producing upstream fragment over 2 cut qubits
        // has at most 1/4 of coefficients non-zero... here just check that
        // zeros exist in abundance.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).t(1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut
            .fragments
            .iter()
            .find(|f| f.is_clifford && f.quantum_outputs.len() == 2)
            .expect("two-cut upstream fragment");
        let t = build_fragment_tensor(up, &exact_opts(), &TensorOptions::default(), &mut rng())
            .unwrap();
        let nonzero = t.nonzero_indices(1e-9).len();
        assert!(
            nonzero <= 4,
            "Bell-pair upstream should have ≤4 nonzero Paulis, got {nonzero}"
        );
    }

    #[test]
    fn threaded_build_matches_sequential() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(0).t(1).cx(0, 1);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 500 },
            ..Default::default()
        };
        for f in &cut.fragments {
            let seq =
                build_fragment_tensor_threaded(f, &eval, &TensorOptions::default(), 99, 1).unwrap();
            let par =
                build_fragment_tensor_threaded(f, &eval, &TensorOptions::default(), 99, 4).unwrap();
            assert_eq!(seq.support_len(), par.support_len());
            for (b, v) in seq.iter() {
                for (i, &x) in v.iter().enumerate() {
                    assert!(
                        (par.value(b, i) - x).abs() < 1e-12,
                        "thread count changed results at {b}, idx {i}"
                    );
                }
            }
        }
    }

    /// The shared-pool evaluator is bit-identical across thread counts and
    /// matches the per-fragment path given the same base seeds.
    #[test]
    fn pooled_evaluation_bit_identical_across_thread_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 400 },
            ..Default::default()
        };
        let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 1000 + i).collect();
        let opts = TensorOptions::default();
        let seq = evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, 1).unwrap();
        for threads in [2, 8] {
            let par =
                evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, threads).unwrap();
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.support_len(), p.support_len());
                for (b, v) in s.iter() {
                    for (i, &x) in v.iter().enumerate() {
                        assert!(
                            p.value(b, i) == x,
                            "pool with {threads} threads changed results at {b}, idx {i}"
                        );
                    }
                }
            }
        }
        // The single-fragment wrapper goes through the same pool.
        for (fi, f) in cut.fragments.iter().enumerate() {
            let one = build_fragment_tensor_threaded(f, &eval, &opts, seeds[fi], 3).unwrap();
            for (b, v) in one.iter() {
                for (i, &x) in v.iter().enumerate() {
                    assert!(seq[fi].value(b, i) == x, "wrapper mismatch at {b}, idx {i}");
                }
            }
        }
    }

    /// The interned evaluation engine is bit-identical — same support,
    /// same emission order, same float bits — to the frozen `BTreeMap`
    /// reference path, at 1, 2, and 8 threads, in sampled and exact mode.
    #[test]
    fn evaluation_matches_btreemap_reference_bit_exact() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2).t(2).h(2);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let seeds: Vec<u64> = (0..cut.fragments.len() as u64).map(|i| 4242 + i).collect();
        let opts = TensorOptions::default();
        for mode in [EvalMode::Exact, EvalMode::Sampled { shots: 350 }] {
            let eval = EvalOptions {
                mode,
                ..Default::default()
            };
            let expect = reference_evaluate_btreemap(&cut.fragments, &eval, &opts, &seeds).unwrap();
            for threads in [1usize, 2, 8] {
                let got = evaluate_fragment_tensors(&cut.fragments, &eval, &opts, &seeds, threads)
                    .unwrap();
                for (fi, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert_tensors_bit_identical(
                        g,
                        e,
                        &format!("fragment {fi} at {threads} threads ({mode:?})"),
                    );
                }
            }
        }
    }

    /// Asserts two tensors agree bit for bit: support, emission order,
    /// coefficients, and every derived sum.
    fn assert_tensors_bit_identical(a: &FragmentTensor, b: &FragmentTensor, label: &str) {
        assert_eq!(a.support_len(), b.support_len(), "{label}: support");
        for ((ab, av), (bb, bv)) in a.iter().zip(b.iter()) {
            assert_eq!(ab, bb, "{label}: emission order");
            for (i, (x, y)) in av.iter().zip(bv).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{label}: coeff at {ab}, idx {i}: {x} vs {y}"
                );
            }
        }
        for i in 0..a.pauli_dim() {
            assert!(
                a.total(i).to_bits() == b.total(i).to_bits(),
                "{label}: total {i}"
            );
            assert!(
                a.slice_max_abs(i).to_bits() == b.slice_max_abs(i).to_bits(),
                "{label}: slice_max {i}"
            );
        }
        for bit in 0..a.output_globals().len() {
            let (a0, a1) = a.marginal_slices(bit);
            let (b0, b1) = b.marginal_slices(bit);
            for i in 0..a.pauli_dim() {
                assert!(
                    a0[i].to_bits() == b0[i].to_bits() && a1[i].to_bits() == b1[i].to_bits(),
                    "{label}: marginal bit {bit}, idx {i}"
                );
            }
        }
    }

    /// Frozen reference model for [`FragmentTensor`]'s storage semantics:
    /// the pre-intern `BTreeMap<Bits, Vec<f64>>` internals, reproduced
    /// verbatim (insert-overwrites, sorted iteration, derived sums
    /// accumulated in key order, rebuild scaling in place).
    mod reference_model {
        use qcir::Bits;
        use std::collections::BTreeMap;

        pub struct Model {
            pub dim: usize,
            pub n_out: usize,
            pub entries: BTreeMap<Bits, Vec<f64>>,
            pub totals: Vec<f64>,
            pub slice_max: Vec<f64>,
            pub marginals: Vec<[Vec<f64>; 2]>,
        }

        impl Model {
            pub fn new(dim: usize, n_out: usize) -> Self {
                Model {
                    dim,
                    n_out,
                    entries: BTreeMap::new(),
                    totals: Vec::new(),
                    slice_max: Vec::new(),
                    marginals: Vec::new(),
                }
            }

            pub fn set_entry(&mut self, b: Bits, v: Vec<f64>) {
                self.entries.insert(b, v);
            }

            pub fn rebuild_derived(&mut self, scale: f64) {
                let dim = self.dim;
                let mut totals = vec![0.0; dim];
                let mut slice_max = vec![0.0f64; dim];
                let mut marginals = vec![[vec![0.0; dim], vec![0.0; dim]]; self.n_out];
                for (b, v) in self.entries.iter_mut() {
                    for x in v.iter_mut() {
                        *x *= scale;
                    }
                    for (i, &x) in v.iter().enumerate() {
                        totals[i] += x;
                        slice_max[i] = slice_max[i].max(x.abs());
                    }
                    for bit in 0..self.n_out {
                        let side = b.get(bit) as usize;
                        for (i, &x) in v.iter().enumerate() {
                            marginals[bit][side][i] += x;
                        }
                    }
                }
                self.totals = totals;
                self.slice_max = slice_max;
                self.marginals = marginals;
            }
        }
    }

    /// Property: random build / overwrite / insert / rescale sequences on
    /// the interned tensor match the ordered-map reference model bit for
    /// bit — same support, same emission order, same coefficient and
    /// derived-sum float bits. Covers empty-support and single-entry
    /// tensors (the `n_entries` range starts at 0).
    #[test]
    fn interned_tensor_matches_btreemap_reference_bit_exact() {
        let mut rng = StdRng::seed_from_u64(777);
        for case in 0..60 {
            // One input cut, one output cut, three circuit-output bits.
            let n_out = 3;
            let dim = 16;
            // Cases 0 and 1 pin the empty-support and single-entry edges.
            let n_entries = match case {
                0 => 0,
                1 => 1,
                _ => (rng.random::<u64>() % 9) as usize,
            };
            let coeff_vec = |rng: &mut StdRng| -> Vec<f64> {
                (0..dim).map(|_| rng.random::<f64>() - 0.45).collect()
            };
            // Duplicate keys on purpose: later entries must overwrite.
            let entries: Vec<(Bits, Vec<f64>)> = (0..n_entries)
                .map(|_| {
                    let b = Bits::from_u64(rng.random::<u64>() % 6, n_out);
                    (b, coeff_vec(&mut rng))
                })
                .collect();
            let mut tensor = FragmentTensor::from_dense_entries(
                vec![0],
                vec![1],
                vec![0, 1, 2],
                entries.clone(),
            );
            let mut model = reference_model::Model::new(dim, n_out);
            for (b, v) in entries {
                model.set_entry(b, v);
            }
            model.rebuild_derived(1.0);
            // Interleave overwrites of existing keys, brand-new keys, and
            // rescales — the exact op mix the MLFT stage performs.
            for _ in 0..(rng.random::<u64>() % 6) {
                match rng.random::<u64>() % 3 {
                    0 => {
                        let b = Bits::from_u64(rng.random::<u64>() % 8, n_out);
                        let v = coeff_vec(&mut rng);
                        tensor.set_entry(b.clone(), v.clone());
                        model.set_entry(b, v);
                        tensor.rebuild_derived(1.0);
                        model.rebuild_derived(1.0);
                    }
                    1 => {
                        let scale = 0.25 + rng.random::<f64>();
                        tensor.rebuild_derived(scale);
                        model.rebuild_derived(scale);
                    }
                    _ => {}
                }
            }
            assert_eq!(
                tensor.support_len(),
                model.entries.len(),
                "case {case}: support"
            );
            for ((tb, tv), (mb, mv)) in tensor.iter().zip(model.entries.iter()) {
                assert_eq!(tb, mb, "case {case}: emission order");
                for (i, (x, y)) in tv.iter().zip(mv).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "case {case}: coeff at {tb}, idx {i}"
                    );
                }
                assert_eq!(tensor.coeffs(tb).unwrap(), mv.as_slice());
            }
            for i in 0..dim {
                assert!(
                    tensor.total(i).to_bits() == model.totals[i].to_bits(),
                    "case {case}: total {i}"
                );
                assert!(
                    tensor.slice_max_abs(i).to_bits() == model.slice_max[i].to_bits(),
                    "case {case}: slice_max {i}"
                );
            }
            for bit in 0..n_out {
                let (m0, m1) = tensor.marginal_slices(bit);
                for i in 0..dim {
                    assert!(
                        m0[i].to_bits() == model.marginals[bit][0][i].to_bits()
                            && m1[i].to_bits() == model.marginals[bit][1][i].to_bits(),
                        "case {case}: marginal bit {bit}, idx {i}"
                    );
                }
            }
            // Unobserved outcomes read as zero / absent.
            let absent = Bits::from_u64(63, n_out);
            if !model.entries.contains_key(&absent) {
                assert_eq!(tensor.value(&absent, 0), 0.0, "case {case}: absent value");
                assert!(
                    tensor.coeffs(&absent).is_none(),
                    "case {case}: absent slice"
                );
            }
        }
    }

    /// Empty-support tensors expose sane derived state.
    #[test]
    fn empty_support_tensor_is_well_formed() {
        let t = FragmentTensor::from_dense_entries(vec![0], vec![], vec![0, 1], Vec::new());
        assert_eq!(t.support_len(), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.pauli_dim(), 4);
        for i in 0..4 {
            assert_eq!(t.total(i), 0.0);
            assert_eq!(t.slice_max_abs(i), 0.0);
        }
        assert!(t.nonzero_indices(0.0).is_empty());
        assert_eq!(t.value(&Bits::from_u64(0, 2), 0), 0.0);
    }

    #[test]
    fn snapping_restores_exact_values_from_samples() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
        let up = cut.fragments.iter().find(|f| f.is_clifford).unwrap();
        let eval = EvalOptions {
            mode: EvalMode::Sampled { shots: 200 },
            ..Default::default()
        };
        let snapped = build_fragment_tensor(
            up,
            &eval,
            &TensorOptions {
                clifford_snap: true,
            },
            &mut rng(),
        )
        .unwrap();
        let b = Bits::zeros(0);
        // With snapping, 200 shots recover the exact <X>=1, <Z>=0 values.
        assert!((snapped.value(&b, 1) - 1.0).abs() < 1e-12);
        assert!(snapped.value(&b, 3).abs() < 1e-12);
    }
}
