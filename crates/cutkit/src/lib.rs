//! Quantum circuit cutting for SuperSim-RS.
//!
//! This crate implements the three pillars of the SuperSim pipeline
//! (paper §V):
//!
//! 1. **Cutter** ([`cut_circuit`]): parses a near-Clifford circuit and
//!    places wire cuts isolating the non-Clifford operations into small
//!    fragments;
//! 2. **Fragment evaluator** ([`evaluate_variant`], [`build_fragment_tensor`]):
//!    executes every fragment variant (4 preparation states per quantum
//!    input × 3 measurement bases per quantum output) on the appropriate
//!    backend — the stabilizer simulator for Clifford fragments, the exact
//!    statevector simulator otherwise — and assembles the tomographic
//!    fragment tensor, with optional maximum-likelihood correction
//!    ([`correct_tensor`]);
//! 3. **Distribution builder** ([`Reconstructor`]): contracts the fragment
//!    tensors over one 4-valued Pauli index per cut (`O(4^k)`), producing
//!    joint distributions, single-qubit marginals, or machine-precision
//!    probabilities of individual bitstrings.
//!
//! The Clifford-specific optimizations of paper §IX are implemented as
//! toggles: `⟨P⟩` snapping to `{-1,0,+1}` ([`TensorOptions::clifford_snap`]),
//! zero-shot exact Clifford evaluation ([`EvalOptions::exact_clifford`]),
//! and zero-Pauli pruning in the contraction
//! ([`Reconstructor::with_sparse`]).
//!
//! ```
//! use qcir::Circuit;
//! use cutkit::{cut_circuit, CutStrategy};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).t(1).h(1);
//! let cut = cut_circuit(&c, CutStrategy::default()).unwrap();
//! assert_eq!(cut.num_cuts, 2); // two cuts isolate the single T gate
//! ```

mod cut;
mod evaluate;
mod mlft;
mod recombine;
mod tensor;
mod variants;

pub use cut::{cut_circuit, CutBudgetError, CutCircuit, CutPoint, CutStrategy, Fragment};
pub use evaluate::{
    evaluate_variant, evaluate_variant_into, EvalError, EvalMode, EvalOptions, EvalScratch,
    TableauEngine,
};
#[doc(hidden)]
pub use mlft::reference_correct_btreemap;
pub use mlft::{correct_tensor, correct_tensors, MlftError, MlftOptions};
#[doc(hidden)]
pub use recombine::reference_joint_btreemap;
pub use recombine::{Reconstructor, SweepStats, ASSIGNMENTS_PER_CHUNK, MAX_CONTRACTION_CUTS};
#[doc(hidden)]
pub use tensor::reference_evaluate_btreemap;
pub use tensor::{
    build_fragment_tensor, build_fragment_tensor_threaded, evaluate_fragment_tensors,
    evaluate_fragment_tensors_planned, evaluate_planned_chunk, merge_planned_chunks,
    planned_num_chunks, synthetic_dense_chain, EvalChunk, FragmentEvalPlan, FragmentTensor,
    TensorOptions, PREP_TO_PAULI,
};
pub use variants::{enumerate_variants, variant_circuit, MeasBasis, PrepState, Variant};
