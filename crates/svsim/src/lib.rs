//! Dense statevector simulation — the qsim/Cirq-SV substitute in SuperSim-RS.
//!
//! [`StateVec`] stores all `2^n` complex amplitudes and applies gates with
//! specialized kernels. It is the *exact* reference backend: SuperSim uses
//! it for small non-Clifford fragments, the benchmark harness uses it as the
//! paper's "SV simulator" baseline, and the test-suite uses it as ground
//! truth for every other engine.
//!
//! Basis convention: qubit `q` is bit `q` of the amplitude index, matching
//! [`qcir::Bits`] (bit 0 printed leftmost).
//!
//! ```
//! use qcir::Circuit;
//! use svsim::StateVec;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let psi = StateVec::run(&bell).unwrap();
//! assert!((psi.probability_of_index(0b00) - 0.5).abs() < 1e-12);
//! assert!((psi.probability_of_index(0b11) - 0.5).abs() < 1e-12);
//! ```

use qcir::{Bits, Circuit, Gate, OpKind, PauliString, Qubit};
use qmath::{CMat, C64};
use rand::Rng;
use std::fmt;

/// Hard cap on qubit count to avoid accidental out-of-memory aborts.
pub const MAX_QUBITS: usize = 30;

/// Error raised when a circuit is too wide for dense simulation or contains
/// an operation the statevector engine cannot apply deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvError {
    /// The circuit has more qubits than [`MAX_QUBITS`].
    TooManyQubits(usize),
    /// The circuit contains a noise channel but no RNG was provided.
    NoiseWithoutRng,
}

impl fmt::Display for SvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvError::TooManyQubits(n) => {
                write!(f, "{n} qubits exceeds dense statevector limit {MAX_QUBITS}")
            }
            SvError::NoiseWithoutRng => {
                write!(f, "circuit contains noise channels; use run_noisy")
            }
        }
    }
}

impl std::error::Error for SvError {}

/// A dense `2^n`-amplitude quantum state.
#[derive(Clone)]
pub struct StateVec {
    n: usize,
    amps: Vec<C64>,
}

impl StateVec {
    /// Creates `|0…0⟩` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    pub fn new(n: usize) -> Self {
        assert!(n <= MAX_QUBITS, "{n} qubits exceeds limit {MAX_QUBITS}");
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        StateVec { n, amps }
    }

    /// Runs a noise-free circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SvError`] if the circuit is too wide or contains noise
    /// channels.
    pub fn run(circuit: &Circuit) -> Result<Self, SvError> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(SvError::TooManyQubits(circuit.num_qubits()));
        }
        let mut sv = StateVec::new(circuit.num_qubits());
        for op in circuit.ops() {
            match &op.kind {
                OpKind::Gate(g) => sv.apply_gate(*g, &op.qubits),
                OpKind::Noise(_) => return Err(SvError::NoiseWithoutRng),
            }
        }
        Ok(sv)
    }

    /// Runs a circuit, applying noise channels as one stochastic trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`SvError::TooManyQubits`] if the circuit is too wide.
    pub fn run_noisy(circuit: &Circuit, rng: &mut impl Rng) -> Result<Self, SvError> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(SvError::TooManyQubits(circuit.num_qubits()));
        }
        let mut sv = StateVec::new(circuit.num_qubits());
        for op in circuit.ops() {
            match &op.kind {
                OpKind::Gate(g) => sv.apply_gate(*g, &op.qubits),
                OpKind::Noise(ch) => {
                    use qcir::NoiseChannel as N;
                    match *ch {
                        N::BitFlip(p) => {
                            if rng.random::<f64>() < p {
                                sv.apply_gate(Gate::X, &op.qubits);
                            }
                        }
                        N::PhaseFlip(p) => {
                            if rng.random::<f64>() < p {
                                sv.apply_gate(Gate::Z, &op.qubits);
                            }
                        }
                        N::YFlip(p) => {
                            if rng.random::<f64>() < p {
                                sv.apply_gate(Gate::Y, &op.qubits);
                            }
                        }
                        N::Depolarize1(p) => {
                            if rng.random::<f64>() < p {
                                let g = [Gate::X, Gate::Y, Gate::Z][rng.random_range(0..3)];
                                sv.apply_gate(g, &op.qubits);
                            }
                        }
                        N::Depolarize2(p) => {
                            if rng.random::<f64>() < p {
                                let k = rng.random_range(1..16u8);
                                for (shift, q) in [(0u8, op.qubits[0]), (2u8, op.qubits[1])] {
                                    match (k >> shift) & 0b11 {
                                        0b01 => sv.apply_gate(Gate::X, &[q]),
                                        0b10 => sv.apply_gate(Gate::Z, &[q]),
                                        0b11 => sv.apply_gate(Gate::Y, &[q]),
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(sv)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Borrow of the amplitude vector (index bit `q` = qubit `q`).
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The amplitude of a basis state given as an index.
    #[inline]
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// Applies a unitary gate.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or out-of-range qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[Qubit]) {
        assert_eq!(qubits.len(), gate.arity(), "arity mismatch");
        match gate {
            Gate::I => {}
            Gate::X => self.apply_x(qubits[0].index()),
            Gate::Z => self.apply_phase(qubits[0].index(), -C64::ONE),
            Gate::S => self.apply_phase(qubits[0].index(), C64::i()),
            Gate::Sdg => self.apply_phase(qubits[0].index(), -C64::i()),
            Gate::T => self.apply_phase(qubits[0].index(), C64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => {
                self.apply_phase(qubits[0].index(), C64::cis(-std::f64::consts::FRAC_PI_4))
            }
            Gate::ZPow(a) => {
                self.apply_phase(qubits[0].index(), C64::cis(std::f64::consts::PI * a))
            }
            Gate::Rz(t) => {
                let neg = C64::cis(-t / 2.0);
                let pos = C64::cis(t / 2.0);
                let q = qubits[0].index();
                let bit = 1usize << q;
                for i in 0..self.amps.len() {
                    self.amps[i] *= if i & bit == 0 { neg } else { pos };
                }
            }
            Gate::Cz => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                let mask = (1usize << a) | (1usize << b);
                for i in 0..self.amps.len() {
                    if i & mask == mask {
                        self.amps[i] = -self.amps[i];
                    }
                }
            }
            Gate::Cx => {
                let (c, t) = (qubits[0].index(), qubits[1].index());
                let cbit = 1usize << c;
                let tbit = 1usize << t;
                for i in 0..self.amps.len() {
                    if i & cbit != 0 && i & tbit == 0 {
                        self.amps.swap(i, i | tbit);
                    }
                }
            }
            Gate::Swap => {
                let (a, b) = (qubits[0].index(), qubits[1].index());
                let abit = 1usize << a;
                let bbit = 1usize << b;
                for i in 0..self.amps.len() {
                    if i & abit != 0 && i & bbit == 0 {
                        self.amps.swap(i, (i ^ abit) | bbit);
                    }
                }
            }
            _ => {
                let u = gate.unitary();
                if gate.arity() == 1 {
                    self.apply_1q_matrix(&u, qubits[0].index());
                } else {
                    self.apply_2q_matrix(&u, qubits[0].index(), qubits[1].index());
                }
            }
        }
    }

    fn apply_x(&mut self, q: usize) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                self.amps.swap(i, i | bit);
            }
        }
    }

    fn apply_phase(&mut self, q: usize, phase: C64) {
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit != 0 {
                self.amps[i] *= phase;
            }
        }
    }

    /// Applies an arbitrary 2×2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 2×2 or `q` is out of range.
    pub fn apply_1q_matrix(&mut self, u: &CMat, q: usize) {
        assert_eq!((u.rows(), u.cols()), (2, 2), "need a 2x2 matrix");
        assert!(q < self.n, "qubit out of range");
        let bit = 1usize << q;
        let (u00, u01, u10, u11) = (u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]);
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a0 = self.amps[i];
                let a1 = self.amps[i | bit];
                self.amps[i] = u00 * a0 + u01 * a1;
                self.amps[i | bit] = u10 * a0 + u11 * a1;
            }
        }
    }

    /// Applies an arbitrary 4×4 unitary to qubits `(a, b)`, with `a` the
    /// most-significant local bit (the [`qcir::Gate`] convention).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not 4×4 or the qubits coincide / are out of range.
    pub fn apply_2q_matrix(&mut self, u: &CMat, a: usize, b: usize) {
        assert_eq!((u.rows(), u.cols()), (4, 4), "need a 4x4 matrix");
        assert!(a < self.n && b < self.n && a != b, "bad qubit operands");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amps.len() {
            if i & abit == 0 && i & bbit == 0 {
                // Local basis: index = 2*bit_a + bit_b.
                let idx = [i, i | bbit, i | abit, i | abit | bbit];
                let old = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for (r, &target) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (c, &o) in old.iter().enumerate() {
                        acc += u[(r, c)] * o;
                    }
                    self.amps[target] = acc;
                }
            }
        }
    }

    /// `‖ψ‖²` — should be 1 up to rounding for any unitary circuit.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Probability of the basis state with the given index.
    #[inline]
    pub fn probability_of_index(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probability of a measurement outcome given as a bitstring.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_qubits`.
    pub fn probability_of(&self, bits: &Bits) -> f64 {
        assert_eq!(bits.len(), self.n, "bitstring width mismatch");
        self.probability_of_index(bits.to_u64().expect("n <= 30 fits in u64") as usize)
    }

    /// The full probability vector (`2^n` entries).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Sparse distribution: basis states with probability above `tol`.
    pub fn distribution(&self, tol: f64) -> Vec<(Bits, f64)> {
        let mut out = Vec::new();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > tol {
                out.push((Bits::from_u64(i as u64, self.n), p));
            }
        }
        out
    }

    /// Draws `shots` measurement samples without materializing the
    /// probability vector (single cumulative pass against sorted uniforms).
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        let mut targets: Vec<(f64, usize)> = (0..shots).map(|k| (rng.random::<f64>(), k)).collect();
        targets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut out = vec![Bits::zeros(self.n); shots];
        let mut cumulative = 0.0;
        let mut t = 0;
        for (i, a) in self.amps.iter().enumerate() {
            cumulative += a.norm_sqr();
            while t < shots && targets[t].0 <= cumulative {
                out[targets[t].1] = Bits::from_u64(i as u64, self.n);
                t += 1;
            }
            if t == shots {
                break;
            }
        }
        // Guard against rounding at the tail: map leftovers to the last state.
        while t < shots {
            out[targets[t].1] = Bits::from_u64((self.amps.len() - 1) as u64, self.n);
            t += 1;
        }
        out
    }

    /// Draws `shots` measurement samples and returns `(index, count)`
    /// tallies in increasing index order, skipping indices that were never
    /// hit. Consumes the RNG exactly like [`StateVec::sample`] (one `f64`
    /// per shot, in shot order) and assigns each draw to the same basis
    /// index (first index whose running cumulative probability reaches the
    /// draw, leftovers to the last state), so the outcome multiset is
    /// bit-identical — but without the per-shot sort, bitstring
    /// allocations, or hash tallies. Binary search over the cumulative
    /// vector replaces the sorted-uniform sweep: `O(shots · n)` instead of
    /// `O(shots log shots)` with two heap allocations per shot.
    pub fn sample_index_counts(&self, shots: usize, rng: &mut impl Rng) -> Vec<(u64, u64)> {
        let mut cumulative = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        let mut tally = vec![0u64; self.amps.len()];
        let last = self.amps.len() - 1;
        for _ in 0..shots {
            let x: f64 = rng.random();
            // First index with cumulative[i] >= x — the same assignment
            // `sample` makes with its `target <= cumulative` sweep.
            let i = cumulative.partition_point(|&c| c < x).min(last);
            tally[i] += 1;
        }
        tally
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .map(|(i, c)| (i as u64, c))
            .collect()
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩` of a Pauli string (real for
    /// Hermitian `P`).
    ///
    /// # Panics
    ///
    /// Panics if `p.len() != num_qubits`.
    pub fn expectation_pauli(&self, p: &PauliString) -> f64 {
        assert_eq!(p.len(), self.n, "operator width mismatch");
        // P = i^k X^xm Z^zm with k counting Y's plus the string phase.
        let mut xm = 0usize;
        let mut zm = 0usize;
        let mut k = p.phase() as u32;
        for q in 0..self.n {
            let (x, z) = p.pauli(q).xz();
            if x {
                xm |= 1 << q;
            }
            if z {
                zm |= 1 << q;
            }
            if x && z {
                k += 1;
            }
        }
        let phase = C64::i_pow(k as i64);
        let mut acc = C64::ZERO;
        for x in 0..self.amps.len() {
            let ax = self.amps[x];
            if ax == C64::ZERO {
                continue;
            }
            // X^xm Z^zm |x> = (-1)^{zm·x} |x ⊕ xm>
            let sign = ((zm & x).count_ones() % 2) as i64;
            let term = self.amps[x ^ xm].conj() * ax * C64::i_pow(2 * sign);
            acc += term;
        }
        let val = phase * acc;
        debug_assert!(val.im.abs() < 1e-9, "non-real Pauli expectation");
        val.re
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn inner_product(&self, other: &StateVec) -> C64 {
        assert_eq!(self.n, other.n, "state width mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVec) -> f64 {
        self.inner_product(other).norm_sqr()
    }
}

impl fmt::Debug for StateVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StateVec({} qubits, norm² = {:.6})",
            self.n,
            self.norm_sqr()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcir::CliffordGate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_index_counts_matches_sample() {
        // Same seed → identical RNG stream, identical outcome multiset,
        // and identical post-call RNG position as the Vec<Bits> path.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(2).h(2).cx(2, 3).h(3);
        let sv = StateVec::run(&c).unwrap();
        for seed in [1u64, 7, 1234] {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let samples = sv.sample(5000, &mut rng_a);
            let counts = sv.sample_index_counts(5000, &mut rng_b);
            let mut tally = [0u64; 16];
            for s in &samples {
                tally[s.as_words()[0] as usize] += 1;
            }
            let expect: Vec<(u64, u64)> = tally
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (i as u64, n))
                .collect();
            assert_eq!(counts, expect, "seed {seed}");
            assert_eq!(
                rng_a.random::<u64>(),
                rng_b.random::<u64>(),
                "RNG positions diverged (seed {seed})"
            );
        }
    }

    #[test]
    fn fresh_state_is_zero_ket() {
        let sv = StateVec::new(3);
        assert_eq!(sv.amplitude(0), C64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVec::run(&c).unwrap();
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitude(0b00).approx_eq(C64::real(r), 1e-12));
        assert!(sv.amplitude(0b11).approx_eq(C64::real(r), 1e-12));
        assert!(sv.amplitude(0b01).approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn gate_identities_on_random_states() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 0.7).cz(1, 2).rx(0, 1.1);
        let base = StateVec::run(&c).unwrap();

        // H² = I
        let mut s = base.clone();
        s.apply_gate(Gate::H, &[Qubit(1)]);
        s.apply_gate(Gate::H, &[Qubit(1)]);
        assert!((s.fidelity(&base) - 1.0).abs() < 1e-10);

        // S·S = Z
        let mut s1 = base.clone();
        s1.apply_gate(Gate::S, &[Qubit(0)]);
        s1.apply_gate(Gate::S, &[Qubit(0)]);
        let mut s2 = base.clone();
        s2.apply_gate(Gate::Z, &[Qubit(0)]);
        assert!((s1.fidelity(&s2) - 1.0).abs() < 1e-10);

        // T·T = S
        let mut t1 = base.clone();
        t1.apply_gate(Gate::T, &[Qubit(2)]);
        t1.apply_gate(Gate::T, &[Qubit(2)]);
        let mut t2 = base.clone();
        t2.apply_gate(Gate::S, &[Qubit(2)]);
        assert!((t1.fidelity(&t2) - 1.0).abs() < 1e-10);

        // CX self-inverse
        let mut x = base.clone();
        x.apply_gate(Gate::Cx, &[Qubit(2), Qubit(0)]);
        x.apply_gate(Gate::Cx, &[Qubit(2), Qubit(0)]);
        assert!((x.fidelity(&base) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fast_paths_match_generic_matrix_path() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 2).s(2).cz(1, 2);
        let base = StateVec::run(&c).unwrap();
        for gate in [Gate::X, Gate::Z, Gate::S, Gate::T, Gate::Sdg] {
            let mut fast = base.clone();
            fast.apply_gate(gate, &[Qubit(1)]);
            let mut slow = base.clone();
            slow.apply_1q_matrix(&gate.unitary(), 1);
            for i in 0..8 {
                assert!(
                    fast.amplitude(i).approx_eq(slow.amplitude(i), 1e-12),
                    "{} fast path mismatch",
                    gate.name()
                );
            }
        }
        for gate in [Gate::Cx, Gate::Cz, Gate::Swap] {
            let mut fast = base.clone();
            fast.apply_gate(gate, &[Qubit(2), Qubit(0)]);
            let mut slow = base.clone();
            slow.apply_2q_matrix(&gate.unitary(), 2, 0);
            for i in 0..8 {
                assert!(
                    fast.amplitude(i).approx_eq(slow.amplitude(i), 1e-12),
                    "{} fast path mismatch",
                    gate.name()
                );
            }
        }
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            match rng.random_range(0..6) {
                0 => c.h(rng.random_range(0..4)),
                1 => c.t(rng.random_range(0..4)),
                2 => c.rx(
                    rng.random_range(0..4),
                    rng.random::<f64>() * std::f64::consts::TAU,
                ),
                3 => c.rz(
                    rng.random_range(0..4),
                    rng.random::<f64>() * std::f64::consts::TAU,
                ),
                4 => {
                    let a = rng.random_range(0..4);
                    let b = (a + 1 + rng.random_range(0..3)) % 4;
                    c.cx(a, b)
                }
                _ => {
                    let a = rng.random_range(0..4);
                    let b = (a + 1 + rng.random_range(0..3)) % 4;
                    c.cz(a, b)
                }
            };
        }
        let sv = StateVec::run(&c).unwrap();
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_expectations_on_known_states() {
        // |+> : <X>=1, <Z>=0 ; after T: <X>=cos(π/4)
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = StateVec::run(&c).unwrap();
        assert!((sv.expectation_pauli(&PauliString::parse("X").unwrap()) - 1.0).abs() < 1e-12);
        assert!(
            sv.expectation_pauli(&PauliString::parse("Z").unwrap())
                .abs()
                < 1e-12
        );

        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let sv = StateVec::run(&c).unwrap();
        let expected = (std::f64::consts::FRAC_PI_4).cos();
        assert!((sv.expectation_pauli(&PauliString::parse("X").unwrap()) - expected).abs() < 1e-12);
        assert!((sv.expectation_pauli(&PauliString::parse("Y").unwrap()) - expected).abs() < 1e-12);

        // Bell: <XX> = <ZZ> = 1, <YY> = -1
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVec::run(&c).unwrap();
        for (s, v) in [("XX", 1.0), ("ZZ", 1.0), ("YY", -1.0), ("XI", 0.0)] {
            assert!(
                (sv.expectation_pauli(&PauliString::parse(s).unwrap()) - v).abs() < 1e-12,
                "<{s}>"
            );
        }
    }

    #[test]
    fn sampling_statistics_match_probabilities() {
        let mut c = Circuit::new(2);
        c.ry(0, 1.0).cx(0, 1);
        let sv = StateVec::run(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let shots = 20_000;
        let samples = sv.sample(shots, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for s in samples {
            *counts.entry(s.to_u64().unwrap()).or_insert(0usize) += 1;
        }
        for idx in 0..4usize {
            let p = sv.probability_of_index(idx);
            let freq = *counts.get(&(idx as u64)).unwrap_or(&0) as f64 / shots as f64;
            assert!((p - freq).abs() < 0.02, "index {idx}: p={p} freq={freq}");
        }
    }

    #[test]
    fn distribution_is_sparse_and_normalized() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = StateVec::run(&c).unwrap();
        let dist = sv.distribution(1e-12);
        assert_eq!(dist.len(), 2);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_trajectories_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Circuit::new(1);
        c.add_noise(qcir::NoiseChannel::BitFlip(1.0), &[0]);
        let sv = StateVec::run_noisy(&c, &mut rng).unwrap();
        assert!((sv.probability_of_index(1) - 1.0).abs() < 1e-12);
        assert!(StateVec::run(&c).is_err());
    }

    #[test]
    fn rz_equals_zpow_up_to_global_phase() {
        let mut a = StateVec::new(1);
        a.apply_gate(Gate::H, &[Qubit(0)]);
        let mut b = a.clone();
        a.apply_gate(Gate::Rz(0.7), &[Qubit(0)]);
        b.apply_gate(Gate::ZPow(0.7 / std::f64::consts::PI), &[Qubit(0)]);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_with_clifford_conjugation() {
        // Statevector and PauliString conjugation must agree:
        // <ψ|G†PG|ψ> computed both ways.
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let sv = StateVec::run(&c).unwrap();
        for s in ["XI", "IZ", "YY", "ZX"] {
            let p = PauliString::parse(s).unwrap();
            let mut svg = sv.clone();
            svg.apply_gate(Gate::Cz, &[Qubit(0), Qubit(1)]);
            let lhs = svg.expectation_pauli(&p);
            let mut pc = p.clone();
            pc.conjugate_by(CliffordGate::Cz, &[Qubit(0), Qubit(1)]);
            let rhs_sign = match pc.phase() {
                0 => 1.0,
                2 => -1.0,
                _ => panic!("Hermitian conjugate must stay Hermitian"),
            };
            let mut bare = qcir::PauliString::identity(2);
            for q in 0..2 {
                bare.set_pauli(q, pc.pauli(q));
            }
            let rhs = rhs_sign * sv.expectation_pauli(&bare);
            assert!((lhs - rhs).abs() < 1e-10, "conjugation mismatch for {s}");
        }
    }

    #[test]
    fn probability_of_bits_uses_qubit_bit_order() {
        let mut c = Circuit::new(3);
        c.x(1);
        let sv = StateVec::run(&c).unwrap();
        let b = Bits::parse("010").unwrap();
        assert!((sv.probability_of(&b) - 1.0).abs() < 1e-12);
    }
}
