//! Hash-interned outcome keys.
//!
//! Joint reconstruction and distribution accumulation repeatedly touch the
//! same small set of outcome bitstrings: every cut assignment re-derives
//! the same global outcomes, and every chunk merge re-inserts them. Keying
//! accumulators by [`Bits`] directly means one heap-allocated clone plus an
//! `O(log n)` ordered-map walk per touch — the hot spot this module
//! removes.
//!
//! [`InternPool`] maps each distinct [`Bits`] key to a dense `u32` id
//! exactly once (open addressing over [`Bits::hash_u64`], linear probing);
//! after that, accumulators are flat `Vec<f64>`s indexed by id, merges are
//! id-indexed vector adds, and the key itself is cloned only on first
//! insertion. Ids are assigned in first-seen order, which is *not*
//! deterministic across code paths — deterministic consumers must emit in
//! key-sorted order via [`InternPool::sorted_ids`] (what
//! [`Distribution`](crate::Distribution) does at its API boundary).

use qcir::Bits;

/// Sentinel marking a free slot in the open-addressed table.
const EMPTY: u32 = u32::MAX;

/// A pool assigning dense `u32` ids to distinct [`Bits`] keys.
///
/// ```
/// use metrics::InternPool;
/// use qcir::Bits;
///
/// let mut pool = InternPool::new();
/// let a = pool.intern(&Bits::parse("01").unwrap());
/// let b = pool.intern(&Bits::parse("10").unwrap());
/// assert_eq!(pool.intern(&Bits::parse("01").unwrap()), a);
/// assert_ne!(a, b);
/// assert_eq!(pool.key(a), &Bits::parse("01").unwrap());
/// ```
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct InternPool {
    /// `id → key`, in first-interned order.
    keys: Vec<Bits>,
    /// Open-addressed table of ids (power-of-two capacity, linear
    /// probing); empty until the first insertion.
    table: Vec<u32>,
}

impl InternPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        InternPool::default()
    }

    /// Creates a pool sized for roughly `n` keys without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut pool = InternPool {
            keys: Vec::with_capacity(n),
            table: Vec::new(),
        };
        if n > 0 {
            pool.rebuild_table(Self::table_len_for(n));
        }
        pool
    }

    /// Number of distinct keys interned so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when no key has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key of an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this pool.
    #[inline]
    pub fn key(&self, id: u32) -> &Bits {
        &self.keys[id as usize]
    }

    /// All keys, indexed by id (first-interned order).
    #[inline]
    pub fn keys(&self) -> &[Bits] {
        &self.keys
    }

    /// The id of `b`, if already interned.
    pub fn get(&self, b: &Bits) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = (b.hash_u64() as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                id => {
                    if &self.keys[id as usize] == b {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The id of `b`, interning (and cloning) it on first sight.
    pub fn intern(&mut self, b: &Bits) -> u32 {
        self.reserve_slot();
        let mask = self.table.len() - 1;
        let mut slot = (b.hash_u64() as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => {
                    let id = self.keys.len() as u32;
                    self.keys.push(b.clone());
                    self.table[slot] = id;
                    return id;
                }
                id => {
                    if &self.keys[id as usize] == b {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The id of `b`, taking ownership on first sight (no clone at all).
    pub fn intern_owned(&mut self, b: Bits) -> u32 {
        self.reserve_slot();
        let mask = self.table.len() - 1;
        let mut slot = (b.hash_u64() as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => {
                    let id = self.keys.len() as u32;
                    self.keys.push(b);
                    self.table[slot] = id;
                    return id;
                }
                id => {
                    if self.keys[id as usize] == b {
                        return id;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Ids in lexicographic key order — the deterministic emission order
    /// used at API boundaries (id assignment order is first-seen and thus
    /// implementation-dependent).
    pub fn sorted_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.keys.len() as u32).collect();
        ids.sort_by(|&a, &b| self.keys[a as usize].cmp(&self.keys[b as usize]));
        ids
    }

    /// Pre-sizes the pool for `additional` more keys, so a known-size batch
    /// of insertions (a merge of another pool, a chunk fold) triggers at
    /// most one rehash instead of one per growth step.
    pub fn reserve(&mut self, additional: usize) {
        let want = self.keys.len() + additional;
        self.keys.reserve(additional);
        if self.table.is_empty() || want * 3 > self.table.len() * 2 {
            self.rebuild_table(Self::table_len_for(want.max(1)));
        }
    }

    /// Removes every key while keeping both the key vector's and the
    /// table's allocations — the reuse path for accumulators cleared
    /// between rounds.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.table.fill(EMPTY);
    }

    /// Smallest power-of-two table length keeping load below ~2/3 for `n`
    /// keys.
    fn table_len_for(n: usize) -> usize {
        (n.max(4) * 3 / 2 + 1).next_power_of_two()
    }

    /// Ensures a free slot exists for one more insertion.
    fn reserve_slot(&mut self) {
        if self.table.is_empty() || (self.keys.len() + 1) * 3 > self.table.len() * 2 {
            self.rebuild_table(Self::table_len_for(self.keys.len() + 1));
        }
    }

    /// Rehashes every interned key into a fresh table of `len` slots.
    fn rebuild_table(&mut self, len: usize) {
        let mask = len - 1;
        let mut table = vec![EMPTY; len];
        for (id, key) in self.keys.iter().enumerate() {
            let mut slot = (key.hash_u64() as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = id as u32;
        }
        self.table = table;
    }
}

/// Shot-outcome counts keyed by interned ids.
///
/// The bulk-sampling hot loops record one outcome per shot; keying the
/// tally by a [`BTreeMap`](std::collections::BTreeMap) means an `O(log n)`
/// ordered walk (with full key comparisons) per shot, re-sorting outcomes
/// that were already seen thousands of times. `OutcomeCounts` tallies by
/// interned id instead — `O(1)` per shot, one key clone per *distinct*
/// outcome — and emits in lexicographic key order only at the API boundary
/// ([`OutcomeCounts::iter_sorted`]), which keeps downstream accumulation
/// bit-identical to the former ordered-map tally.
#[derive(Clone, Debug, Default)]
pub struct OutcomeCounts {
    pool: InternPool,
    /// `id → count`, parallel to the pool's key list.
    counts: Vec<u64>,
}

impl OutcomeCounts {
    /// Creates an empty tally.
    pub fn new() -> Self {
        OutcomeCounts::default()
    }

    /// Creates a tally sized for roughly `n` distinct outcomes.
    pub fn with_capacity(n: usize) -> Self {
        OutcomeCounts {
            pool: InternPool::with_capacity(n),
            counts: Vec::with_capacity(n),
        }
    }

    /// Number of distinct outcomes recorded.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of recorded shots.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one observation of `outcome` (cloned only on first sight).
    pub fn record(&mut self, outcome: &Bits) {
        self.record_n(outcome, 1);
    }

    /// Records `n` observations of `outcome` at once — the bulk arm for
    /// samplers that pre-tally shots elsewhere (e.g. the small-support
    /// table path of `AffineSupport::sample_counts`). Equivalent to `n`
    /// [`OutcomeCounts::record`] calls.
    pub fn record_n(&mut self, outcome: &Bits, n: u64) {
        let id = self.pool.intern(outcome) as usize;
        if id == self.counts.len() {
            self.counts.push(n);
        } else {
            self.counts[id] += n;
        }
    }

    /// The count of one outcome (0 when never recorded).
    pub fn count(&self, outcome: &Bits) -> u64 {
        self.pool
            .get(outcome)
            .map_or(0, |id| self.counts[id as usize])
    }

    /// Resets the tally for reuse, keeping allocations (the caller-provided
    /// accumulator pattern: one tally reused across many sampling calls).
    pub fn clear(&mut self) {
        self.pool.clear();
        self.counts.clear();
    }

    /// `(outcome, count)` pairs in lexicographic outcome order — the
    /// deterministic emission order for downstream accumulation.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (&Bits, u64)> + '_ {
        self.pool
            .sorted_ids()
            .into_iter()
            .map(move |id| (self.pool.key(id), self.counts[id as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        Bits::parse(s).unwrap()
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut pool = InternPool::new();
        let ids: Vec<u32> = ["00", "01", "10", "01", "00", "11"]
            .iter()
            .map(|s| pool.intern(&bits(s)))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 1, 0, 3]);
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.key(2), &bits("10"));
        assert_eq!(pool.get(&bits("11")), Some(3));
        assert_eq!(pool.get(&bits("111")), None);
    }

    #[test]
    fn intern_owned_matches_intern() {
        let mut pool = InternPool::new();
        let a = pool.intern_owned(bits("0101"));
        assert_eq!(pool.intern(&bits("0101")), a);
        assert_eq!(pool.intern_owned(bits("0101")), a);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn survives_many_rehashes() {
        let mut pool = InternPool::new();
        for x in 0..10_000u64 {
            let id = pool.intern(&Bits::from_u64(x, 16));
            assert_eq!(id as u64, x);
        }
        assert_eq!(pool.len(), 10_000);
        for x in 0..10_000u64 {
            assert_eq!(pool.get(&Bits::from_u64(x, 16)), Some(x as u32));
        }
    }

    #[test]
    fn sorted_ids_follow_key_order() {
        // `Bits` orders by packed word value (bit 0 is the LSB of word 0),
        // exactly like the former `BTreeMap<Bits, _>` keys did: "10" is
        // value 1 and sorts before "01" (value 2).
        let mut pool = InternPool::new();
        for s in ["10", "00", "11", "01"] {
            pool.intern(&bits(s));
        }
        let order = pool.sorted_ids();
        let keys: Vec<String> = order.iter().map(|&id| pool.key(id).to_string()).collect();
        assert_eq!(keys, vec!["00", "10", "01", "11"]);
        let mut resorted: Vec<Bits> = pool.keys().to_vec();
        resorted.sort();
        let direct: Vec<String> = resorted.iter().map(|b| b.to_string()).collect();
        assert_eq!(keys, direct);
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut pool = InternPool::with_capacity(100);
        for x in 0..100u64 {
            pool.intern(&Bits::from_u64(x, 8));
        }
        assert_eq!(pool.len(), 100);
    }

    #[test]
    fn empty_key_is_internable() {
        let mut pool = InternPool::new();
        let id = pool.intern(&Bits::zeros(0));
        assert_eq!(pool.get(&Bits::zeros(0)), Some(id));
    }

    #[test]
    fn reserve_prevents_rehash_for_known_batches() {
        let mut pool = InternPool::new();
        pool.intern(&bits("0000"));
        pool.reserve(500);
        for x in 0..500u64 {
            pool.intern(&Bits::from_u64(x, 12));
        }
        assert_eq!(pool.len(), 501);
        assert_eq!(pool.get(&bits("0000")), Some(0));
    }

    #[test]
    fn outcome_counts_match_btreemap_tally() {
        use std::collections::BTreeMap;
        let mut counts = OutcomeCounts::new();
        let mut model: BTreeMap<Bits, u64> = BTreeMap::new();
        let seq = ["10", "00", "10", "11", "00", "10"];
        for s in seq {
            counts.record(&bits(s));
            *model.entry(bits(s)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), model.len());
        assert_eq!(counts.total(), seq.len() as u64);
        assert_eq!(counts.count(&bits("10")), 3);
        assert_eq!(counts.count(&bits("01")), 0);
        let got: Vec<(Bits, u64)> = counts.iter_sorted().map(|(b, c)| (b.clone(), c)).collect();
        let expect: Vec<(Bits, u64)> = model.into_iter().collect();
        assert_eq!(got, expect, "emission must match ordered-map order");
    }

    #[test]
    fn clear_keeps_capacity_and_resets_ids() {
        let mut pool = InternPool::with_capacity(64);
        for x in 0..64u64 {
            pool.intern(&Bits::from_u64(x, 8));
        }
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.get(&Bits::from_u64(3, 8)), None);
        // Ids restart from zero and lookups resolve against the new keys.
        assert_eq!(pool.intern(&bits("11111111")), 0);
        assert_eq!(pool.intern(&bits("00000001")), 1);
        assert_eq!(pool.get(&bits("11111111")), Some(0));
    }

    #[test]
    fn outcome_counts_clear_resets_for_reuse() {
        let mut counts = OutcomeCounts::new();
        counts.record(&bits("01"));
        counts.record(&bits("01"));
        counts.clear();
        assert!(counts.is_empty());
        assert_eq!(counts.count(&bits("01")), 0);
        counts.record(&bits("11"));
        assert_eq!(counts.count(&bits("11")), 1);
        assert_eq!(counts.total(), 1);
    }
}
