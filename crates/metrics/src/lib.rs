//! Probability distributions and fidelity metrics.
//!
//! The SuperSim paper quantifies accuracy with the Hellinger fidelity, in
//! two flavours (§VI-C):
//!
//! * on *sparse* distributions (few observed outcomes): Hellinger fidelity
//!   of the complete distributions — [`Distribution::hellinger_fidelity`];
//! * on *dense* distributions (VQA-style): the mean Hellinger fidelity of
//!   the single-qubit marginal distributions — [`mean_marginal_fidelity`].
//!
//! [`Distribution`] is a sparse map from measurement bitstrings to
//! probabilities, suitable for the few-thousand-shot records the paper
//! works with even on 300-qubit circuits.

use qcir::Bits;
use rand::Rng;
use std::collections::BTreeMap;

/// A sparse probability distribution over measurement bitstrings.
///
/// ```
/// use metrics::Distribution;
/// use qcir::Bits;
///
/// let d = Distribution::from_pairs(
///     2,
///     vec![
///         (Bits::parse("00").unwrap(), 0.5),
///         (Bits::parse("11").unwrap(), 0.5),
///     ],
/// );
/// assert!((d.prob(&Bits::parse("00").unwrap()) - 0.5).abs() < 1e-12);
/// assert_eq!(d.marginal(0), [0.5, 0.5]);
/// ```
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Distribution {
    n_bits: usize,
    probs: BTreeMap<Bits, f64>,
}

impl Distribution {
    /// Creates an empty distribution over `n_bits`-bit outcomes.
    pub fn new(n_bits: usize) -> Self {
        Distribution {
            n_bits,
            probs: BTreeMap::new(),
        }
    }

    /// Builds an empirical distribution from measurement samples.
    ///
    /// # Panics
    ///
    /// Panics if a sample width differs from `n_bits`.
    pub fn from_samples(n_bits: usize, samples: &[Bits]) -> Self {
        let mut d = Distribution::new(n_bits);
        if samples.is_empty() {
            return d;
        }
        let w = 1.0 / samples.len() as f64;
        for s in samples {
            assert_eq!(s.len(), n_bits, "sample width mismatch");
            *d.probs.entry(s.clone()).or_insert(0.0) += w;
        }
        d
    }

    /// Builds a distribution from `(outcome, probability)` pairs, summing
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if an outcome width differs from `n_bits`.
    pub fn from_pairs(n_bits: usize, pairs: Vec<(Bits, f64)>) -> Self {
        let mut d = Distribution::new(n_bits);
        for (b, p) in pairs {
            assert_eq!(b.len(), n_bits, "outcome width mismatch");
            *d.probs.entry(b).or_insert(0.0) += p;
        }
        d
    }

    /// Number of bits per outcome.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Number of outcomes with recorded (possibly zero) probability.
    pub fn support_len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `true` when no outcome has been recorded.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The probability of an outcome (0 when absent).
    pub fn prob(&self, outcome: &Bits) -> f64 {
        self.probs.get(outcome).copied().unwrap_or(0.0)
    }

    /// Adds `p` to the probability of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, outcome: Bits, p: f64) {
        assert_eq!(outcome.len(), self.n_bits, "outcome width mismatch");
        *self.probs.entry(outcome).or_insert(0.0) += p;
    }

    /// Iterator over `(outcome, probability)` pairs in lexicographic
    /// outcome order (deterministic, which keeps downstream float
    /// accumulation bit-reproducible).
    pub fn iter(&self) -> impl Iterator<Item = (&Bits, f64)> + '_ {
        self.probs.iter().map(|(b, &p)| (b, p))
    }

    /// Sum of all recorded probabilities.
    pub fn total_mass(&self) -> f64 {
        self.probs.values().sum()
    }

    /// Clamps negative entries to zero and rescales to unit mass.
    ///
    /// Cut reconstruction from sampled fragment data can produce small
    /// negative quasi-probabilities; this is the standard repair.
    pub fn clip_and_normalize(&mut self) {
        self.probs.retain(|_, p| {
            if *p < 0.0 {
                *p = 0.0;
            }
            *p > 0.0
        });
        let mass = self.total_mass();
        if mass > 0.0 {
            for p in self.probs.values_mut() {
                *p /= mass;
            }
        }
    }

    /// The `[p(bit=0), p(bit=1)]` marginal of one bit position.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= n_bits`.
    pub fn marginal(&self, bit: usize) -> [f64; 2] {
        assert!(bit < self.n_bits, "bit out of range");
        let mut m = [0.0; 2];
        for (b, &p) in &self.probs {
            m[b.get(bit) as usize] += p;
        }
        m
    }

    /// All single-bit marginals.
    pub fn marginals(&self) -> Vec<[f64; 2]> {
        (0..self.n_bits).map(|q| self.marginal(q)).collect()
    }

    /// The joint marginal over a subset of bit positions (in given order).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn marginal_subset(&self, bits: &[usize]) -> Distribution {
        let mut d = Distribution::new(bits.len());
        for (b, &p) in &self.probs {
            d.add(b.extract(bits), p);
        }
        d
    }

    /// Hellinger fidelity `(Σ_x √(p(x)·q(x)))²` with another distribution.
    ///
    /// Negative quasi-probabilities are clamped to zero for the comparison.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn hellinger_fidelity(&self, other: &Distribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "width mismatch");
        let mut bc = 0.0;
        for (b, &p) in &self.probs {
            let q = other.prob(b);
            if p > 0.0 && q > 0.0 {
                bc += (p * q).sqrt();
            }
        }
        bc * bc
    }

    /// Total-variation distance `½·Σ_x |p(x) − q(x)|`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn total_variation(&self, other: &Distribution) -> f64 {
        assert_eq!(self.n_bits, other.n_bits, "width mismatch");
        let mut tv = 0.0;
        for (b, &p) in &self.probs {
            tv += (p - other.prob(b)).abs();
        }
        for (b, &q) in &other.probs {
            if !self.probs.contains_key(b) {
                tv += q;
            }
        }
        tv / 2.0
    }

    /// Expectation value of a Z-string observable `⟨Π_{q∈subset} Z_q⟩ =
    /// Σ_x p(x)·(−1)^{parity of x over subset}`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn expectation_z(&self, subset: &[usize]) -> f64 {
        for &q in subset {
            assert!(q < self.n_bits, "bit index {q} out of range");
        }
        let mut total = 0.0;
        for (b, &p) in &self.probs {
            let parity = subset.iter().filter(|&&q| b.get(q)).count() % 2;
            total += if parity == 1 { -p } else { p };
        }
        total
    }

    /// Draws `shots` samples (requires non-negative probabilities; mass is
    /// normalized implicitly).
    ///
    /// # Panics
    ///
    /// Panics when sampling from an empty distribution.
    pub fn sample(&self, shots: usize, rng: &mut impl Rng) -> Vec<Bits> {
        let entries: Vec<(&Bits, f64)> = self.probs.iter().map(|(b, &p)| (b, p.max(0.0))).collect();
        let total: f64 = entries.iter().map(|(_, p)| p).sum();
        let mut out = Vec::with_capacity(shots);
        for _ in 0..shots {
            let mut u = rng.random::<f64>() * total;
            let mut chosen = entries.last().map(|(b, _)| (*b).clone());
            for (b, p) in &entries {
                if u <= *p {
                    chosen = Some((*b).clone());
                    break;
                }
                u -= p;
            }
            out.push(chosen.expect("sampling from empty distribution"));
        }
        out
    }
}

/// Hellinger fidelity of two binary marginals `[p0, p1]`, `[q0, q1]`.
pub fn binary_hellinger_fidelity(p: [f64; 2], q: [f64; 2]) -> f64 {
    let bc = (p[0].max(0.0) * q[0].max(0.0)).sqrt() + (p[1].max(0.0) * q[1].max(0.0)).sqrt();
    bc * bc
}

/// The paper's dense-distribution accuracy metric: the mean Hellinger
/// fidelity of single-qubit marginal distributions.
///
/// # Panics
///
/// Panics if the two marginal lists have different lengths.
pub fn mean_marginal_fidelity(a: &[[f64; 2]], b: &[[f64; 2]]) -> f64 {
    assert_eq!(a.len(), b.len(), "marginal count mismatch");
    if a.is_empty() {
        return 1.0;
    }
    let total: f64 = a
        .iter()
        .zip(b)
        .map(|(&p, &q)| binary_hellinger_fidelity(p, q))
        .sum();
    total / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bits(s: &str) -> Bits {
        Bits::parse(s).unwrap()
    }

    #[test]
    fn empirical_distribution_counts() {
        let samples = vec![bits("00"), bits("00"), bits("11"), bits("01")];
        let d = Distribution::from_samples(2, &samples);
        assert!((d.prob(&bits("00")) - 0.5).abs() < 1e-12);
        assert!((d.prob(&bits("11")) - 0.25).abs() < 1e-12);
        assert!((d.prob(&bits("10")) - 0.0).abs() < 1e-12);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let d = Distribution::from_pairs(2, vec![(bits("00"), 0.3), (bits("11"), 0.7)]);
        assert!((d.hellinger_fidelity(&d) - 1.0).abs() < 1e-12);
        assert!(d.total_variation(&d) < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_zero_fidelity() {
        let a = Distribution::from_pairs(1, vec![(bits("0"), 1.0)]);
        let b = Distribution::from_pairs(1, vec![(bits("1"), 1.0)]);
        assert_eq!(a.hellinger_fidelity(&b), 0.0);
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_known_value() {
        // p = (1/2, 1/2), q = (1, 0): BC = √(1/2) ⇒ fidelity = 1/2.
        let a = Distribution::from_pairs(1, vec![(bits("0"), 0.5), (bits("1"), 0.5)]);
        let b = Distribution::from_pairs(1, vec![(bits("0"), 1.0)]);
        assert!((a.hellinger_fidelity(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_and_subsets() {
        let d = Distribution::from_pairs(
            3,
            vec![(bits("000"), 0.25), (bits("110"), 0.25), (bits("111"), 0.5)],
        );
        assert_eq!(d.marginal(0), [0.25, 0.75]);
        assert_eq!(d.marginal(2), [0.5, 0.5]);
        let m = d.marginal_subset(&[0, 1]);
        assert!((m.prob(&bits("11")) - 0.75).abs() < 1e-12);
        assert!((m.prob(&bits("00")) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clip_and_normalize_repairs_quasiprobabilities() {
        let mut d = Distribution::from_pairs(1, vec![(bits("0"), 0.9), (bits("1"), -0.1)]);
        d.clip_and_normalize();
        assert!((d.prob(&bits("0")) - 1.0).abs() < 1e-12);
        assert_eq!(d.prob(&bits("1")), 0.0);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_roundtrip() {
        let d = Distribution::from_pairs(2, vec![(bits("01"), 0.25), (bits("10"), 0.75)]);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = d.sample(8000, &mut rng);
        let e = Distribution::from_samples(2, &samples);
        assert!(d.hellinger_fidelity(&e) > 0.999);
    }

    #[test]
    fn marginal_fidelity_metric() {
        let a = vec![[0.5, 0.5], [1.0, 0.0]];
        let b = vec![[0.5, 0.5], [1.0, 0.0]];
        assert!((mean_marginal_fidelity(&a, &b) - 1.0).abs() < 1e-12);
        let c = vec![[0.5, 0.5], [0.0, 1.0]];
        // Second qubit completely wrong: (1 + 0)/2.
        assert!((mean_marginal_fidelity(&a, &c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binary_hellinger_handles_clamping() {
        assert!((binary_hellinger_fidelity([1.0, 0.0], [1.0, -0.001]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn z_string_expectations() {
        // Bell-like: 00 and 11 each 1/2: <Z0 Z1> = +1, <Z0> = 0.
        let d = Distribution::from_pairs(2, vec![(bits("00"), 0.5), (bits("11"), 0.5)]);
        assert!((d.expectation_z(&[0, 1]) - 1.0).abs() < 1e-12);
        assert!(d.expectation_z(&[0]).abs() < 1e-12);
        assert!((d.expectation_z(&[]) - 1.0).abs() < 1e-12);
        // Anticorrelated: 01 and 10: <Z0 Z1> = -1.
        let a = Distribution::from_pairs(2, vec![(bits("01"), 0.5), (bits("10"), 0.5)]);
        assert!((a.expectation_z(&[0, 1]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_behaviour() {
        let d = Distribution::new(2);
        assert!(d.is_empty());
        assert_eq!(d.total_mass(), 0.0);
        assert_eq!(d.prob(&bits("00")), 0.0);
    }
}
